"""Tests for the extension features: agglomerative snapshots, the
workload-weighted metric, and time-based windows."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AgglomerativeHistogramBuilder, WeightedSSEMetric, optimal_histogram
from repro.core.errors import SSEMetric
from repro.core.intervals import Certificate, StreamingIntervalQueue
from repro.core.optimal import brute_force_histogram, optimal_error
from repro.streams import TimeWindowHistogram

from .conftest import int_sequences


class TestAgglomerativeSnapshot:
    def test_round_trip_json(self):
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 100, size=300).astype(float)
        builder = AgglomerativeHistogramBuilder(5, 0.25)
        builder.extend(stream)
        payload = json.loads(json.dumps(builder.to_state()))
        restored = AgglomerativeHistogramBuilder.from_state(payload)
        assert restored.histogram() == builder.histogram()
        assert len(restored) == len(builder)
        assert restored.queue_sizes() == builder.queue_sizes()

    def test_resume_continues_identically(self):
        rng = np.random.default_rng(1)
        stream = rng.integers(0, 60, size=400).astype(float)
        builder = AgglomerativeHistogramBuilder(4, 0.2)
        builder.extend(stream[:200])
        restored = AgglomerativeHistogramBuilder.from_state(builder.to_state())
        for value in stream[200:]:
            builder.append(value)
            restored.append(value)
        assert restored.histogram() == builder.histogram()
        assert restored.error_estimate == builder.error_estimate

    def test_snapshot_before_any_point(self):
        builder = AgglomerativeHistogramBuilder(3, 0.5)
        restored = AgglomerativeHistogramBuilder.from_state(builder.to_state())
        restored.append(7.0)
        assert restored.histogram().point_estimate(0) == 7.0

    def test_inconsistent_state_rejected(self):
        builder = AgglomerativeHistogramBuilder(3, 0.5)
        builder.append(1.0)
        state = builder.to_state()
        state["queues"] = state["queues"][:-1]
        with pytest.raises(ValueError):
            AgglomerativeHistogramBuilder.from_state(state)

    def test_queue_state_validation(self):
        queue = StreamingIntervalQueue(0.1)
        queue.observe(0, 0.0, 1.0, 1.0, Certificate.single_bucket(0, 1.0, 0.0))
        state = queue.to_state()
        state["ends"] = state["ends"] + [5]
        with pytest.raises(ValueError):
            StreamingIntervalQueue.from_state(state)


class TestWeightedSSEMetric:
    def test_validates(self):
        with pytest.raises(ValueError):
            WeightedSSEMetric([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            WeightedSSEMetric([1.0, 2.0], [1.0, 0.0])
        metric = WeightedSSEMetric([1.0, 2.0], [1.0, 1.0])
        with pytest.raises(IndexError):
            metric.bucket_error(0, 2)

    def test_uniform_weights_reduce_to_sse(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 40, size=30).astype(float)
        weighted = WeightedSSEMetric(values, np.ones(30))
        plain = SSEMetric(values)
        for i, j in [(0, 29), (3, 10), (15, 15)]:
            assert weighted.bucket_error(i, j) == pytest.approx(
                plain.bucket_error(i, j), abs=1e-9
            )
            assert weighted.representative(i, j) == pytest.approx(
                plain.representative(i, j)
            )

    def test_representative_is_weighted_mean(self):
        metric = WeightedSSEMetric([0.0, 10.0], [1.0, 3.0])
        assert metric.representative(0, 1) == pytest.approx(7.5)

    def test_heavy_weights_pull_boundaries(self):
        """A hot region gets finer buckets under the weighted objective."""
        values = np.asarray([0.0, 1.0, 0.0, 1.0, 100.0, 200.0, 100.0, 200.0])
        # Uniform weights: the high-variance right half grabs the splits.
        uniform = optimal_histogram(values, 3)
        # Massive weight on the left half flips the priority.
        weights = np.asarray([100.0] * 4 + [0.001] * 4)
        weighted_metric = WeightedSSEMetric(values, weights)
        weighted = optimal_histogram(values, 3, metric=weighted_metric)
        left_splits_uniform = sum(1 for s in uniform.boundaries() if s < 4)
        left_splits_weighted = sum(1 for s in weighted.boundaries() if s < 4)
        assert left_splits_weighted > left_splits_uniform

    @given(int_sequences, st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_dp_matches_brute_force(self, values, buckets):
        rng = np.random.default_rng(3)
        weights = rng.uniform(0.5, 2.0, size=values.size)
        metric = WeightedSSEMetric(values, weights)
        _, expected = brute_force_histogram(values, buckets, metric=metric)
        assert optimal_error(values, buckets, metric=metric) == pytest.approx(
            expected, rel=1e-9, abs=1e-6
        )


class TestTimeWindowHistogram:
    def test_validates(self):
        with pytest.raises(ValueError):
            TimeWindowHistogram(0.0, 4)
        with pytest.raises(ValueError):
            TimeWindowHistogram(10.0, 0)
        with pytest.raises(ValueError):
            TimeWindowHistogram(10.0, 4, max_points=0)
        window = TimeWindowHistogram(10.0, 4)
        with pytest.raises(ValueError):
            window.histogram()

    def test_timestamps_must_not_decrease(self):
        window = TimeWindowHistogram(10.0, 4)
        window.append(5.0, 1.0)
        with pytest.raises(ValueError):
            window.append(4.0, 2.0)
        with pytest.raises(ValueError):
            window.advance(3.0)

    def test_eviction_by_age(self):
        window = TimeWindowHistogram(10.0, 4)
        for stamp in range(20):
            window.append(float(stamp), float(stamp))
        # Points with timestamp <= 19 - 10 = 9 are gone.
        assert list(window.window_timestamps()) == [float(t) for t in range(10, 20)]

    def test_advance_evicts_without_points(self):
        window = TimeWindowHistogram(5.0, 4)
        window.append(0.0, 1.0)
        window.append(1.0, 2.0)
        window.advance(10.0)
        assert len(window) == 0

    def test_max_points_cap(self):
        window = TimeWindowHistogram(1000.0, 4, max_points=5)
        for stamp in range(10):
            window.append(float(stamp), float(stamp))
        assert len(window) == 5

    def test_histogram_guarantee_on_irregular_arrivals(self):
        rng = np.random.default_rng(4)
        window = TimeWindowHistogram(50.0, 4, epsilon=0.25)
        now = 0.0
        for _ in range(300):
            now += float(rng.exponential(1.0))
            window.append(now, float(rng.integers(0, 100)))
        values = window.window_values()
        histogram = window.histogram()
        assert len(histogram) == values.size
        assert histogram.sse(values) <= 1.25 * optimal_error(values, 4) + 1e-6

    def test_histogram_cache_invalidates(self):
        window = TimeWindowHistogram(100.0, 2)
        window.append(0.0, 1.0)
        first = window.histogram()
        window.append(1.0, 50.0)
        second = window.histogram()
        assert len(second) == 2
        assert first != second
