"""Tests for the optimal V-optimal DP (repro.core.optimal)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SAEMetric, SSEMetric, naive_sse
from repro.core.optimal import (
    brute_force_histogram,
    optimal_error,
    optimal_error_table,
    optimal_histogram,
)

tiny_sequences = st.lists(st.integers(0, 20), min_size=1, max_size=12).map(
    lambda xs: np.asarray(xs, dtype=np.float64)
)


class TestOptimalHistogram:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            optimal_histogram([], 2)
        with pytest.raises(ValueError):
            optimal_histogram([1.0], 0)

    def test_single_bucket(self):
        values = [1.0, 2.0, 9.0]
        histogram = optimal_histogram(values, 1)
        assert histogram.num_buckets == 1
        assert histogram.sse(values) == pytest.approx(naive_sse(values))

    def test_enough_buckets_is_exact(self):
        values = [4.0, 1.0, 7.0]
        histogram = optimal_histogram(values, 3)
        assert histogram.sse(values) == 0.0
        histogram = optimal_histogram(values, 10)  # more buckets than points
        assert histogram.sse(values) == 0.0

    def test_plateaus_found_exactly(self, step_sequence):
        histogram = optimal_histogram(step_sequence, 3)
        assert histogram.sse(step_sequence) == 0.0
        assert histogram.boundaries() == [4, 8]

    def test_paper_example_sequence(self):
        """The section 4.5 example: 100,0,0,0,1,1,1,1 with B=2."""
        values = [100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]
        histogram = optimal_histogram(values, 2)
        # Optimal: isolate the outlier 100.
        assert histogram.boundaries() == [0]
        assert optimal_error(values, 2) == pytest.approx(
            naive_sse(values[1:]), abs=1e-9
        )

    def test_error_matches_histogram_sse(self, utilization_1k):
        values = utilization_1k[:200]
        histogram = optimal_histogram(values, 6)
        assert optimal_error(values, 6) == pytest.approx(
            histogram.sse(values), rel=1e-9, abs=1e-6
        )

    @given(tiny_sequences, st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, values, buckets):
        """The DP equals exhaustive search over all partitions."""
        _, brute_error = brute_force_histogram(values, buckets)
        assert optimal_error(values, buckets) == pytest.approx(
            brute_error, rel=1e-9, abs=1e-6
        )

    @given(tiny_sequences, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_histogram_sse_equals_reported_error(self, values, buckets):
        histogram = optimal_histogram(values, buckets)
        assert histogram.sse(values) == pytest.approx(
            optimal_error(values, buckets), rel=1e-9, abs=1e-6
        )

    @given(tiny_sequences)
    @settings(max_examples=40, deadline=None)
    def test_error_non_increasing_in_buckets(self, values):
        errors = [optimal_error(values, b) for b in range(1, 6)]
        for coarse, fine in zip(errors, errors[1:]):
            assert fine <= coarse + 1e-9

    def test_uses_at_most_b_buckets(self):
        histogram = optimal_histogram(np.arange(20.0), 4)
        assert histogram.num_buckets <= 4


class TestOptimalErrorTable:
    def test_shape(self):
        table = optimal_error_table(np.arange(10.0), 3)
        assert table.shape == (10, 3)

    def test_first_column_is_single_bucket_sse(self):
        values = np.asarray([1.0, 5.0, 2.0, 8.0])
        table = optimal_error_table(values, 2)
        for j in range(4):
            assert table[j, 0] == pytest.approx(naive_sse(values[: j + 1]))

    @given(tiny_sequences)
    @settings(max_examples=30, deadline=None)
    def test_herror_monotone_in_prefix_length(self, values):
        """HERROR[i, k] is non-decreasing in i (paper section 4.2, obs. 2)."""
        buckets = min(4, values.size)
        table = optimal_error_table(values, buckets)
        for k in range(buckets):
            column = table[:, k]
            assert np.all(np.diff(column) >= -1e-6 * (1 + column[:-1]))

    @given(tiny_sequences)
    @settings(max_examples=30, deadline=None)
    def test_herror_monotone_in_buckets(self, values):
        buckets = min(4, values.size)
        table = optimal_error_table(values, buckets)
        for j in range(values.size):
            row = table[j, :]
            assert np.all(np.diff(row) <= 1e-6 * (1 + row[:-1]))


class TestMetricGenericDP:
    @given(tiny_sequences, st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_sae_matches_brute_force(self, values, buckets):
        """The DP is metric-agnostic: SAE optimum equals exhaustive search."""
        metric = SAEMetric(values)
        _, expected = brute_force_histogram(values, buckets, metric=metric)
        assert optimal_error(values, buckets, metric=metric) == pytest.approx(
            expected, rel=1e-9, abs=1e-6
        )

    def test_sae_representatives_are_medians(self):
        values = np.asarray([0.0, 0.0, 100.0, 7.0, 7.0, 7.0])
        metric = SAEMetric(values)
        histogram = optimal_histogram(values, 2, metric=metric)
        for bucket in histogram.buckets:
            segment = values[bucket.start : bucket.end + 1]
            assert bucket.value == pytest.approx(float(np.median(segment)))

    def test_sse_metric_paths_agree(self):
        """Explicit SSEMetric and the fast path compute the same optimum."""
        from repro.core.errors import SSEMetric

        rng = np.random.default_rng(17)
        values = rng.integers(0, 40, size=30).astype(float)
        fast = optimal_error(values, 5)
        generic = optimal_error(values, 5, metric=SSEMetric(values))
        assert fast == pytest.approx(generic, rel=1e-9)


class TestBruteForce:
    def test_respects_metric(self):
        """Under SAE the optimal split can differ from SSE's."""
        values = np.asarray([0.0, 0.0, 10.0, 10.0])
        sse_histogram, sse_error = brute_force_histogram(values, 2)
        assert sse_error == 0.0
        sae_histogram, sae_error = brute_force_histogram(
            values, 2, metric=SAEMetric(values)
        )
        assert sae_error == 0.0
        assert sae_histogram.boundaries() == sse_histogram.boundaries() == [1]

    def test_single_bucket_error(self):
        values = np.asarray([0.0, 2.0])
        _, error = brute_force_histogram(values, 1)
        assert error == 2.0
