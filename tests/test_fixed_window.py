"""Tests for the paper's fixed-window algorithm (repro.core.fixed_window).

Theorem 1 contract: after any arrival, the histogram of the last n points
has SSE within ``(1 + eps)`` of the optimal B-bucket SSE of that window.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixed_window import FixedWindowHistogramBuilder
from repro.core.optimal import optimal_error

from .conftest import bucket_counts, epsilons, longer_sequences


class TestConstruction:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            FixedWindowHistogramBuilder(0, 4, 0.1)
        with pytest.raises(ValueError):
            FixedWindowHistogramBuilder(8, 0, 0.1)
        with pytest.raises(ValueError):
            FixedWindowHistogramBuilder(8, 4, 0.0)

    def test_update_before_any_point(self):
        builder = FixedWindowHistogramBuilder(8, 2, 0.1)
        with pytest.raises(ValueError):
            builder.update()

    def test_window_tracks_stream(self):
        builder = FixedWindowHistogramBuilder(3, 2, 0.5)
        builder.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert len(builder) == 3
        assert builder.total_seen == 5
        assert list(builder.window_values()) == [3.0, 4.0, 5.0]


class TestBasicHistograms:
    def test_single_point(self):
        builder = FixedWindowHistogramBuilder(4, 3, 0.1)
        builder.append(7.0)
        histogram = builder.histogram()
        assert len(histogram) == 1
        assert histogram.point_estimate(0) == 7.0

    def test_fewer_points_than_buckets_is_exact(self):
        builder = FixedWindowHistogramBuilder(16, 8, 0.1)
        values = [5.0, 1.0, 9.0]
        builder.extend(values)
        assert list(builder.histogram().to_array()) == values
        assert builder.error_estimate == 0.0

    def test_single_bucket(self):
        builder = FixedWindowHistogramBuilder(4, 1, 0.5)
        builder.extend([2.0, 4.0, 6.0])
        histogram = builder.histogram()
        assert histogram.num_buckets == 1
        assert histogram.buckets[0].value == 4.0

    def test_plateaus_exact(self, step_sequence):
        builder = FixedWindowHistogramBuilder(step_sequence.size, 3, 0.1)
        builder.extend(step_sequence)
        assert builder.error_estimate == pytest.approx(0.0, abs=1e-9)

    def test_paper_example(self):
        """Section 4.5, Example 1: the slide from [100,0,0,0,1,1,1,1]."""
        builder = FixedWindowHistogramBuilder(8, 2, 1.0)
        builder.extend([100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0])
        histogram = builder.histogram()
        # Optimal isolates the outlier: buckets [0,0] and [1..7].
        assert histogram.boundaries() == [0]
        # Slide: 100 drops, 1 enters -> data 0,0,0,1,1,1,1,1.
        builder.append(1.0)
        histogram = builder.histogram()
        window = builder.window_values()
        # The example's optimum splits after the third zero (index 2).
        assert histogram.sse(window) <= 2.0 * optimal_error(window, 2) + 1e-9
        assert histogram.boundaries() == [2]

    def test_update_is_idempotent(self):
        builder = FixedWindowHistogramBuilder(8, 2, 0.5)
        builder.extend([1.0, 5.0, 9.0, 2.0])
        first = builder.histogram()
        builder.update()
        builder.update()
        assert builder.histogram() == first


class TestApproximationGuarantee:
    @given(longer_sequences, bucket_counts, epsilons)
    @settings(max_examples=60, deadline=None)
    def test_full_window_within_factor(self, values, buckets, epsilon):
        builder = FixedWindowHistogramBuilder(values.size, buckets, epsilon)
        builder.extend(values)
        histogram = builder.histogram()
        optimum = optimal_error(values, buckets)
        sse = histogram.sse(values)
        assert sse <= (1.0 + epsilon) * optimum + 1e-6
        assert builder.error_estimate == pytest.approx(sse, rel=1e-6, abs=1e-6)

    @given(
        st.lists(st.integers(0, 100), min_size=12, max_size=70),
        st.integers(2, 5),
        epsilons,
    )
    @settings(max_examples=40, deadline=None)
    def test_sliding_window_within_factor(self, points, buckets, epsilon):
        """The guarantee holds after every slide, not just the first fill."""
        window = 10
        stream = np.asarray(points, dtype=np.float64)
        builder = FixedWindowHistogramBuilder(window, buckets, epsilon)
        for index, value in enumerate(stream):
            builder.append(value)
            if index >= window - 1 and index % 3 == 0:
                current = stream[index - window + 1 : index + 1]
                assert np.allclose(builder.window_values(), current)
                sse = builder.histogram().sse(current)
                optimum = optimal_error(current, buckets)
                assert sse <= (1.0 + epsilon) * optimum + 1e-6

    def test_long_slide_over_regime_change(self, utilization_1k):
        """Slide across a realistic stream; spot-check the guarantee."""
        window, buckets, epsilon = 64, 4, 0.25
        builder = FixedWindowHistogramBuilder(window, buckets, epsilon)
        for index, value in enumerate(utilization_1k[:400]):
            builder.append(value)
            if index >= window - 1 and index % 50 == 0:
                current = utilization_1k[index - window + 1 : index + 1]
                sse = builder.histogram().sse(current)
                optimum = optimal_error(current, buckets)
                assert sse <= (1.0 + epsilon) * optimum + 1e-6


class TestSnapshot:
    def test_round_trip_identical_histogram(self):
        import json

        rng = np.random.default_rng(6)
        stream = rng.integers(0, 100, size=400).astype(float)
        builder = FixedWindowHistogramBuilder(64, 6, 0.2)
        builder.extend(stream[:250])
        payload = json.loads(json.dumps(builder.to_state()))
        restored = FixedWindowHistogramBuilder.from_state(payload)
        assert restored.histogram() == builder.histogram()
        assert restored.total_seen == builder.total_seen

    def test_resume_tracks_original(self):
        rng = np.random.default_rng(7)
        stream = rng.integers(0, 50, size=300).astype(float)
        builder = FixedWindowHistogramBuilder(32, 4, 0.25)
        builder.extend(stream[:150])
        restored = FixedWindowHistogramBuilder.from_state(builder.to_state())
        for value in stream[150:]:
            builder.append(value)
            restored.append(value)
        assert restored.histogram() == builder.histogram()
        assert np.allclose(restored.window_values(), builder.window_values())

    def test_partial_window_snapshot(self):
        builder = FixedWindowHistogramBuilder(64, 4, 0.2)
        builder.extend([1.0, 2.0, 3.0])
        restored = FixedWindowHistogramBuilder.from_state(builder.to_state())
        assert len(restored) == 3
        assert restored.histogram() == builder.histogram()

    def test_inconsistent_snapshot_rejected(self):
        builder = FixedWindowHistogramBuilder(8, 2, 0.5)
        builder.extend(np.arange(8.0))
        state = builder.to_state()
        state["total_seen"] = 3  # below the window length
        with pytest.raises(ValueError):
            FixedWindowHistogramBuilder.from_state(state)

    def test_engine_preserved(self):
        builder = FixedWindowHistogramBuilder(16, 3, 0.5, engine="dense")
        builder.extend(np.arange(16.0))
        restored = FixedWindowHistogramBuilder.from_state(builder.to_state())
        assert restored.engine == "dense"


class TestDenseEngine:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            FixedWindowHistogramBuilder(8, 2, 0.1, engine="magic")

    @given(longer_sequences, bucket_counts, epsilons)
    @settings(max_examples=40, deadline=None)
    def test_dense_guarantee(self, values, buckets, epsilon):
        builder = FixedWindowHistogramBuilder(
            values.size, buckets, epsilon, engine="dense"
        )
        builder.extend(values)
        sse = builder.histogram().sse(values)
        assert sse <= (1.0 + epsilon) * optimal_error(values, buckets) + 1e-6
        assert builder.error_estimate == pytest.approx(sse, rel=1e-6, abs=1e-6)

    @given(longer_sequences)
    @settings(max_examples=25, deadline=None)
    def test_engines_agree_within_guarantee(self, values):
        """Both engines satisfy the same bound; dense is never looser than
        the guarantee even when covers differ."""
        buckets, epsilon = 4, 0.25
        results = {}
        for engine in ("lazy", "dense"):
            builder = FixedWindowHistogramBuilder(
                values.size, buckets, epsilon, engine=engine
            )
            builder.extend(values)
            results[engine] = builder.error_estimate
        optimum = optimal_error(values, buckets)
        bound = (1.0 + epsilon) * optimum + 1e-6
        assert results["lazy"] <= bound
        assert results["dense"] <= bound

    def test_dense_sliding(self):
        rng = np.random.default_rng(5)
        stream = rng.integers(0, 80, size=150).astype(float)
        builder = FixedWindowHistogramBuilder(24, 3, 0.2, engine="dense")
        for index, value in enumerate(stream):
            builder.append(value)
            if index >= 23 and index % 11 == 0:
                window = stream[index - 23 : index + 1]
                assert builder.histogram().sse(window) <= (
                    1.2 * optimal_error(window, 3) + 1e-6
                )

    def test_dense_records_stats(self):
        builder = FixedWindowHistogramBuilder(32, 4, 0.25, engine="dense")
        builder.extend(np.arange(32.0))
        builder.update()
        assert builder.last_stats.herror_evaluations >= 32
        assert len(builder.last_stats.intervals_per_level) == 3


class TestDiagnostics:
    def test_interval_counts_shape(self):
        builder = FixedWindowHistogramBuilder(32, 4, 0.25)
        builder.extend(np.arange(32.0))
        counts = builder.interval_counts()
        assert len(counts) == 3  # levels 1 .. B-1
        assert all(count >= 1 for count in counts)

    def test_stats_accumulate(self):
        builder = FixedWindowHistogramBuilder(16, 3, 0.5)
        builder.extend(np.arange(16.0))
        builder.update()
        first = builder.lifetime_stats.herror_evaluations
        assert first > 0
        builder.append(99.0)
        builder.update()
        assert builder.lifetime_stats.herror_evaluations > first
        assert builder.last_stats.total_intervals == sum(
            builder.last_stats.intervals_per_level
        )

    def test_no_rebuild_without_new_points(self):
        builder = FixedWindowHistogramBuilder(16, 3, 0.5)
        builder.extend(np.arange(16.0))
        builder.update()
        evaluations = builder.lifetime_stats.herror_evaluations
        builder.update()  # not dirty: no work
        assert builder.lifetime_stats.herror_evaluations == evaluations

    def test_smaller_epsilon_more_intervals(self, utilization_1k):
        counts = {}
        for epsilon in (1.0, 0.1):
            builder = FixedWindowHistogramBuilder(256, 4, epsilon)
            builder.extend(utilization_1k[:256])
            counts[epsilon] = sum(builder.interval_counts())
        assert counts[0.1] > counts[1.0]
