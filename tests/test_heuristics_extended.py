"""Tests for the extended construction routes: local search and sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimal import optimal_error, optimal_histogram
from repro.heuristics import (
    equal_width_histogram,
    iterative_histogram,
    refine_histogram,
    sampled_histogram,
)

from .conftest import int_sequences


class TestRefineHistogram:
    def test_length_mismatch(self):
        histogram = equal_width_histogram([1.0, 2.0, 3.0], 2)
        with pytest.raises(ValueError):
            refine_histogram([1.0, 2.0], histogram)

    def test_negative_sweeps_rejected(self):
        values = np.arange(8.0)
        histogram = equal_width_histogram(values, 2)
        with pytest.raises(ValueError):
            refine_histogram(values, histogram, max_sweeps=-1)

    def test_single_bucket_is_noop(self):
        values = np.asarray([5.0, 1.0, 9.0])
        histogram = equal_width_histogram(values, 1)
        assert refine_histogram(values, histogram) == histogram

    def test_already_optimal_is_fixed_point(self, step_sequence):
        optimal = optimal_histogram(step_sequence, 3)
        refined = refine_histogram(step_sequence, optimal)
        assert refined.sse(step_sequence) == pytest.approx(
            optimal.sse(step_sequence), abs=1e-9
        )

    @given(int_sequences, st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_never_increases_sse(self, values, buckets):
        start = equal_width_histogram(values, buckets)
        refined = refine_histogram(values, start)
        assert refined.sse(values) <= start.sse(values) + 1e-9

    @given(int_sequences, st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_never_beats_optimal(self, values, buckets):
        refined = iterative_histogram(values, buckets)
        assert refined.sse(values) >= optimal_error(values, buckets) - 1e-6

    def test_finds_plateaus(self, step_sequence):
        refined = iterative_histogram(step_sequence, 3)
        assert refined.sse(step_sequence) == pytest.approx(0.0, abs=1e-9)

    def test_close_to_optimal_on_real_data(self, utilization_1k):
        values = utilization_1k[:512]
        refined = iterative_histogram(values, 12)
        assert refined.sse(values) <= 1.5 * optimal_error(values, 12) + 1e-6


class TestSampledHistogram:
    def test_validates(self):
        with pytest.raises(ValueError):
            sampled_histogram([], 2)
        with pytest.raises(ValueError):
            sampled_histogram([1.0], 0)
        with pytest.raises(ValueError):
            sampled_histogram([1.0], 2, sample_size=0)

    def test_full_sample_is_optimal(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 40, size=50).astype(float)
        sampled = sampled_histogram(values, 4, sample_size=50)
        assert sampled.sse(values) == pytest.approx(
            optimal_error(values, 4), abs=1e-6
        )

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 40, size=300).astype(float)
        first = sampled_histogram(values, 6, sample_size=64, seed=9)
        second = sampled_histogram(values, 6, sample_size=64, seed=9)
        assert first == second

    def test_budget_respected(self, utilization_1k):
        histogram = sampled_histogram(utilization_1k, 8, sample_size=128)
        assert histogram.num_buckets <= 8
        assert len(histogram) == utilization_1k.size

    @given(int_sequences, st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_never_beats_optimal(self, values, buckets):
        histogram = sampled_histogram(values, buckets, sample_size=16, seed=2)
        assert histogram.sse(values) >= optimal_error(values, buckets) - 1e-6

    def test_larger_samples_usually_help(self, utilization_1k):
        values = utilization_1k
        coarse = np.mean([
            sampled_histogram(values, 12, sample_size=32, seed=s).sse(values)
            for s in range(5)
        ])
        fine = np.mean([
            sampled_histogram(values, 12, sample_size=512, seed=s).sse(values)
            for s in range(5)
        ])
        assert fine <= coarse


class TestFiniteInputValidation:
    def test_prefix_sums_reject_nan(self):
        from repro.core.prefix import PrefixSums, SlidingPrefixSums

        with pytest.raises(ValueError):
            PrefixSums([1.0, float("nan")])
        with pytest.raises(ValueError):
            PrefixSums([1.0, float("inf")])
        sliding = SlidingPrefixSums(4)
        with pytest.raises(ValueError):
            sliding.append(float("nan"))

    def test_builders_reject_nan(self):
        from repro.core import AgglomerativeHistogramBuilder, FixedWindowHistogramBuilder

        agglomerative = AgglomerativeHistogramBuilder(4, 0.1)
        with pytest.raises(ValueError):
            agglomerative.append(float("inf"))
        fixed = FixedWindowHistogramBuilder(8, 4, 0.1)
        with pytest.raises(ValueError):
            fixed.append(float("nan"))
