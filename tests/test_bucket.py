"""Tests for the histogram data model (repro.core.bucket)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bucket import Bucket, Histogram

from .conftest import int_sequences


class TestBucket:
    def test_size_and_total(self):
        bucket = Bucket(2, 5, 3.0)
        assert bucket.size == 4
        assert bucket.total == 12.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Bucket(3, 2, 1.0)
        with pytest.raises(ValueError):
            Bucket(-1, 2, 1.0)

    def test_overlap_sum(self):
        bucket = Bucket(2, 5, 2.0)
        assert bucket.overlap_sum(0, 10) == 8.0  # full overlap
        assert bucket.overlap_sum(4, 10) == 4.0  # partial
        assert bucket.overlap_sum(6, 10) == 0.0  # disjoint
        assert bucket.overlap_sum(3, 3) == 2.0  # single position


class TestHistogramConstruction:
    def test_requires_buckets(self):
        with pytest.raises(ValueError):
            Histogram([])

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            Histogram([Bucket(1, 3, 1.0)])

    def test_must_be_contiguous(self):
        with pytest.raises(ValueError):
            Histogram([Bucket(0, 2, 1.0), Bucket(4, 5, 2.0)])
        with pytest.raises(ValueError):
            Histogram([Bucket(0, 2, 1.0), Bucket(2, 5, 2.0)])

    def test_from_boundaries_means(self):
        histogram = Histogram.from_boundaries([1.0, 3.0, 10.0, 20.0], [1])
        assert histogram.num_buckets == 2
        assert histogram.buckets[0].value == 2.0
        assert histogram.buckets[1].value == 15.0

    def test_from_boundaries_rejects_bad_splits(self):
        with pytest.raises(ValueError):
            Histogram.from_boundaries([1.0, 2.0], [5])

    def test_from_boundaries_empty(self):
        with pytest.raises(ValueError):
            Histogram.from_boundaries([], [])

    def test_equality_and_hash(self):
        a = Histogram.from_boundaries([1.0, 2.0, 3.0], [0])
        b = Histogram.from_boundaries([1.0, 2.0, 3.0], [0])
        c = Histogram.from_boundaries([1.0, 2.0, 3.0], [1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_boundaries_roundtrip(self):
        histogram = Histogram.from_boundaries(np.arange(10.0), [2, 6])
        assert histogram.boundaries() == [2, 6]


class TestHistogramQueries:
    @pytest.fixture
    def simple(self) -> Histogram:
        # values: [2, 2, 2, 8, 8] approximated exactly.
        return Histogram([Bucket(0, 2, 2.0), Bucket(3, 4, 8.0)])

    def test_len(self, simple):
        assert len(simple) == 5

    def test_point_estimate(self, simple):
        assert simple.point_estimate(0) == 2.0
        assert simple.point_estimate(2) == 2.0
        assert simple.point_estimate(3) == 8.0
        with pytest.raises(IndexError):
            simple.point_estimate(5)

    def test_range_sum_within_bucket(self, simple):
        assert simple.range_sum(0, 1) == 4.0

    def test_range_sum_across_buckets(self, simple):
        assert simple.range_sum(1, 4) == 2.0 * 2 + 8.0 * 2

    def test_range_sum_whole(self, simple):
        assert simple.range_sum(0, 4) == 22.0

    def test_range_average(self, simple):
        assert simple.range_average(0, 4) == pytest.approx(22.0 / 5)

    def test_empty_range_rejected(self, simple):
        with pytest.raises(ValueError):
            simple.range_sum(3, 2)

    def test_to_array(self, simple):
        assert list(simple.to_array()) == [2.0, 2.0, 2.0, 8.0, 8.0]

    def test_sse_exact_representation(self, simple):
        values = [2.0, 2.0, 2.0, 8.0, 8.0]
        assert simple.sse(values) == 0.0

    def test_sse_length_mismatch(self, simple):
        with pytest.raises(ValueError):
            simple.sse([1.0, 2.0])

    def test_describe_contains_every_bucket(self, simple):
        text = simple.describe()
        assert text.count("->") == simple.num_buckets

    @given(int_sequences, st.data())
    def test_range_sum_consistent_with_to_array(self, values, data):
        n = values.size
        splits = sorted(
            data.draw(st.sets(st.integers(0, max(0, n - 2)), max_size=4))
        )
        splits = [s for s in splits if s < n - 1]
        histogram = Histogram.from_boundaries(values, splits)
        dense = histogram.to_array()
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(i, n - 1))
        assert histogram.range_sum(i, j) == pytest.approx(
            float(dense[i : j + 1].sum()), abs=1e-9
        )

    @given(int_sequences)
    def test_single_bucket_total_sum_exact(self, values):
        """With mean representatives, the whole-range sum is exact."""
        histogram = Histogram.from_boundaries(values, [])
        assert histogram.range_sum(0, values.size - 1) == pytest.approx(
            float(values.sum()), rel=1e-9, abs=1e-6
        )

    @given(int_sequences)
    def test_rebucket_means_is_identity_on_mean_histograms(self, values):
        histogram = Histogram.from_boundaries(values, [])
        assert histogram.rebucket_means(values) == histogram
