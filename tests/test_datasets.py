"""Tests for the synthetic benchmark datasets (repro.datasets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    att_utilization_stream,
    timeseries_collection,
    warehouse_measure_column,
)


class TestUtilizationStream:
    def test_validates_length(self):
        with pytest.raises(ValueError):
            att_utilization_stream(0)

    def test_deterministic(self):
        assert np.array_equal(
            att_utilization_stream(500, seed=1), att_utilization_stream(500, seed=1)
        )
        assert not np.array_equal(
            att_utilization_stream(500, seed=1), att_utilization_stream(500, seed=2)
        )

    def test_integer_nonnegative(self):
        values = att_utilization_stream(2000, seed=3)
        assert np.all(values >= 0)
        assert np.array_equal(values, np.round(values))

    def test_has_diurnal_structure(self):
        values = att_utilization_stream(288 * 4, seed=4)
        # Autocorrelation at one period should clearly beat a random lag.
        def autocorr(lag: int) -> float:
            a, b = values[:-lag], values[lag:]
            return float(np.corrcoef(a, b)[0, 1])

        assert autocorr(288) > autocorr(137)

    def test_has_bursts(self):
        values = att_utilization_stream(5000, seed=5)
        assert values.max() > np.percentile(values, 99) * 1.2

    def test_prefix_stability(self):
        """Longer streams extend shorter ones? Not required -- but seeds fix
        the *sequence*, so equal lengths agree and that is what benches use."""
        a = att_utilization_stream(300, seed=6)
        b = att_utilization_stream(300, seed=6)
        assert np.array_equal(a, b)


class TestWarehouseColumn:
    def test_validates(self):
        with pytest.raises(ValueError):
            warehouse_measure_column(0)
        with pytest.raises(ValueError):
            warehouse_measure_column(10, domain=5)

    def test_range_and_type(self):
        values = warehouse_measure_column(5000, seed=7, domain=500)
        assert values.min() >= 0
        assert values.max() <= 500
        assert np.array_equal(values, np.round(values))

    def test_skewed(self):
        values = warehouse_measure_column(20000, seed=8)
        assert np.median(values) < values.mean() or np.percentile(values, 95) > 3 * np.median(values)

    def test_domain_scales(self):
        small = warehouse_measure_column(5000, seed=9, domain=100)
        large = warehouse_measure_column(5000, seed=9, domain=4000)
        assert large.max() > small.max()


class TestTimeseriesCollection:
    def test_validates(self):
        with pytest.raises(ValueError):
            timeseries_collection(0, 64)
        with pytest.raises(ValueError):
            timeseries_collection(5, 2)
        with pytest.raises(ValueError):
            timeseries_collection(5, 64, families=0)

    def test_shape(self):
        collection = timeseries_collection(12, 64, seed=10)
        assert collection.shape == (12, 64)

    def test_deterministic(self):
        assert np.array_equal(
            timeseries_collection(6, 32, seed=11), timeseries_collection(6, 32, seed=11)
        )

    def test_family_structure(self):
        """Members of the same family correlate more than across families."""
        collection = timeseries_collection(60, 128, families=3, seed=12)
        correlations = np.corrcoef(collection)
        upper = correlations[np.triu_indices(60, k=1)]
        # With shape families present, the correlation distribution is
        # strongly bimodal: some pairs near 1, others far lower.
        assert upper.max() > 0.9
        assert upper.min() < 0.5
