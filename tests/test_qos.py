"""Multi-tenant QoS and control-plane hardening tests.

Covers the :mod:`repro.service.qos` policy layer (tenant token buckets,
priority classes, the graceful-degradation ladder, deterministic
shedding and honest shed accounting), its enforcement in both serving
tiers, and the router's hardened control plane (per-verb deadlines,
bounded idempotent retry, the per-shard circuit breaker).  Fault
schedules come from :class:`repro.service.faults.FaultInjector`, so
every overload and wedge in here is deterministic.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import (
    FaultInjector,
    QoSConfig,
    QoSController,
    QuotaExceededError,
    StreamService,
    StreamSpec,
    TenantQuota,
)
from repro.service.config import build_service, load_config
from repro.service.qos import (
    LEVEL_HEALTHY,
    LEVEL_SHED,
    LEVEL_STALE,
    LEVEL_THROTTLE,
    SHED_METRIC,
    THROTTLED_METRIC,
    TRANSITIONS_METRIC,
)
from repro.shard import CircuitBreaker, ShardRouter, ShardUnavailableError
from repro.shard.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN
from repro.shard.router import _IDEMPOTENT_VERBS, VERB_DEADLINES

GK = dict(epsilon=0.1)
ACCURACY = dict(epsilon=0.25, window_size=64, check_every=64)


def _stream(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.floor(rng.random(n) * 101.0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_controller(clock=None, **overrides) -> QoSController:
    return QoSController(QoSConfig(**overrides), clock=clock or FakeClock())


# ---------------------------------------------------------------------------
# Configuration objects
# ---------------------------------------------------------------------------


class TestQuotaAndConfig:
    def test_quota_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TenantQuota(rate=0.0, burst=10.0)
        with pytest.raises(ValueError, match="burst"):
            TenantQuota(rate=1.0, burst=0.5)
        with pytest.raises(ValueError, match="unknown quota keys"):
            TenantQuota.from_dict({"rate": 1.0, "burst": 2.0, "color": "red"})
        with pytest.raises(ValueError, match="both"):
            TenantQuota.from_dict({"rate": 1.0})
        quota = TenantQuota(rate=5.0, burst=20.0)
        assert TenantQuota.from_dict(quota.to_dict()) == quota

    def test_config_threshold_ordering_enforced(self):
        with pytest.raises(ValueError, match="fill thresholds"):
            QoSConfig(throttle_fill=0.8, shed_fill=0.5)
        with pytest.raises(ValueError, match="latency thresholds"):
            QoSConfig(throttle_latency=1.0, shed_latency=0.5)
        with pytest.raises(ValueError, match="duplicate tenant"):
            QoSConfig(
                tenants=(
                    ("a", TenantQuota(1.0, 1.0)),
                    ("a", TenantQuota(2.0, 2.0)),
                )
            )
        with pytest.raises(ValueError, match="cooldown"):
            QoSConfig(cooldown=0)

    def test_config_roundtrip_and_quota_lookup(self):
        config = QoSConfig(
            tenants=(("gold", TenantQuota(rate=100.0, burst=200.0)),),
            default_quota=TenantQuota(rate=10.0, burst=20.0),
            shed_fraction=0.25,
            cooldown=3,
            seed=7,
        )
        assert QoSConfig.from_dict(config.to_dict()) == config
        assert config.quota_for("gold").rate == 100.0
        assert config.quota_for("anyone").burst == 20.0
        assert QoSConfig().quota_for("anyone") is None
        with pytest.raises(ValueError, match="unknown qos keys"):
            QoSConfig.from_dict({"sched_fraction": 0.5})


# ---------------------------------------------------------------------------
# Token buckets
# ---------------------------------------------------------------------------


class TestTokenBuckets:
    def test_burst_refusal_and_refill(self):
        clock = FakeClock()
        ctrl = make_controller(
            clock, default_quota=TenantQuota(rate=10.0, burst=20.0)
        )
        ctrl.register_stream("s", "acme", 0)
        kept, shed = ctrl.admit("s", np.ones(20))
        assert kept.size == 20 and shed == 0
        with pytest.raises(QuotaExceededError) as err:
            ctrl.admit("s", np.ones(5))
        assert err.value.retry_after == pytest.approx(0.5)
        assert err.value.tenant == "acme"
        assert err.value.stream == "s"
        clock.advance(0.5)
        kept, _ = ctrl.admit("s", np.ones(5))
        assert kept.size == 5

    def test_oversize_batch_always_makes_progress(self):
        clock = FakeClock()
        ctrl = make_controller(
            clock, default_quota=TenantQuota(rate=1.0, burst=10.0)
        )
        ctrl.register_stream("s", "acme", 0)
        kept, _ = ctrl.admit("s", np.ones(50))  # > burst, full bucket: admit
        assert kept.size == 50
        with pytest.raises(QuotaExceededError) as err:
            ctrl.admit("s", np.ones(50))  # drained bucket: wait for burst
        assert err.value.retry_after == pytest.approx(10.0)
        clock.advance(10.0)
        kept, _ = ctrl.admit("s", np.ones(50))
        assert kept.size == 50

    def test_unmetered_and_unregistered_streams_pass(self):
        ctrl = make_controller()  # no quotas anywhere
        ctrl.register_stream("s", "acme", 0)
        kept, shed = ctrl.admit("s", np.ones(10_000))
        assert kept.size == 10_000 and shed == 0
        kept, shed = ctrl.admit("ghost", np.ones(7))  # never registered
        assert kept.size == 7 and shed == 0
        snapshot = ctrl.snapshot()
        assert snapshot["admitted_points"] == 10_000
        assert "ghost" not in snapshot["streams"]


# ---------------------------------------------------------------------------
# The degradation ladder
# ---------------------------------------------------------------------------


class TestLadder:
    def make(self, **overrides):
        signals = {"queue_fill": 0.0, "p99_latency": 0.0}
        ctrl = make_controller(**overrides)
        ctrl.set_signal_source(lambda: dict(signals))
        return ctrl, signals

    def test_escalation_immediate_demotion_hysteretic(self):
        ctrl, signals = self.make(cooldown=2)
        assert ctrl.evaluate() == LEVEL_HEALTHY
        signals["queue_fill"] = 0.8  # >= shed_fill, jumps two levels
        assert ctrl.evaluate() == LEVEL_SHED
        signals["queue_fill"] = 0.2
        assert ctrl.evaluate() == LEVEL_SHED  # calm eval 1 of 2
        assert ctrl.evaluate() == LEVEL_THROTTLE  # one level per cooldown
        assert ctrl.evaluate() == LEVEL_THROTTLE
        assert ctrl.evaluate() == LEVEL_HEALTHY
        assert ctrl.level_name() == "healthy"
        trans = ctrl.registry.counter(TRANSITIONS_METRIC, level="shed")
        assert trans.value == 1

    def test_latency_escalates_then_mutes_until_rearmed(self):
        ctrl, signals = self.make(cooldown=1)
        signals["p99_latency"] = 2.0  # >= stale_latency
        assert ctrl.evaluate() == LEVEL_STALE
        # Fill is calm and the reservoir does not decay: the ladder
        # steps all the way down, muting the stale latency reading
        # instead of re-escalating each step.
        assert ctrl.evaluate() == LEVEL_SHED
        assert ctrl.evaluate() == LEVEL_THROTTLE
        assert ctrl.evaluate() == LEVEL_HEALTHY
        signals["p99_latency"] = 0.3  # still muted: no escalation
        assert ctrl.evaluate() == LEVEL_HEALTHY
        signals["p99_latency"] = 0.0  # healthy reading re-arms the signal
        assert ctrl.evaluate() == LEVEL_HEALTHY
        signals["p99_latency"] = 0.3  # >= shed_latency, armed again
        assert ctrl.evaluate() == LEVEL_SHED

    def test_stale_demotion_gated_on_drained(self):
        ctrl, signals = self.make(cooldown=1)
        drained = [False]
        ctrl.set_drained(lambda: drained[0])
        signals["queue_fill"] = 0.99
        assert ctrl.evaluate() == LEVEL_STALE
        signals["queue_fill"] = 0.0
        assert ctrl.evaluate() == LEVEL_STALE  # backlog still replaying
        assert ctrl.evaluate() == LEVEL_STALE
        drained[0] = True
        assert ctrl.evaluate() == LEVEL_SHED

    def test_force_level_pins_and_releases(self):
        ctrl, signals = self.make(cooldown=2)
        ctrl.force_level("shed")
        assert ctrl.evaluate() == LEVEL_SHED
        assert ctrl.snapshot()["forced"] == "shed"
        ctrl.force_level(None)
        assert ctrl.evaluate() == LEVEL_SHED  # hysteresis still applies
        assert ctrl.evaluate() == LEVEL_THROTTLE


# ---------------------------------------------------------------------------
# Deterministic shedding and accounting
# ---------------------------------------------------------------------------


class TestShedding:
    def test_shed_fraction_and_determinism(self):
        batch = np.arange(1000, dtype=np.float64)
        kept = []
        for _ in range(2):
            ctrl = make_controller(shed_fraction=0.5, seed=4)
            ctrl.register_stream("s", "acme", 1)
            ctrl.force_level("shed")
            admitted, shed = ctrl.admit("s", batch)
            assert 400 <= shed <= 600  # Weyl sample is near-uniform
            kept.append(admitted)
        assert np.array_equal(kept[0], kept[1])  # same seed, same mask
        other = make_controller(shed_fraction=0.5, seed=5)
        other.register_stream("s", "acme", 1)
        other.force_level("shed")
        admitted, _ = other.admit("s", batch)
        assert not np.array_equal(kept[0], admitted)

    def test_quota_refusal_does_not_advance_the_shed_schedule(self):
        clock = FakeClock()
        ctrl = make_controller(
            clock,
            default_quota=TenantQuota(rate=1.0, burst=8.0),
            shed_fraction=0.5,
        )
        ctrl.register_stream("s", "acme", 1)
        ctrl.force_level("shed")
        first = np.arange(64, dtype=np.float64)
        second = np.arange(64, 128, dtype=np.float64)
        ctrl.admit("s", first)  # oversize rule drains the bucket
        with pytest.raises(QuotaExceededError):
            ctrl.admit("s", second)
        clock.advance(8.0)
        retried, _ = ctrl.admit("s", second)
        reference = make_controller(shed_fraction=0.5)  # unmetered twin
        reference.register_stream("s", "acme", 1)
        reference.force_level("shed")
        reference.admit("s", first)
        expected, _ = reference.admit("s", second)
        assert np.array_equal(retried, expected)

    def test_stale_serve_sheds_everything_sheddable(self):
        ctrl = make_controller()
        ctrl.register_stream("bulk", "acme", 1)
        ctrl.register_stream("crit", "acme", 0)
        ctrl.force_level("stale_serve")
        kept, shed = ctrl.admit("bulk", np.ones(100))
        assert kept.size == 0 and shed == 100
        assert ctrl.serving_stale("bulk") is True
        assert ctrl.serving_stale("crit") is False
        kept, shed = ctrl.admit("crit", np.ones(100))
        assert kept.size == 100 and shed == 0

    def test_throttle_inflates_sheddable_cost(self):
        clock = FakeClock()
        ctrl = make_controller(
            clock,
            default_quota=TenantQuota(rate=10.0, burst=10.0),
            throttle_factor=0.5,
        )
        ctrl.register_stream("s", "acme", 1)
        ctrl.force_level("throttle")
        kept, _ = ctrl.admit("s", np.ones(5))  # costs 5 / 0.5 = 10 tokens
        assert kept.size == 5
        with pytest.raises(QuotaExceededError) as err:
            ctrl.admit("s", np.ones(1))  # needs 2 tokens at rate 10/s
        assert err.value.retry_after == pytest.approx(0.2)
        throttled = ctrl.registry.counter(
            THROTTLED_METRIC, tenant="acme", priority="1"
        )
        assert throttled.value == 1

    def test_note_shed_and_snapshot_accounting(self):
        ctrl = make_controller()
        ctrl.register_stream("s", "acme", 2)
        ctrl.note_shed("s", 40)  # e.g. drop_oldest evictions
        ctrl.count_shed("acme", 2, 2)  # raw accounting, no stream record
        snapshot = ctrl.snapshot()
        assert snapshot["shed_points"] == 42
        assert snapshot["streams"]["s"] == {
            "tenant": "acme",
            "priority": 2,
            "sheddable": True,
            "shed_points": 40,
        }
        assert (
            ctrl.registry.counter(SHED_METRIC, tenant="acme", priority="2").value
            == 42
        )


# ---------------------------------------------------------------------------
# Threaded-service enforcement
# ---------------------------------------------------------------------------


class TestServiceQoS:
    def test_spec_tenant_priority_validation_and_roundtrip(self):
        with pytest.raises(ValueError, match="tenant"):
            StreamSpec(backend="exact", tenant="")
        with pytest.raises(ValueError, match="priority"):
            StreamSpec(backend="exact", priority=-1)
        spec = StreamSpec(backend="exact", tenant="gold", priority=0)
        again = StreamSpec.from_dict(spec.to_dict())
        assert (again.tenant, again.priority) == ("gold", 0)
        legacy = StreamSpec.from_dict({"backend": "exact"})
        assert (legacy.tenant, legacy.priority) == ("default", 1)

    def test_ingest_admission_and_typed_refusal(self):
        qos = QoSConfig(default_quota=TenantQuota(rate=50.0, burst=100.0))
        with StreamService(qos=qos) as service:
            service.create_stream("gk", backend="gk_quantiles", params=GK)
            assert service.ingest("gk", _stream(100)) == 100
            with pytest.raises(QuotaExceededError) as err:
                service.ingest("gk", _stream(50, seed=1))
            assert err.value.retry_after > 0
            assert err.value.tenant == "default"
            snapshot = service.qos()
            assert snapshot["admitted_points"] == 100
            assert service.health("gk")["degradation"] == "healthy"

    def test_forced_shed_widens_reported_accuracy(self):
        ctrl = QoSController(QoSConfig())
        with StreamService(qos=ctrl) as service:
            service.create_stream(
                "s", backend="gk_quantiles", params=GK, accuracy=ACCURACY
            )
            service.ingest("s", _stream(128))
            ctrl.force_level("shed")
            accepted = service.ingest("s", _stream(256, seed=1))
            assert 0 < accepted < 256
            assert service.flush("s") is True
            report = service.accuracy("s")
            shed = service.qos()["streams"]["s"]["shed_points"]
            assert shed > 0
            assert report["shed_points"] == shed
            assert report["effective_epsilon"] > report["observed_epsilon"]

    def test_stale_serve_marks_views_and_health(self):
        ctrl = QoSController(QoSConfig())
        with StreamService(qos=ctrl) as service:
            service.create_stream("s", backend="gk_quantiles", params=GK)
            service.create_stream(
                "crit", backend="gk_quantiles", params=GK, priority=0
            )
            service.ingest("s", _stream(200))
            service.ingest("crit", _stream(200))
            assert service.flush() is True
            ctrl.force_level("stale_serve")
            assert service.ingest("s", _stream(50, seed=2)) == 0
            assert service.ingest("crit", _stream(50, seed=2)) == 50
            assert service.view("s").stale is True
            assert service.view("crit").stale is False
            health = service.health("s")
            assert health["degradation"] == "stale_serve"
            assert health["qos_shed"] is True
            assert health["state"] == "degraded"
            assert "qos_shed" not in service.health("crit")

    def test_dead_letter_retry_reenters_admission(self):
        ctrl = QoSController(
            QoSConfig(default_quota=TenantQuota(rate=0.5, burst=4.0))
        )
        with StreamService(qos=ctrl) as service:
            service.create_stream(
                "d", backend="equi_depth", params=dict(num_buckets=4)
            )
            service.ingest("d", [1.0, -3.0, 2.0])  # equi-depth poison
            service.flush("d")
            assert len(service.dead_letters("d")) == 1
            ctrl.force_level("shed")
            with pytest.raises(QuotaExceededError, match="shed"):
                service.retry_dead_letters("d")
            ctrl.force_level("healthy")
            outcome = service.retry_dead_letters("d")
            assert outcome == {"retried": 1, "succeeded": 0, "failed": 1}
            with pytest.raises(QuotaExceededError):  # bucket is drained now
                service.retry_dead_letters("d")

    def test_priority_aware_drop_oldest_counts_shed(self):
        ctrl = QoSController(QoSConfig())
        injector = FaultInjector().slow_ingest_at(
            1, 0.02, stream="m", times=40
        )
        with StreamService(qos=ctrl, fault_injector=injector) as service:
            service.create_stream(
                "m", backend="gk_quantiles", params=GK,
                queue_capacity=64, backpressure="drop_oldest",
                priority=2, accuracy=ACCURACY,
            )

            def produce(seed: int) -> None:
                for i in range(20):
                    service.ingest("m", _stream(64, seed=seed * 100 + i))

            threads = [
                threading.Thread(target=produce, args=(t,)) for t in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert service.flush("m") is True
            snapshot = service.qos()
            assert snapshot["shed_points"] > 0
            report = service.accuracy("m")
            # Admission sheds and queue evictions both land in the same
            # ledgers: the controller totals, the per-tenant metric, and
            # the stream's accuracy monitor all agree.
            assert report["shed_points"] == snapshot["shed_points"]
            counter = ctrl.registry.counter(
                SHED_METRIC, tenant="default", priority="2"
            )
            assert counter.value == snapshot["shed_points"]
            # Polling qos() drives ladder evaluation on a quiet service;
            # with the queue drained it must walk back to healthy.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if service.qos()["level"] == "healthy":
                    break
                time.sleep(0.02)
            assert service.health("m")["state"] == "healthy"

    def test_config_file_parses_qos_tables(self, tmp_path):
        payload = {
            "mode": "threaded",
            "qos": {
                "shed_fraction": 0.5,
                "default": {"rate": 100.0, "burst": 200.0},
                "tenants": {"gold": {"rate": 500.0, "burst": 1000.0}},
            },
            "streams": [
                {
                    "name": "cpu",
                    "backend": "gk_quantiles",
                    "params": {"epsilon": 0.1},
                    "tenant": "gold",
                    "priority": 0,
                }
            ],
        }
        path = tmp_path / "svc.json"
        path.write_text(json.dumps(payload))
        config = load_config(path)
        assert config.qos.quota_for("gold").rate == 500.0
        assert config.qos.quota_for("anyone").burst == 200.0
        name, spec = config.streams[0]
        assert name == "cpu" and (spec.tenant, spec.priority) == ("gold", 0)
        service = build_service(config)
        try:
            assert service.ingest("cpu", _stream(50)) == 50
            assert service.qos()["admitted_points"] == 50
        finally:
            service.close(checkpoint=False)

    def test_cli_exposes_qos_flags(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "--help"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert result.returncode == 0
        assert "--qos-rate" in result.stdout
        assert "--qos-burst" in result.stdout


# ---------------------------------------------------------------------------
# Circuit breaker (pure unit)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trip_halfopen_probe_and_reclose(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            shard="0", failure_threshold=2, reset_timeout=5.0, clock=clock
        )
        assert breaker.state == STATE_CLOSED
        assert breaker.allow() is True
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.allow() is False
        assert breaker.blocked() is True
        clock.advance(5.1)
        assert breaker.blocked() is False
        assert breaker.allow() is True  # the single half-open probe
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allow() is False  # no second concurrent probe
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.state_name() == "closed"

    def test_failed_probe_reopens_and_counts_trips(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            shard="1", failure_threshold=1, reset_timeout=1.0,
            registry=registry, clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow() is True
        breaker.record_failure()  # probe failed: straight back to open
        assert breaker.state == STATE_OPEN
        trips = registry.counter("repro_breaker_trips_total", shard="1")
        assert trips.value == 2
        breaker.reset()
        assert breaker.state == STATE_CLOSED


# ---------------------------------------------------------------------------
# Router control plane: deadlines, retries, breaker
# ---------------------------------------------------------------------------


@pytest.mark.shard
class TestRouterControlPlane:
    def test_per_verb_deadline_table(self):
        assert VERB_DEADLINES["ping"] == 2.0
        assert VERB_DEADLINES["health"] == 2.0
        assert "flush" not in VERB_DEADLINES  # long verbs keep the flat cap
        assert "health" in _IDEMPOTENT_VERBS
        assert "create_stream" not in _IDEMPOTENT_VERBS
        with ShardRouter(num_shards=1) as router:
            assert router._verb_deadline("ping") == 2.0
            assert router._verb_deadline("stats") == 5.0
            assert router._verb_deadline("metrics") == 10.0
            assert router._verb_deadline("create_stream") == 30.0
            assert router._verb_deadline("no_such_verb") == 30.0
            assert router._verb_deadline("flush") == pytest.approx(120.0)
            assert router._verb_deadline("checkpoint") == pytest.approx(120.0)

    def test_hung_shard_fails_health_fast(self):
        """The regression contract: a wedged shard fails ``health()`` in
        ~the 2 s health deadline, not the flat 120 s request timeout."""
        injector = FaultInjector().slow_control_at(
            "health", seconds=4.0, times=1
        )
        with ShardRouter(num_shards=1, fault_injector=injector) as router:
            router.create_stream("s", backend="gk_quantiles", params=GK)
            router.ingest("s", _stream(64))
            started = time.monotonic()
            with pytest.raises(TimeoutError):
                router.health("s")
            elapsed = time.monotonic() - started
            assert elapsed < 3.5, f"health() took {elapsed:.1f}s"
            # Slow is not dead: no respawn, and the merged health view
            # renders the wedged shard's streams degraded instead.
            assert router.shard_states()[0]["state"] == "up"

    def test_wedged_shard_trips_breaker_then_recovers(self):
        injector = FaultInjector().slow_control_at(
            "stats", seconds=3.0, times=1
        )
        with ShardRouter(
            num_shards=1, request_timeout=1.0, ctrl_retries=0,
            breaker_threshold=1, breaker_reset=0.5, fault_injector=injector,
        ) as router:
            router.create_stream("s", backend="gk_quantiles", params=GK)
            router.ingest("s", _stream(64))
            started = time.monotonic()
            with pytest.raises(TimeoutError):
                router.stats("s")
            assert time.monotonic() - started < 2.5
            assert router.shard_states()[0]["breaker"] == "open"
            started = time.monotonic()
            with pytest.raises(ShardUnavailableError, match="breaker"):
                router.stats("s")  # fails fast, no socket round-trip
            assert time.monotonic() - started < 0.2
            time.sleep(2.8)  # shard wakes; reset window long expired
            stats = router.stats("s")  # half-open probe succeeds
            assert stats["arrivals"] == 64
            assert router.shard_states()[0]["breaker"] == "closed"
            assert router.shard_states()[0]["state"] == "up"
            assert router.shard_states()[0]["restarts"] == 0

    def test_router_admission_propagates_shed_to_shard_accuracy(self):
        ctrl = QoSController(QoSConfig(seed=5))
        with ShardRouter(num_shards=1, qos=ctrl) as router:
            router.create_stream(
                "q", backend="gk_quantiles", params=GK, accuracy=ACCURACY
            )
            router.ingest("q", _stream(128))
            ctrl.force_level("shed")
            router.ingest("q", _stream(512, seed=1))
            ctrl.force_level(None)
            assert router.flush() is True
            snapshot = router.qos()
            shed = snapshot["streams"]["q"]["shed_points"]
            assert shed > 0
            # Router-side sheds reached the shard's accuracy monitor
            # through the note_shed control verb.
            report = router.accuracy("q")
            assert report["shed_points"] == shed
            assert router.health("q")["degradation"] in (
                "healthy", "throttle", "shed",
            )


# ---------------------------------------------------------------------------
# Chaos: overload storms and crash recovery
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestOverloadChaos:
    def test_sigkill_trips_breaker_and_recloses_after_recovery(
        self, tmp_path
    ):
        with ShardRouter(
            num_shards=1, snapshot_dir=tmp_path / "snap"
        ) as router:
            router.create_stream(
                "r", backend="gk_quantiles", params=GK, maintain_every=16
            )
            data = _stream(300, seed=3)
            router.ingest("r", data[:100])
            router.checkpoint()
            pid = router.shard_states()[0]["pid"]
            os.kill(pid, signal.SIGKILL)
            router.ingest("r", data[100:200])
            router.ingest("r", data[200:])
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                state = router.shard_states()[0]
                if state["state"] == "up" and state["restarts"] >= 1:
                    break
                time.sleep(0.02)
            state = router.shard_states()[0]
            assert state["state"] == "up" and state["restarts"] >= 1
            assert router.flush() is True
            assert router.stats("r")["arrivals"] == 300
            trips = router.registry.counter(
                "repro_breaker_trips_total", shard="0"
            )
            assert trips.value >= 1  # death tripped it...
            assert state["breaker"] == "closed"  # ...recovery reclosed it

    def test_mixed_priority_overload_storm(self):
        """2x overload on a bulk stream: the ladder escalates, gold
        traffic stays healthy and within its accuracy bound, every shed
        point is accounted, and the ladder walks back to healthy."""
        config = QoSConfig(
            evaluate_every=1, cooldown=2, shed_fraction=0.5,
            throttle_fill=0.2, shed_fill=0.35, stale_fill=0.99,
            throttle_latency=10.0, shed_latency=20.0, stale_latency=30.0,
        )
        ctrl = QoSController(config)
        injector = FaultInjector().slow_ingest_at(
            1, 0.02, stream="bulk", times=150
        )
        with StreamService(qos=ctrl, fault_injector=injector) as service:
            service.create_stream(
                "hot", backend="gk_quantiles", params=GK,
                priority=0, accuracy=ACCURACY,
            )
            service.create_stream(
                "bulk", backend="gk_quantiles", params=GK,
                priority=2, queue_capacity=64, backpressure="drop_oldest",
                accuracy=ACCURACY,
            )

            def storm() -> None:
                for i in range(80):
                    service.ingest("bulk", _stream(64, seed=500 + i))

            producer = threading.Thread(target=storm)
            producer.start()
            worst = LEVEL_HEALTHY
            for i in range(40):
                assert service.ingest("hot", _stream(32, seed=i)) == 32
                worst = max(worst, ctrl.level)
                time.sleep(0.002)
            producer.join()
            assert worst >= LEVEL_SHED, (
                f"ladder only reached {worst} under a 2x storm"
            )
            assert service.flush() is True
            hot = service.accuracy("hot")
            assert hot["shed_points"] == 0
            assert hot["violations"] == 0
            assert hot["observed_epsilon"] is not None
            assert service.health("hot")["state"] == "healthy"
            bulk = service.accuracy("bulk")
            snapshot = service.qos()
            assert snapshot["shed_points"] > 0
            assert bulk["shed_points"] == snapshot["shed_points"]
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if service.qos()["level"] == "healthy":
                    break
                time.sleep(0.05)
            assert service.qos()["level"] == "healthy"
