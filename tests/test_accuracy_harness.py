"""Edge-case tests for repro.query.accuracy and repro.bench harness pieces.

The accuracy metric is the paper's section 5.1 reporting figure and the
harness timing/table plumbing feeds EXPERIMENTS.md; both were previously
exercised only incidentally through the experiment scripts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import ResultTable
from repro.bench.timing import Stopwatch, time_call
from repro.core.fixed_window import FixedWindowHistogramBuilder
from repro.query.accuracy import measure_accuracy
from repro.query.queries import PointQuery, RangeQuery, evaluate_exact


def _histogram_for(values, num_buckets=8, epsilon=0.1):
    builder = FixedWindowHistogramBuilder(
        window_size=len(values), num_buckets=num_buckets, epsilon=epsilon
    )
    builder.extend(np.asarray(values, dtype=np.float64))
    return builder.histogram()


class TestMeasureAccuracy:
    def test_requires_queries(self):
        with pytest.raises(ValueError):
            measure_accuracy(
                _histogram_for([1.0, 2.0]), np.asarray([1.0, 2.0]), []
            )

    def test_empty_window_rejected_by_exact_evaluation(self):
        """A query over an empty window has no ground truth: the exact
        evaluator refuses rather than fabricating a zero."""
        with pytest.raises(ValueError):
            evaluate_exact(RangeQuery(0, 0), np.asarray([], dtype=np.float64))

    def test_budget_at_least_n_is_exact(self):
        """B >= n: every point gets its own bucket, all errors vanish."""
        values = np.asarray([5.0, 1.0, 9.0, 4.0])
        histogram = _histogram_for(values, num_buckets=8)
        queries = [PointQuery(i) for i in range(4)] + [RangeQuery(0, 3)]
        accuracy = measure_accuracy(histogram, values, queries)
        assert accuracy.count == 5
        assert accuracy.mean_absolute_error == 0.0
        assert accuracy.root_mean_squared_error == 0.0
        assert accuracy.max_absolute_error == 0.0

    def test_single_bucket_averages_the_window(self):
        values = np.asarray([0.0, 10.0])
        histogram = _histogram_for(values, num_buckets=1)
        accuracy = measure_accuracy(
            histogram, values, [PointQuery(0), PointQuery(1)]
        )
        # One bucket serves the mean (5.0) for both positions.
        assert accuracy.mean_absolute_error == pytest.approx(5.0)
        assert accuracy.max_absolute_error == pytest.approx(5.0)
        # The full-range sum is still exact under a single bucket.
        exact_sum = measure_accuracy(histogram, values, [RangeQuery(0, 1)])
        assert exact_sum.mean_absolute_error == pytest.approx(0.0)

    def test_relative_floor_guards_zero_exact_answers(self):
        values = np.asarray([0.0, 0.0, 8.0, 0.0])
        histogram = _histogram_for(values, num_buckets=1)
        queries = [RangeQuery(0, 1)]  # exact answer 0
        floored = measure_accuracy(histogram, values, queries)
        # |approx - 0| / max(0, floor=1): denominator is the floor.
        assert floored.mean_relative_error == pytest.approx(
            floored.mean_absolute_error
        )
        loose = measure_accuracy(histogram, values, queries, relative_floor=100.0)
        assert loose.mean_relative_error == pytest.approx(
            floored.mean_absolute_error / 100.0
        )

    def test_aggregate_statistics_are_consistent(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 20, 64).astype(np.float64)
        histogram = _histogram_for(values, num_buckets=4)
        queries = [RangeQuery(i, min(63, i + 9)) for i in range(0, 60, 7)]
        accuracy = measure_accuracy(histogram, values, queries)
        assert accuracy.count == len(queries)
        assert accuracy.max_absolute_error >= accuracy.mean_absolute_error
        assert accuracy.root_mean_squared_error >= accuracy.mean_absolute_error
        assert str(accuracy).startswith(f"{len(queries)} queries")

    def test_query_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(3, 1)
        with pytest.raises(ValueError):
            RangeQuery(-1, 2)
        with pytest.raises(ValueError):
            RangeQuery(0, 1, aggregate="median")
        with pytest.raises(ValueError):
            PointQuery(-1)

    def test_average_aggregate(self):
        values = np.asarray([2.0, 4.0, 6.0])
        query = RangeQuery(0, 2, aggregate="avg")
        assert evaluate_exact(query, values) == pytest.approx(4.0)


class _FakeClock:
    """A clock that replays a scripted sequence of instants."""

    def __init__(self, *instants: float) -> None:
        self._instants = list(instants)

    def __call__(self) -> float:
        return self._instants.pop(0)


class TestDeterministicTiming:
    def test_time_call_under_fixed_clock(self):
        result, elapsed = time_call(lambda: 41 + 1, clock=_FakeClock(10.0, 12.5))
        assert result == 42
        assert elapsed == pytest.approx(2.5)

    def test_stopwatch_accumulates_under_fixed_clock(self):
        watch = Stopwatch(clock=_FakeClock(1.0, 2.0, 5.0, 9.0))
        with watch:
            pass
        assert watch.elapsed == pytest.approx(1.0)
        with watch:
            pass
        assert watch.elapsed == pytest.approx(5.0)

    def test_default_clock_is_monotonic_wall_time(self):
        _, elapsed = time_call(lambda: None)
        assert elapsed >= 0.0
        watch = Stopwatch()
        with watch:
            pass
        assert watch.elapsed >= 0.0


class TestResultTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            ResultTable("empty", [])

    def test_row_validation(self):
        table = ResultTable("t", ["n", "error"])
        with pytest.raises(ValueError):
            table.add_row(n=1)  # missing column
        with pytest.raises(ValueError):
            table.add_row(n=1, error=0.5, extra=2)  # unknown column
        table.add_row(n=1, error=0.5)
        assert len(table) == 1
        assert table.rows() == [{"n": 1, "error": 0.5}]

    def test_column_access(self):
        table = ResultTable("t", ["n", "error"])
        table.add_row(n=1, error=0.25)
        table.add_row(n=2, error=0.5)
        assert table.column("error") == [0.25, 0.5]
        with pytest.raises(KeyError):
            table.column("missing")

    def test_render_is_deterministic(self):
        table = ResultTable("sweep", ["n", "sse"])
        table.add_row(n=10, sse=0.125)
        table.add_row(n=1000, sse=0.0)
        first = table.render()
        assert first == table.render() == str(table)
        lines = first.splitlines()
        assert lines[0] == "sweep"
        assert "n" in lines[2] and "sse" in lines[2]
        assert len(lines) == 6  # title, rule, header, rule, 2 rows

    def test_render_empty_table(self):
        table = ResultTable("empty", ["a"])
        assert "empty" in table.render()

    def test_float_formatting(self):
        table = ResultTable("fmt", ["v"])
        for value in (0.0, 1.5, 1234567.0, 0.0001):
            table.add_row(v=value)
        rendered = table.to_tsv().splitlines()
        assert rendered[1] == "0"
        assert rendered[2] == "1.5"
        assert rendered[3] == "1.23e+06"
        assert rendered[4] == "0.0001"
