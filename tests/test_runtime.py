"""Tests for the repro.runtime layer: registry, maintainers, pipeline.

Covers the refactor's contract: batched and one-at-a-time ingestion are
*identical* (synopses and deterministic counters), pipeline cadence
semantics match a hand-rolled per-point loop, the registry resolves every
backend, and the batched fast path actually pays off.
"""

import time

import numpy as np
import pytest

from repro.runtime import (
    DelayedMaintainer,
    FixedWindowMaintainer,
    Maintainer,
    StreamPipeline,
    available_maintainers,
    make_maintainer,
    register_maintainer,
)

from .conftest import BACKEND_PARAMS as BACKEND_KWARGS


def utilization(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 100.0, n)



class TestRegistry:
    def test_all_backends_registered(self):
        assert set(BACKEND_KWARGS) <= set(available_maintainers())

    def test_make_resolves_every_backend(self):
        for name, kwargs in BACKEND_KWARGS.items():
            maintainer = make_maintainer(name, **kwargs)
            assert isinstance(maintainer, Maintainer)
            maintainer.extend(utilization(100))
            maintainer.maintain()
            assert maintainer.synopsis() is not None
            assert maintainer.stats().points == 100

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="fixed_window"):
            make_maintainer("no_such_backend")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_maintainer("fixed_window", FixedWindowMaintainer)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid"):
            register_maintainer("no spaces!", FixedWindowMaintainer)

    def test_custom_name_kwarg_forwarded(self):
        maintainer = make_maintainer(
            "fixed_window", window_size=8, num_buckets=2, epsilon=0.5, name="mine"
        )
        assert maintainer.name == "mine"


class TestBatchedEquivalence:
    """Batched extend == per-point append: same synopses, same counters."""

    @pytest.mark.parametrize("backend", sorted(BACKEND_KWARGS))
    def test_synopsis_identical(self, backend):
        stream = utilization(500, seed=3)
        one = make_maintainer(backend, **BACKEND_KWARGS[backend])
        batched = make_maintainer(backend, **BACKEND_KWARGS[backend])
        for value in stream:
            one.append(value)
        # Ragged batch sizes, crossing every internal boundary.
        i = 0
        rng = np.random.default_rng(9)
        while i < stream.size:
            step = int(rng.integers(1, 48))
            batched.extend(stream[i : i + step])
            i += step
        one.maintain()
        batched.maintain()
        assert one.stats().counters()["points"] == 500
        assert batched.stats().counters()["points"] == 500
        a, b = one.synopsis(), batched.synopsis()
        if hasattr(a, "to_dict"):
            assert a.to_dict() == b.to_dict()
        elif hasattr(a, "quantiles"):
            assert a.quantiles(5) == b.quantiles(5)
        elif hasattr(a, "range_sum"):
            assert a.range_sum(0, len(a) - 1) == b.range_sum(0, len(b) - 1)

    def test_fixed_window_bit_identical(self):
        """The paper's structure must not drift under batched ingestion."""
        stream = utilization(3000, seed=1)
        one = FixedWindowMaintainer(256, 8, 0.25)
        batched = FixedWindowMaintainer(256, 8, 0.25)
        for value in stream:
            one.append(value)
        for start in range(0, 3000, 77):
            batched.extend(stream[start : start + 77])
        assert np.array_equal(one.window_values(), batched.window_values())
        assert one.synopsis().to_dict() == batched.synopsis().to_dict()
        assert one.stats().counters() == batched.stats().counters()

    def test_generator_input_accepted(self):
        maintainer = make_maintainer(
            "fixed_window", window_size=16, num_buckets=4, epsilon=0.5
        )
        maintainer.extend(float(v) for v in range(40))
        assert maintainer.stats().points == 40

    def test_stats_counters_exclude_timing(self):
        maintainer = make_maintainer("exact", window_size=8)
        maintainer.extend(utilization(32))
        counters = maintainer.stats().counters()
        assert set(counters) == {
            "points", "maintains", "rebuilds", "herror_evaluations",
            "search_probes",
        }

    def test_fixed_window_stats_surface_rebuild_telemetry(self):
        maintainer = FixedWindowMaintainer(64, 8, 0.25)
        maintainer.extend(utilization(200))
        maintainer.maintain()
        stats = maintainer.stats()
        assert stats.rebuilds >= 1
        assert stats.herror_evaluations > 0
        assert stats.maintains == 1
        assert stats.seconds >= 0.0


class TestStateDict:
    """Every registry backend checkpoints and resumes exactly."""

    @staticmethod
    def integers(n, seed=0):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 100, size=n).astype(float)

    @pytest.mark.parametrize("backend", sorted(BACKEND_KWARGS))
    def test_json_round_trip_resumes_exactly(self, backend):
        import json

        stream = self.integers(600, seed=11)
        original = make_maintainer(backend, **BACKEND_KWARGS[backend])
        original.extend(stream[:400])
        original.maintain()
        payload = json.loads(json.dumps(original.state_dict()))
        restored = make_maintainer(backend, **BACKEND_KWARGS[backend])
        restored.load_state_dict(payload)
        assert restored.name == original.name
        assert restored.stats().counters() == original.stats().counters()
        original.extend(stream[400:])
        restored.extend(stream[400:])
        original.maintain()
        restored.maintain()
        a, b = original.synopsis(), restored.synopsis()
        if hasattr(a, "to_dict"):
            assert a.to_dict() == b.to_dict()
        elif hasattr(a, "quantiles"):
            assert a.quantiles(5) == b.quantiles(5)
        else:
            assert a.range_sum(0, len(a) - 1) == b.range_sum(0, len(b) - 1)
        assert restored.stats().counters() == original.stats().counters()

    def test_mismatched_adapter_rejected(self):
        exact = make_maintainer("exact", window_size=16)
        exact.extend(self.integers(8))
        gk = make_maintainer("gk_quantiles", epsilon=0.1)
        with pytest.raises(ValueError, match="cannot restore"):
            gk.load_state_dict(exact.state_dict())

    def test_reservoir_resumption_is_bit_exact(self):
        stream = self.integers(500, seed=2)
        original = make_maintainer("reservoir", capacity=16, seed=7)
        original.extend(stream[:250])
        restored = make_maintainer("reservoir", capacity=16, seed=7)
        restored.load_state_dict(original.state_dict())
        original.extend(stream[250:])
        restored.extend(stream[250:])
        assert list(original.synopsis().values()) == list(
            restored.synopsis().values()
        )

    def test_fixed_window_telemetry_survives_restore(self):
        original = make_maintainer("fixed_window", **BACKEND_KWARGS["fixed_window"])
        original.extend(self.integers(200))
        original.maintain()
        before = original.stats()
        restored = make_maintainer("fixed_window", **BACKEND_KWARGS["fixed_window"])
        restored.load_state_dict(original.state_dict())
        after = restored.stats()
        assert after.rebuilds == before.rebuilds
        assert after.herror_evaluations == before.herror_evaluations
        assert after.search_probes == before.search_probes

    def test_delayed_maintainer_round_trip(self):
        stream = self.integers(300, seed=5)
        inner = make_maintainer("gk_quantiles", epsilon=0.1)
        original = DelayedMaintainer(inner, lag=20)
        original.extend(stream[:150])
        restored = DelayedMaintainer(
            make_maintainer("gk_quantiles", epsilon=0.1), lag=20
        )
        restored.load_state_dict(original.state_dict())
        assert restored.delayed_points() == original.delayed_points()
        original.extend(stream[150:])
        restored.extend(stream[150:])
        assert original.synopsis().to_dict() == restored.synopsis().to_dict()


class TestPipelineCadence:
    def test_maintain_positions_match_per_point_loop(self):
        """Pipeline cadence == a hand-rolled `if i % c == 0: maintain()`."""
        stream = utilization(200, seed=2)
        cadence = 7

        reference = FixedWindowMaintainer(32, 4, 0.5)
        for i, value in enumerate(stream, start=1):
            reference.append(value)
            if i % cadence == 0:
                reference.maintain()

        piped = FixedWindowMaintainer(32, 4, 0.5)
        StreamPipeline([piped], maintain_every=cadence, batch_size=64).run(stream)

        assert piped.stats().counters() == reference.stats().counters()
        assert piped.synopsis().to_dict() == reference.synopsis().to_dict()

    def test_checkpoint_positions_stream_aligned(self):
        fired = []
        maintainer = make_maintainer("exact", window_size=16)
        pipeline = StreamPipeline(
            [maintainer],
            maintain_every=None,
            checkpoint_every=10,
            warmup=16,
            on_checkpoint=lambda arrivals, p: fired.append(arrivals),
        )
        pipeline.run(utilization(100))
        assert fired == [20, 30, 40, 50, 60, 70, 80, 90, 100]

    def test_checkpoint_positions_warmup_aligned(self):
        fired = []
        maintainer = make_maintainer("exact", window_size=16)
        pipeline = StreamPipeline(
            [maintainer],
            maintain_every=None,
            checkpoint_every=10,
            warmup=16,
            checkpoint_alignment="warmup",
            on_checkpoint=lambda arrivals, p: fired.append(arrivals),
        )
        pipeline.run(utilization(100))
        assert fired == [16, 26, 36, 46, 56, 66, 76, 86, 96]

    def test_events_fire_identically_for_any_batch_size(self):
        stream = utilization(150, seed=4)
        schedules = []
        for batch_size in (1, 7, 64, 150):
            maintains, checkpoints = [], []
            pipeline = StreamPipeline(
                [make_maintainer("exact", window_size=8)],
                maintain_every=6,
                checkpoint_every=11,
                warmup=8,
                on_maintain=lambda a, p: maintains.append(a),
                on_checkpoint=lambda a, p: checkpoints.append(a),
                batch_size=batch_size,
            )
            pipeline.run(stream)
            schedules.append((maintains, checkpoints))
        assert all(schedule == schedules[0] for schedule in schedules[1:])

    def test_fan_out_feeds_all_maintainers(self):
        stream = utilization(120)
        maintainers = [
            make_maintainer("exact", window_size=16, name="a"),
            make_maintainer("reservoir", capacity=8, name="b"),
        ]
        pipeline = StreamPipeline(maintainers, maintain_every=None)
        reports = pipeline.run(stream)
        assert [r.name for r in reports] == ["a", "b"]
        assert all(r.stats.points == 120 for r in reports)
        assert pipeline.arrivals == 120
        assert pipeline["b"] is maintainers[1]

    def test_duplicate_names_rejected(self):
        pair = [
            make_maintainer("exact", window_size=8, name="x"),
            make_maintainer("reservoir", capacity=4, name="x"),
        ]
        with pytest.raises(ValueError, match="unique"):
            StreamPipeline(pair)

    def test_iterator_stream(self):
        maintainer = make_maintainer("exact", window_size=4)
        StreamPipeline([maintainer], batch_size=16).run(
            float(v) for v in range(50)
        )
        assert maintainer.stats().points == 50

    def test_checkpoint_counts_in_reports(self):
        pipeline = StreamPipeline(
            [make_maintainer("exact", window_size=4)],
            maintain_every=None,
            checkpoint_every=25,
        )
        reports = pipeline.run(utilization(100))
        assert reports[0].checkpoints == 4


class TestDelayedMaintainer:
    def test_lags_inner_by_exactly_lag_points(self):
        stream = utilization(100, seed=6)
        delayed = DelayedMaintainer(
            make_maintainer("fixed_window", window_size=32, num_buckets=4,
                            epsilon=0.5),
            lag=10,
        )
        direct = make_maintainer(
            "fixed_window", window_size=32, num_buckets=4, epsilon=0.5
        )
        for start in range(0, 100, 9):
            delayed.extend(stream[start : start + 9])
        direct.extend(stream[:90])
        assert delayed.inner.stats().points == 90
        assert delayed.delayed_points() == stream[90:].tolist()
        assert delayed.synopsis().to_dict() == direct.synopsis().to_dict()


class TestBatchedFastPath:
    """The refactor's perf claim, with generous margins.

    At maintenance cadence 1 the pipeline degenerates to per-point
    `append` + `maintain`, so the whole run must not be slower than the
    hand-rolled loop it replaced.  At cadence >= 8 the pipeline hands the
    maintainer chunks of that size, and batched `extend` must beat the
    same points fed through per-point `append` (maintenance work is
    identical on both sides, so ingestion is what the cadence buys).
    """

    def test_no_slower_at_cadence_one(self):
        window, arrivals = 128, 150
        stream = utilization(window + arrivals, seed=11)

        def per_point():
            maintainer = FixedWindowMaintainer(window, 4, 0.5)
            started = time.perf_counter()
            for value in stream.tolist():
                maintainer.append(value)
                maintainer.maintain()
            return time.perf_counter() - started

        def piped():
            maintainer = FixedWindowMaintainer(window, 4, 0.5)
            pipeline = StreamPipeline([maintainer], maintain_every=1)
            started = time.perf_counter()
            pipeline.run(stream)
            return time.perf_counter() - started

        reference = min(per_point() for _ in range(2))
        pipelined = min(piped() for _ in range(2))
        # Identical work modulo loop bookkeeping; 1.5x absorbs timer noise.
        assert pipelined <= 1.5 * reference, (pipelined, reference)

    @pytest.mark.parametrize("cadence,margin", [(8, 1.0), (64, 0.5)])
    def test_batched_extend_faster_at_cadence(self, cadence, margin):
        stream = utilization(30_000, seed=12)

        def per_point():
            maintainer = FixedWindowMaintainer(256, 8, 0.25)
            values = stream.tolist()
            started = time.perf_counter()
            for value in values:
                maintainer.append(value)
            return time.perf_counter() - started

        def batched():
            maintainer = FixedWindowMaintainer(256, 8, 0.25)
            chunks = [
                stream[i : i + cadence] for i in range(0, stream.size, cadence)
            ]
            started = time.perf_counter()
            for chunk in chunks:
                maintainer.extend(chunk)
            return time.perf_counter() - started

        reference = min(per_point() for _ in range(3))
        chunked = min(batched() for _ in range(3))
        assert chunked < margin * reference, (cadence, chunked, reference)


class TestNoPrivateDrivingLoops:
    """Acceptance: the per-point maintain-and-query loop lives in runtime/
    only.  No other module may iterate a stream feeding
    FixedWindowHistogramBuilder point by point."""

    MIGRATED = [
        "src/repro/query/engine.py",
        "src/repro/query/continuous.py",
        "src/repro/mining/changepoint.py",
        "src/repro/similarity/subsequence.py",
        "src/repro/bench/experiments.py",
    ]

    def test_no_per_point_builder_loops_outside_runtime(self):
        import pathlib
        import re

        root = pathlib.Path(__file__).resolve().parent.parent
        # A for-loop whose body appends single values to a builder and
        # rebuilds: the pattern the runtime layer replaced.
        loop = re.compile(
            r"for\s+\w+(?:\s*,\s*\w+)*\s+in\s+[^\n]+:\s*\n"
            r"(?:[^\n]*\n)??"
            r"\s+\w*(?:builder|_current|_reference)\w*\.append\(",
        )
        offenders = []
        for relative in self.MIGRATED:
            text = (root / relative).read_text()
            if loop.search(text):
                offenders.append(relative)
        assert offenders == []

    def test_migrated_modules_use_runtime(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        for relative in self.MIGRATED:
            text = (root / relative).read_text()
            assert "runtime" in text, f"{relative} does not use repro.runtime"
