"""Tests for the prefix-sum machinery (repro.core.prefix)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import naive_sse
from repro.core.prefix import PrefixSums, SlidingPrefixSums

from .conftest import float_sequences, int_sequences


class TestPrefixSums:
    def test_rejects_non_1d(self):
        with pytest.raises(ValueError):
            PrefixSums(np.zeros((2, 2)))

    def test_len(self):
        assert len(PrefixSums([1, 2, 3])) == 3

    def test_sum_range_simple(self):
        prefix = PrefixSums([1.0, 2.0, 3.0, 4.0])
        assert prefix.sum_range(0, 3) == 10.0
        assert prefix.sum_range(1, 2) == 5.0
        assert prefix.sum_range(2, 2) == 3.0

    def test_sqsum_range_simple(self):
        prefix = PrefixSums([1.0, 2.0, 3.0])
        assert prefix.sqsum_range(0, 2) == 14.0
        assert prefix.sqsum_range(1, 1) == 4.0

    def test_mean(self):
        prefix = PrefixSums([2.0, 4.0, 6.0])
        assert prefix.mean(0, 2) == 4.0

    def test_out_of_bounds(self):
        prefix = PrefixSums([1.0, 2.0])
        with pytest.raises(IndexError):
            prefix.sum_range(0, 2)
        with pytest.raises(IndexError):
            prefix.sum_range(-1, 1)
        with pytest.raises(IndexError):
            prefix.sqerror(1, 0)

    def test_sqerror_constant_is_zero(self):
        prefix = PrefixSums([5.0] * 10)
        assert prefix.sqerror(0, 9) == 0.0
        assert prefix.sqerror(3, 7) == 0.0

    def test_sqerror_single_point_is_zero(self):
        prefix = PrefixSums([1.0, 9.0, 4.0])
        for i in range(3):
            assert prefix.sqerror(i, i) == 0.0

    @given(float_sequences)
    def test_sqerror_matches_naive(self, values):
        prefix = PrefixSums(values)
        n = values.size
        i = 0
        j = n - 1
        assert prefix.sqerror(i, j) == pytest.approx(
            naive_sse(values[i : j + 1]), rel=1e-6, abs=1e-6
        )

    @given(int_sequences, st.data())
    def test_sqerror_subrange_matches_naive(self, values, data):
        n = values.size
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(i, n - 1))
        prefix = PrefixSums(values)
        assert prefix.sqerror(i, j) == pytest.approx(
            naive_sse(values[i : j + 1]), rel=1e-6, abs=1e-6
        )

    @given(int_sequences)
    def test_sqerror_suffixes_vectorized_matches_scalar(self, values):
        prefix = PrefixSums(values)
        j = values.size - 1
        starts = np.arange(values.size)
        vector = prefix.sqerror_suffixes(starts, j)
        for start in starts:
            assert vector[start] == pytest.approx(
                prefix.sqerror(int(start), j), rel=1e-9, abs=1e-9
            )

    @given(int_sequences)
    def test_sqerror_monotone_in_start(self, values):
        """SQERROR[i, j] is non-increasing as i grows (paper section 4.2)."""
        prefix = PrefixSums(values)
        j = values.size - 1
        errors = prefix.sqerror_suffixes(np.arange(values.size), j)
        assert np.all(np.diff(errors) <= 1e-6 * (1 + errors[:-1]))


class TestSlidingPrefixSums:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            SlidingPrefixSums(0)

    def test_partial_fill(self):
        sliding = SlidingPrefixSums(8)
        sliding.extend([1.0, 2.0, 3.0])
        assert len(sliding) == 3
        assert sliding.sum_range(0, 2) == 6.0
        assert list(sliding.values()) == [1.0, 2.0, 3.0]

    def test_window_slides(self):
        sliding = SlidingPrefixSums(3)
        sliding.extend([1.0, 2.0, 3.0, 4.0])
        assert list(sliding.values()) == [2.0, 3.0, 4.0]
        assert sliding.sum_range(0, 2) == 9.0
        assert sliding.sum_range(0, 0) == 2.0

    def test_value_at(self):
        sliding = SlidingPrefixSums(3)
        sliding.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert sliding.value_at(0) == 3.0
        assert sliding.value_at(2) == 5.0
        with pytest.raises(IndexError):
            sliding.value_at(3)

    def test_total_seen(self):
        sliding = SlidingPrefixSums(2)
        sliding.extend(range(7))
        assert sliding.total_seen == 7
        assert len(sliding) == 2

    def test_out_of_bounds_queries(self):
        sliding = SlidingPrefixSums(4)
        sliding.append(1.0)
        with pytest.raises(IndexError):
            sliding.sum_range(0, 1)

    @given(
        st.integers(min_value=1, max_value=12),
        st.lists(st.integers(0, 50), min_size=1, max_size=120),
    )
    @settings(max_examples=60)
    def test_matches_static_prefix_across_rebases(self, capacity, points):
        """Rebase is invisible: every range query matches a fresh PrefixSums."""
        sliding = SlidingPrefixSums(capacity)
        for index, point in enumerate(points):
            sliding.append(float(point))
            window = np.asarray(
                points[max(0, index + 1 - capacity) : index + 1], dtype=np.float64
            )
            static = PrefixSums(window)
            length = len(sliding)
            assert length == window.size
            assert np.allclose(sliding.values(), window)
            assert sliding.sum_range(0, length - 1) == pytest.approx(
                static.sum_range(0, length - 1)
            )
            assert sliding.sqerror(0, length - 1) == pytest.approx(
                static.sqerror(0, length - 1), abs=1e-6
            )

    @given(
        st.lists(st.integers(0, 50), min_size=10, max_size=60),
        st.data(),
    )
    @settings(max_examples=40)
    def test_vectorized_suffixes_match(self, points, data):
        sliding = SlidingPrefixSums(8)
        sliding.extend([float(p) for p in points])
        length = len(sliding)
        j = data.draw(st.integers(0, length - 1))
        starts = np.arange(j + 1)
        vector = sliding.sqerror_suffixes(starts, j)
        for start in starts:
            assert vector[start] == pytest.approx(
                sliding.sqerror(int(start), j), abs=1e-9
            )
