"""Tests for dynamic wavelet histograms (repro.wavelets.dynamic)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wavelets import haar_transform
from repro.wavelets.dynamic import DynamicWaveletHistogram


class TestDynamicWaveletHistogram:
    def test_validates(self):
        with pytest.raises(ValueError):
            DynamicWaveletHistogram(0)
        dynamic = DynamicWaveletHistogram(8)
        with pytest.raises(ValueError):
            dynamic.insert(8)
        with pytest.raises(ValueError):
            dynamic.insert(-1)
        with pytest.raises(ValueError):
            dynamic.delete(3)  # nothing inserted yet
        with pytest.raises(ValueError):
            dynamic.synopsis(0)

    def test_padding(self):
        assert DynamicWaveletHistogram(5).padded_length == 8
        assert DynamicWaveletHistogram(8).padded_length == 8

    def test_frequencies_track_inserts(self):
        dynamic = DynamicWaveletHistogram(6)
        dynamic.extend([0, 2, 2, 5])
        assert np.allclose(dynamic.frequencies(), [1, 0, 2, 0, 0, 1], atol=1e-9)
        assert len(dynamic) == 4

    def test_delete_inverts_insert(self):
        dynamic = DynamicWaveletHistogram(16)
        dynamic.extend([3, 3, 9, 14])
        dynamic.delete(3)
        assert np.allclose(
            dynamic.frequencies(), np.bincount([3, 9, 14], minlength=16), atol=1e-9
        )
        assert len(dynamic) == 3

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=120))
    @settings(max_examples=40)
    def test_coefficients_match_batch_transform(self, values):
        """Incremental maintenance equals transforming the final vector."""
        dynamic = DynamicWaveletHistogram(16)
        dynamic.extend(values)
        frequencies = np.bincount(values, minlength=16).astype(np.float64)
        assert np.allclose(
            dynamic._coefficients, haar_transform(frequencies), atol=1e-8
        )

    @given(
        st.lists(st.integers(0, 15), min_size=2, max_size=60),
        st.data(),
    )
    @settings(max_examples=30)
    def test_insert_delete_interleaved(self, values, data):
        dynamic = DynamicWaveletHistogram(16)
        alive: list[int] = []
        for value in values:
            if alive and data.draw(st.booleans()):
                victim = alive.pop(data.draw(st.integers(0, len(alive) - 1)))
                dynamic.delete(victim)
            else:
                dynamic.insert(value)
                alive.append(value)
        expected = np.bincount(alive, minlength=16).astype(np.float64)
        assert np.allclose(dynamic.frequencies(), expected, atol=1e-8)

    def test_full_budget_synopsis_is_exact(self):
        dynamic = DynamicWaveletHistogram(10)
        dynamic.extend([1, 1, 4, 7, 7, 7])
        synopsis = dynamic.synopsis(16)
        assert np.allclose(
            synopsis.to_array(), np.bincount([1, 1, 4, 7, 7, 7], minlength=10),
            atol=1e-8,
        )

    def test_estimate_count(self):
        dynamic = DynamicWaveletHistogram(100)
        rng = np.random.default_rng(0)
        values = rng.integers(0, 100, size=2000)
        dynamic.extend(values)
        exact = int(np.count_nonzero((values >= 20) & (values <= 60)))
        estimate = dynamic.estimate_count(20, 60, budget=128)
        assert estimate == pytest.approx(exact, rel=0.01)
        assert dynamic.estimate_count(60, 20) == 0.0

    def test_budget_controls_accuracy(self):
        dynamic = DynamicWaveletHistogram(256)
        rng = np.random.default_rng(1)
        dynamic.extend(rng.zipf(1.5, size=5000).clip(max=255))
        exact = dynamic.frequencies()
        coarse = dynamic.synopsis(4).to_array()
        fine = dynamic.synopsis(128).to_array()
        assert np.sum((fine - exact) ** 2) <= np.sum((coarse - exact) ** 2) + 1e-9

    def test_update_cost_is_logarithmic_touch_count(self):
        """An insert changes at most log2(n) + 1 coefficients."""
        dynamic = DynamicWaveletHistogram(1024)
        before = dynamic._coefficients.copy()
        dynamic.insert(517)
        changed = int(np.count_nonzero(dynamic._coefficients != before))
        assert changed <= 11  # log2(1024) + 1
