"""Sharded tier tests: framing, placement, router/threaded equivalence,
crash recovery and restore.

The equivalence class is the heart of the suite: every registry backend
is driven through a :class:`~repro.shard.ShardRouter` and a threaded
:class:`~repro.service.StreamService` with identical arrival order, and
the two tiers must answer every query bit-identically (all synopses are
deterministic -- the reservoir backend is seeded).  Crash tests SIGKILL
real shard processes and require bit-identical recovery from the
shard's own snapshot generation plus the router's replay buffer.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.service import StreamService
from repro.service.config import ServiceConfig, build_service, load_config
from repro.service.protocol import ServiceProtocol
from repro.service.queries import UnsupportedQueryError
from repro.shard import FramingError, HashRing, ShardRouter
from repro.shard.framing import (
    KIND_CONTROL,
    KIND_DATA,
    decode_batch,
    decode_obj,
    encode_batch,
    encode_obj,
    recv_frame,
    send_frame,
)

pytestmark = pytest.mark.shard

POINTS = 1_536
CHUNK = 192


def _domain_stream(n: int, seed: int) -> np.ndarray:
    """Integer-valued points in [0, 100]: inside every backend's domain
    (``dynamic_wavelet`` only accepts values below its ``domain_size``)."""
    rng = np.random.default_rng(seed)
    return np.floor(rng.random(n) * 101.0)


def _chunks(data: np.ndarray) -> list[np.ndarray]:
    return [data[i : i + CHUNK] for i in range(0, len(data), CHUNK)]


def _outcome(service, query, name: str):
    """Query result, or the marker that the backend cannot answer it."""
    try:
        return ("ok", query(service, name))
    except UnsupportedQueryError:
        return ("unsupported", None)


QUERIES = (
    ("histogram", lambda s, n: s.histogram(n)),
    ("median", lambda s, n: s.quantile(n, 0.5)),
    ("p95", lambda s, n: s.quantile(n, 0.95)),
    # Positional range inside the smallest windowed backend (size 64).
    ("range_sum", lambda s, n: s.range_sum(n, 5, 50)),
)


class TestFraming:
    def test_roundtrip_data_and_control(self):
        left, right = socket.socketpair()
        try:
            batch = np.arange(9, dtype=np.float64)
            send_frame(left, KIND_DATA, 7, "cpu", encode_batch(batch))
            send_frame(left, KIND_CONTROL, 8, "flush", encode_obj({"a": 1}))
            frame = recv_frame(right)
            assert (frame.kind, frame.seq, frame.name) == (KIND_DATA, 7, "cpu")
            np.testing.assert_array_equal(decode_batch(frame.payload), batch)
            frame = recv_frame(right)
            assert (frame.kind, frame.seq, frame.name) == (
                KIND_CONTROL, 8, "flush",
            )
            assert decode_obj(frame.payload) == {"a": 1}
            left.close()
            assert recv_frame(right) is None  # clean EOF at a boundary
        finally:
            right.close()

    def test_mid_frame_eof_is_an_error(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, KIND_DATA, 1, "cpu", b"\x00" * 16)
            # Resend just a truncated prefix of the same frame.
            buffered = right.recv(4096)
            left.sendall(buffered[: len(buffered) // 2])
            left.close()
            with pytest.raises(FramingError):
                recv_frame(right)
        finally:
            right.close()

    def test_batch_codec_rejects_ragged_payload(self):
        with pytest.raises(FramingError):
            decode_batch(b"\x00" * 13)

    def test_encode_batch_is_contiguous_float64(self):
        batch = encode_batch([1, 2, 3])
        assert len(batch) == 24
        np.testing.assert_array_equal(
            decode_batch(batch), np.asarray([1.0, 2.0, 3.0])
        )


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"stream-{i}" for i in range(300)]
        one = HashRing(range(4))
        two = HashRing(range(4))
        assert [one.owner(k) for k in keys] == [two.owner(k) for k in keys]

    def test_growth_moves_keys_only_to_the_new_shard(self):
        """Consistent hashing's contract: shrink/grow is monotone."""
        keys = [f"stream-{i}" for i in range(400)]
        for shards in range(1, 6):
            before = HashRing(range(shards))
            after = HashRing(range(shards + 1))
            moved = {
                k: (before.owner(k), after.owner(k))
                for k in keys
                if before.owner(k) != after.owner(k)
            }
            assert moved, f"growing {shards}->{shards + 1} moved nothing"
            assert all(new == shards for _, new in moved.values()), moved

    def test_load_is_spread(self):
        ring = HashRing(range(4))
        owners = {ring.owner(f"stream-{i}") for i in range(400)}
        assert owners == {0, 1, 2, 3}


class TestRouterEquivalence:
    def test_all_backends_match_threaded_tier(self, all_backends):
        """Same arrival order => bit-identical answers from both tiers."""
        backend, params = all_backends
        data = _domain_stream(POINTS, seed=11)
        with StreamService() as single, ShardRouter(num_shards=2) as router:
            for tier in (single, router):
                tier.create_stream(
                    "eq", backend=backend, params=params, maintain_every=16
                )
                for chunk in _chunks(data):
                    tier.ingest("eq", chunk)
                assert tier.flush("eq") is True
            assert single.stats("eq")["arrivals"] == POINTS
            assert router.stats("eq")["arrivals"] == POINTS
            for label, query in QUERIES:
                assert _outcome(single, query, "eq") == _outcome(
                    router, query, "eq"
                ), f"{backend}: {label} diverged across tiers"

    def test_both_tiers_satisfy_the_protocol(self):
        with StreamService() as single, ShardRouter(num_shards=1) as router:
            assert isinstance(single, ServiceProtocol)
            assert isinstance(router, ServiceProtocol)


class TestRouterLifecycle:
    def test_placement_and_fanout(self):
        data = _domain_stream(512, seed=3)
        with ShardRouter(num_shards=4) as router:
            names = [f"s{i}" for i in range(8)]
            for name in names:
                router.create_stream(
                    name, backend="gk_quantiles", params={"epsilon": 0.1},
                    maintain_every=32,
                )
                router.ingest(name, data)
            assert router.flush() is True
            placement = router.placement()
            assert set(placement) == set(names)
            assert set(placement.values()) <= {0, 1, 2, 3}
            stats = router.stats()
            assert all(stats[name]["arrivals"] == 512 for name in names)
            health = router.health()
            assert all(
                record["state"] == "healthy" for record in health.values()
            )
            assert {record["shard"] for record in health.values()} == set(
                placement.values()
            )

    def test_merged_metrics_carry_shard_labels(self):
        with ShardRouter(num_shards=2) as router:
            router.create_stream(
                "m", backend="gk_quantiles", params={"epsilon": 0.1},
                maintain_every=32,
            )
            router.ingest("m", _domain_stream(256, seed=5))
            assert router.flush() is True
            samples = router.metrics()
            shards = {s["labels"].get("shard") for s in samples}
            assert "router" in shards
            assert shards & {"0", "1"}
            text = router.prometheus_metrics()
            assert "repro_submitted_points_total" in text

    def test_certify_covers_streams_and_placement(self):
        with ShardRouter(num_shards=2) as router:
            router.create_stream(
                "c", backend="gk_quantiles", params={"epsilon": 0.05},
                maintain_every=32,
            )
            router.ingest("c", _domain_stream(512, seed=9))
            assert router.flush() is True
            verdict = router.certify()
            assert verdict["passed"] is True
            assert verdict["placement"]["passed"] is True
            assert verdict["streams"]["c"]["passed"] is True
            assert verdict["streams"]["c"]["shard"] in (0, 1)


def _kill_owner(router: ShardRouter, name: str) -> int:
    """SIGKILL the shard process hosting ``name``; returns its id."""
    shard_id = router.placement()[name]
    pid = router.shard_states()[shard_id]["pid"]
    os.kill(pid, signal.SIGKILL)
    return shard_id


def _wait_for_state(router: ShardRouter, shard_id: int, state: str,
                    timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if router.shard_states()[shard_id]["state"] == state:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"shard {shard_id} never reached {state!r}: "
        f"{router.shard_states()[shard_id]}"
    )


@pytest.mark.chaos
class TestShardCrashRecovery:
    def test_sigkill_mid_ingest_recovers_bit_identical(
        self, all_backends, tmp_path
    ):
        """Checkpoint + SIGKILL + keep ingesting: replay heals losslessly."""
        backend, params = all_backends
        data = _domain_stream(POINTS, seed=13)
        chunks = _chunks(data)
        half = len(chunks) // 2
        with StreamService() as reference:
            reference.create_stream(
                "rec", backend=backend, params=params, maintain_every=16
            )
            for chunk in chunks:
                reference.ingest("rec", chunk)
            assert reference.flush("rec") is True
            expected = {
                label: _outcome(reference, query, "rec")
                for label, query in QUERIES
            }
        with ShardRouter(
            num_shards=2, snapshot_dir=tmp_path / "snap"
        ) as router:
            router.create_stream(
                "rec", backend=backend, params=params, maintain_every=16
            )
            for chunk in chunks[:half]:
                router.ingest("rec", chunk)
            router.checkpoint()
            shard_id = _kill_owner(router, "rec")
            for chunk in chunks[half:]:
                router.ingest("rec", chunk)
            assert router.flush("rec") is True
            _wait_for_state(router, shard_id, "up")
            assert router.shard_states()[shard_id]["restarts"] >= 1
            assert router.stats("rec")["arrivals"] == POINTS
            health = router.health("rec")
            assert health["state"] == "healthy"
            assert health["lossy_recovery"] is False
            for label, query in QUERIES:
                assert _outcome(router, query, "rec") == expected[label], (
                    f"{backend}: {label} diverged after crash recovery"
                )

    def test_sigkill_with_delta_cadence_recovers_bit_identical(
        self, tmp_path
    ):
        """Delta checkpoints on the shard tier heal just as losslessly."""
        data = _domain_stream(POINTS, seed=29)
        chunks = _chunks(data)
        quarter = len(chunks) // 4
        with StreamService() as reference:
            reference.create_stream(
                "rec", backend="gk_quantiles", params={"epsilon": 0.05},
                maintain_every=16,
            )
            for chunk in chunks:
                reference.ingest("rec", chunk)
            assert reference.flush("rec") is True
            expected = reference.histogram("rec")
        snap = tmp_path / "snap"
        with ShardRouter(
            num_shards=2, snapshot_dir=snap, snapshot_base_every=3
        ) as router:
            # Four checkpoint barriers under a base-every-3 cadence:
            # full, delta, delta, full.
            for barrier in range(4):
                for chunk in chunks[barrier * quarter : (barrier + 1) * quarter]:
                    if barrier == 0 and chunk is chunks[0]:
                        router.create_stream(
                            "rec", backend="gk_quantiles",
                            params={"epsilon": 0.05}, maintain_every=16,
                        )
                    router.ingest("rec", chunk)
                router.flush("rec")
                router.checkpoint()
            deltas = list(snap.rglob("*.delta"))
            assert deltas, "delta cadence never produced a delta file"
            shard_id = _kill_owner(router, "rec")
            for chunk in chunks[4 * quarter :]:
                router.ingest("rec", chunk)
            assert router.flush("rec") is True
            _wait_for_state(router, shard_id, "up")
            assert router.stats("rec")["arrivals"] == POINTS
            health = router.health("rec")
            assert health["state"] == "healthy"
            assert health["lossy_recovery"] is False
            assert router.histogram("rec") == expected

    def test_crash_without_snapshots_replays_the_full_buffer(self):
        """No snapshot_dir => no checkpoint ever trimmed the replay
        buffer, so the respawned (empty) shard is rebuilt from replay
        alone and the answers do not change."""
        data = _domain_stream(POINTS, seed=17)
        with ShardRouter(num_shards=1) as router:
            router.create_stream(
                "v", backend="gk_quantiles", params={"epsilon": 0.05},
                maintain_every=16,
            )
            for chunk in _chunks(data):
                router.ingest("v", chunk)
            assert router.flush("v") is True
            before = router.quantile("v", 0.5)
            shard_id = _kill_owner(router, "v")
            _wait_for_state(router, shard_id, "up")
            assert router.flush("v") is True
            assert router.stats("v")["arrivals"] == POINTS
            assert router.quantile("v", 0.5) == before


@pytest.mark.chaos
class TestRouterRestore:
    def test_clean_close_then_restore_continues_identically(self, tmp_path):
        data = _domain_stream(POINTS, seed=19)
        chunks = _chunks(data)
        half = len(chunks) // 2
        snap = tmp_path / "snap"
        with StreamService() as reference:
            reference.create_stream(
                "r", backend="gk_quantiles", params={"epsilon": 0.05},
                maintain_every=16,
            )
            for chunk in chunks:
                reference.ingest("r", chunk)
            assert reference.flush("r") is True
            expected = reference.histogram("r")
        router = ShardRouter(num_shards=2, snapshot_dir=snap)
        try:
            router.create_stream(
                "r", backend="gk_quantiles", params={"epsilon": 0.05},
                maintain_every=16,
            )
            for chunk in chunks[:half]:
                router.ingest("r", chunk)
        finally:
            router.close(checkpoint=True)
        with ShardRouter.restore(snap) as restored:
            assert restored.streams() == ["r"]
            assert restored.stats("r")["arrivals"] == half * CHUNK
            for chunk in chunks[half:]:
                restored.ingest("r", chunk)
            assert restored.flush("r") is True
            assert restored.histogram("r") == expected


class TestServiceConfig:
    CONFIG = {
        "mode": "sharded",
        "shards": 2,
        "streams": [
            {
                "name": "cpu",
                "backend": "gk_quantiles",
                "params": {"epsilon": 0.1},
                "maintain_every": 32,
            },
            {"name": "win", "backend": "exact",
             "params": {"window_size": 64}},
        ],
    }

    def test_json_config_builds_a_sharded_service(self, tmp_path):
        path = tmp_path / "svc.json"
        path.write_text(json.dumps(self.CONFIG))
        config = load_config(path)
        assert config.mode == "sharded"
        assert config.shards == 2
        service = build_service(config)
        try:
            assert isinstance(service, ShardRouter)
            assert sorted(service.streams()) == ["cpu", "win"]
            service.ingest("cpu", _domain_stream(256, seed=21))
            assert service.flush() is True
        finally:
            service.close(checkpoint=False)

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            ServiceConfig.from_dict({"mode": "threaded", "bogus": 1})
        with pytest.raises(ValueError, match="needs a 'backend'"):
            ServiceConfig.from_dict(
                {"streams": [{"name": "x"}]}
            )

    def test_threaded_mode_builds_a_stream_service(self, tmp_path):
        path = tmp_path / "svc.json"
        path.write_text(
            json.dumps(
                {
                    "mode": "threaded",
                    "streams": [
                        {
                            "name": "t",
                            "backend": "reservoir",
                            "params": {"capacity": 16},
                        }
                    ],
                }
            )
        )
        service = build_service(load_config(path))
        try:
            assert isinstance(service, StreamService)
            assert service.streams() == ["t"]
        finally:
            service.close(checkpoint=False)
