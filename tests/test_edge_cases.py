"""Edge-case and robustness tests across the library.

The suites in the per-module files cover functional behaviour; this file
probes the corners: extreme values, degenerate sizes, adversarial
shapes, and numerical stress.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AgglomerativeHistogramBuilder,
    FixedWindowHistogramBuilder,
    Histogram,
    approximate_histogram,
    minimax_histogram,
    optimal_error,
    optimal_histogram,
)
from repro.core.prefix import PrefixSums, SlidingPrefixSums
from repro.wavelets import WaveletSynopsis


class TestExtremeValues:
    def test_large_magnitudes(self):
        """Values near the paper's 'bounded range' limit stay stable."""
        values = np.asarray([1e6, 1e6, 0.0, 0.0, 5e5, 5e5] * 4)
        histogram = optimal_histogram(values, 6)
        assert np.isfinite(histogram.sse(values))
        approx = approximate_histogram(values, 6, 0.1)
        assert approx.sse(values) <= 1.1 * optimal_error(values, 6) + 1e-3

    def test_tiny_magnitudes(self):
        values = np.asarray([1e-9, 2e-9, 3e-9, 1e-9] * 8)
        histogram = optimal_histogram(values, 3)
        assert histogram.sse(values) >= 0.0

    def test_cancellation_never_goes_negative(self):
        """sqsum - sum^2/n cancellation is clamped at >= 0 and stays tiny."""
        values = np.full(1000, 12345.6789)
        tolerance = 1e-9 * float(np.sum(values**2))
        prefix = PrefixSums(values)
        assert 0.0 <= prefix.sqerror(0, 999) <= tolerance
        sliding = SlidingPrefixSums(100)
        sliding.extend(values)
        assert 0.0 <= sliding.sqerror(0, 99) <= tolerance

    def test_alternating_adversarial_sequence(self):
        """Maximum-entropy sequence: every method still meets its bound."""
        values = np.tile([0.0, 1000.0], 32)
        optimum = optimal_error(values, 4)
        for build in (
            lambda: approximate_histogram(values, 4, 0.5),
            lambda: _fixed(values, 4, 0.5),
        ):
            assert build().sse(values) <= 1.5 * optimum + 1e-6

    def test_single_outlier_isolated(self):
        values = np.asarray([1.0] * 50 + [1e6] + [1.0] * 50)
        histogram = optimal_histogram(values, 3)
        outlier_bucket = [b for b in histogram.buckets if b.start <= 50 <= b.end]
        assert outlier_bucket[0].size == 1


def _fixed(values, buckets, epsilon):
    builder = FixedWindowHistogramBuilder(values.size, buckets, epsilon)
    builder.extend(values)
    return builder.histogram()


class TestDegenerateSizes:
    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("buckets", [1, 2, 5])
    def test_tiny_inputs_everywhere(self, n, buckets):
        values = np.arange(float(n)) * 3.0
        for histogram in (
            optimal_histogram(values, buckets),
            approximate_histogram(values, buckets, 0.5),
            minimax_histogram(values, buckets),
            _fixed(values, buckets, 0.5),
        ):
            assert len(histogram) == n
            assert histogram.num_buckets <= min(buckets, n)

    def test_window_of_one(self):
        builder = FixedWindowHistogramBuilder(1, 3, 0.1)
        for value in [5.0, 9.0, 2.0]:
            builder.append(value)
            assert builder.histogram().point_estimate(0) == value

    def test_one_bucket_agglomerative_long_stream(self):
        builder = AgglomerativeHistogramBuilder(1, 0.5)
        builder.extend(np.arange(5000.0))
        histogram = builder.histogram()
        assert histogram.num_buckets == 1
        assert histogram.buckets[0].value == pytest.approx(2499.5)


class TestMonotoneAndConstantStreams:
    def test_constant_stream_zero_error(self):
        values = np.full(512, 42.0)
        builder = FixedWindowHistogramBuilder(256, 4, 0.1)
        builder.extend(values)
        assert builder.error_estimate == 0.0
        assert builder.interval_counts() == [1, 1, 1]

    def test_strictly_increasing_ramp(self):
        values = np.arange(200.0)
        optimum = optimal_error(values, 5)
        approx = approximate_histogram(values, 5, 0.1)
        assert approx.sse(values) <= 1.1 * optimum + 1e-6
        # The optimal ramp partition is (near-)equal-length buckets.
        sizes = [b.size for b in optimal_histogram(values, 5).buckets]
        assert max(sizes) - min(sizes) <= 1

    def test_step_at_window_boundary(self):
        """A level shift exactly at the window edge as it slides through."""
        stream = np.concatenate([np.zeros(64), np.full(64, 100.0)])
        builder = FixedWindowHistogramBuilder(64, 2, 0.25)
        for index, value in enumerate(stream):
            builder.append(value)
            if index >= 63:
                window = stream[index - 63 : index + 1]
                assert builder.histogram().sse(window) <= (
                    1.25 * optimal_error(window, 2) + 1e-6
                )


class TestWaveletEdges:
    def test_length_one(self):
        synopsis = WaveletSynopsis.from_values([7.0], 1)
        assert synopsis.point_estimate(0) == pytest.approx(7.0)
        assert synopsis.range_sum(0, 0) == pytest.approx(7.0)

    def test_budget_larger_than_padded(self):
        synopsis = WaveletSynopsis.from_values([1.0, 2.0, 3.0], 1000)
        assert synopsis.budget <= 4
        assert np.allclose(synopsis.to_array(), [1.0, 2.0, 3.0], atol=1e-9)

    def test_negative_values_fine(self):
        values = np.asarray([-5.0, 5.0, -5.0, 5.0])
        synopsis = WaveletSynopsis.from_values(values, 4)
        assert np.allclose(synopsis.to_array(), values, atol=1e-9)


class TestHistogramModelEdges:
    def test_single_position_histogram(self):
        histogram = Histogram.from_boundaries([9.0], [])
        assert len(histogram) == 1
        assert histogram.range_sum(0, 0) == 9.0
        assert histogram.range_average(0, 0) == 9.0

    def test_many_tiny_buckets_bisect_path(self):
        values = np.arange(100.0)
        histogram = Histogram.from_boundaries(values, list(range(99)))
        # Every point its own bucket: all queries exact.
        assert histogram.range_sum(17, 63) == float(values[17:64].sum())
        assert histogram.point_estimate(99) == 99.0

    def test_repr(self):
        histogram = Histogram.from_boundaries([1.0, 2.0], [0])
        assert "2 buckets" in repr(histogram)
        assert "2 points" in repr(histogram)


class TestRebaseStress:
    def test_thousands_of_rebases(self):
        """Slide far past many rebase cycles; answers stay exact."""
        capacity = 17
        sliding = SlidingPrefixSums(capacity)
        reference = []
        rng = np.random.default_rng(99)
        for _ in range(5000):
            value = float(rng.integers(0, 1000))
            sliding.append(value)
            reference.append(value)
        window = np.asarray(reference[-capacity:])
        assert np.allclose(sliding.values(), window)
        assert sliding.sum_range(0, capacity - 1) == pytest.approx(window.sum())
        assert sliding.sqerror(3, 12) == pytest.approx(
            PrefixSums(window).sqerror(3, 12), abs=1e-6
        )

    def test_long_fixed_window_run_stays_correct(self):
        stream = np.random.default_rng(7).integers(0, 50, size=2000).astype(float)
        builder = FixedWindowHistogramBuilder(31, 3, 0.5)
        for index, value in enumerate(stream):
            builder.append(value)
        window = stream[-31:]
        assert np.allclose(builder.window_values(), window)
        assert builder.histogram().sse(window) <= (
            1.5 * optimal_error(window, 3) + 1e-6
        )
