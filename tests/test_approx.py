"""Tests for the one-shot epsilon-approximate construction (Problem 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.approx import approximate_error, approximate_histogram
from repro.core.optimal import optimal_error

from .conftest import bucket_counts, epsilons, longer_sequences


class TestApproximateHistogram:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            approximate_histogram([], 4, 0.1)
        with pytest.raises(ValueError):
            approximate_error([], 4, 0.1)

    def test_exact_when_enough_buckets(self):
        values = [3.0, 1.0, 4.0, 1.0]
        histogram = approximate_histogram(values, 4, 0.1)
        assert histogram.sse(values) == 0.0

    def test_error_matches_histogram(self):
        values = np.asarray([5.0, 5.0, 1.0, 1.0, 9.0, 9.0, 9.0])
        histogram = approximate_histogram(values, 3, 0.1)
        assert approximate_error(values, 3, 0.1) == pytest.approx(
            histogram.sse(values), rel=1e-9, abs=1e-9
        )

    @given(longer_sequences, bucket_counts, epsilons)
    @settings(max_examples=50, deadline=None)
    def test_problem2_guarantee(self, values, buckets, epsilon):
        """E(H) <= (1 + eps) * min over all B-bucket histograms."""
        histogram = approximate_histogram(values, buckets, epsilon)
        assert histogram.sse(values) <= (1.0 + epsilon) * optimal_error(
            values, buckets
        ) + 1e-6

    @given(longer_sequences)
    @settings(max_examples=30, deadline=None)
    def test_uses_at_most_b_buckets(self, values):
        histogram = approximate_histogram(values, 4, 0.25)
        assert histogram.num_buckets <= 4
        assert len(histogram) == values.size
