"""Tests for classic heuristic histograms (repro.heuristics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimal import optimal_error
from repro.heuristics import (
    equal_depth_histogram,
    equal_width_histogram,
    maxdiff_histogram,
)

from .conftest import int_sequences


ALL_HEURISTICS = [equal_width_histogram, equal_depth_histogram, maxdiff_histogram]


class TestEqualWidth:
    def test_even_split(self):
        histogram = equal_width_histogram(np.arange(12.0), 3)
        assert histogram.boundaries() == [3, 7]
        assert all(bucket.size == 4 for bucket in histogram.buckets)

    def test_single_bucket(self):
        histogram = equal_width_histogram([1.0, 2.0], 1)
        assert histogram.num_buckets == 1

    def test_more_buckets_than_points(self):
        histogram = equal_width_histogram([1.0, 2.0], 10)
        assert histogram.num_buckets == 2
        assert histogram.sse([1.0, 2.0]) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            equal_width_histogram([], 3)
        with pytest.raises(ValueError):
            equal_width_histogram([1.0], 0)


class TestEqualDepth:
    def test_mass_balanced(self):
        # All mass at the front: the first bucket closes at the first
        # position whose cumulative mass reaches half the total.
        values = [100.0, 100.0] + [1.0] * 10
        histogram = equal_depth_histogram(values, 2)
        assert histogram.boundaries() == [1]
        front_mass = sum(values[:2])
        assert front_mass >= sum(values) / 2

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            equal_depth_histogram([1.0, -2.0], 2)

    def test_zero_mass_falls_back_to_equal_width(self):
        values = [0.0] * 8
        histogram = equal_depth_histogram(values, 2)
        assert histogram.num_buckets == 2

    def test_uniform_values_near_equal_lengths(self):
        histogram = equal_depth_histogram([1.0] * 12, 3)
        sizes = [bucket.size for bucket in histogram.buckets]
        assert max(sizes) - min(sizes) <= 1


class TestMaxDiff:
    def test_splits_at_largest_jumps(self):
        values = [1.0, 1.0, 9.0, 9.0, 2.0, 2.0]
        histogram = maxdiff_histogram(values, 3)
        assert histogram.boundaries() == [1, 3]
        assert histogram.sse(values) == 0.0

    def test_single_point(self):
        histogram = maxdiff_histogram([5.0], 4)
        assert histogram.num_buckets == 1

    def test_deterministic_tie_break(self):
        values = [0.0, 1.0, 0.0, 1.0, 0.0]
        first = maxdiff_histogram(values, 2)
        second = maxdiff_histogram(values, 2)
        assert first == second


class TestSharedProperties:
    @given(int_sequences, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_bucket_budget_respected(self, values, buckets):
        for build in ALL_HEURISTICS:
            histogram = build(values, buckets)
            assert 1 <= histogram.num_buckets <= min(buckets, values.size)
            assert len(histogram) == values.size

    @given(int_sequences, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_never_beats_optimal(self, values, buckets):
        """The V-optimal DP lower-bounds every heuristic (sanity anchor)."""
        optimum = optimal_error(values, buckets)
        for build in ALL_HEURISTICS:
            histogram = build(values, buckets)
            assert histogram.sse(values) >= optimum - 1e-6

    def test_maxdiff_beats_equal_width_on_steps(self, step_sequence):
        maxdiff = maxdiff_histogram(step_sequence, 3).sse(step_sequence)
        width = equal_width_histogram(step_sequence, 3).sse(step_sequence)
        assert maxdiff == 0.0
        assert width > 0.0
