"""Tests for sketch substrates (repro.sketches)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.sketches import GKQuantileSummary, ReservoirSample

from .conftest import signed_int_lists


class TestGKQuantileSummary:
    def test_validates_epsilon(self):
        for epsilon in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                GKQuantileSummary(epsilon)

    def test_query_before_insert(self):
        summary = GKQuantileSummary(0.1)
        with pytest.raises(ValueError):
            summary.query(0.5)
        with pytest.raises(ValueError):
            summary.rank_bounds(1.0)

    def test_query_validates_fraction(self):
        summary = GKQuantileSummary(0.1)
        summary.insert(1.0)
        with pytest.raises(ValueError):
            summary.query(1.5)

    def test_single_value(self):
        summary = GKQuantileSummary(0.1)
        summary.insert(7.0)
        assert summary.query(0.5) == 7.0

    def test_min_and_max_exact(self):
        summary = GKQuantileSummary(0.05)
        summary.extend(np.arange(1000.0))
        assert summary.query(0.0) == 0.0
        assert summary.query(1.0) == 999.0

    def test_rank_bounds_bracket_true_rank(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=2000)
        summary = GKQuantileSummary(0.02)
        summary.extend(data)
        ordered = np.sort(data)
        for probe in ordered[::200]:
            low, high = summary.rank_bounds(float(probe))
            true_rank = int(np.searchsorted(ordered, probe, side="right"))
            slack = 0.02 * 2000 + 1
            assert low - slack <= true_rank <= high + slack

    @pytest.mark.parametrize("epsilon", [0.01, 0.05])
    def test_rank_guarantee_uniform(self, epsilon):
        rng = np.random.default_rng(1)
        n = 4000
        data = rng.permutation(np.arange(n)).astype(float)
        summary = GKQuantileSummary(epsilon)
        summary.extend(data)
        for fraction in (0.1, 0.25, 0.5, 0.75, 0.9):
            estimate = summary.query(fraction)
            # data are 0..n-1, so the value is its own rank (0-based).
            assert abs(estimate - fraction * n) <= 2 * epsilon * n + 2

    def test_summary_much_smaller_than_stream(self):
        rng = np.random.default_rng(2)
        summary = GKQuantileSummary(0.02)
        summary.extend(rng.normal(size=20000))
        assert summary.summary_size < 2000
        assert len(summary) == 20000

    def test_quantiles_sorted(self):
        rng = np.random.default_rng(3)
        summary = GKQuantileSummary(0.05)
        summary.extend(rng.normal(size=3000))
        cuts = summary.quantiles(7)
        assert cuts == sorted(cuts)
        with pytest.raises(ValueError):
            summary.quantiles(0)

    @given(signed_int_lists)
    @settings(max_examples=30, deadline=None)
    def test_median_guarantee_property(self, points):
        epsilon = 0.1
        summary = GKQuantileSummary(epsilon)
        summary.extend([float(p) for p in points])
        estimate = summary.query(0.5)
        ordered = sorted(points)
        rank_low = np.searchsorted(ordered, estimate, side="left")
        rank_high = np.searchsorted(ordered, estimate, side="right")
        target = 0.5 * len(points)
        slack = 2 * epsilon * len(points) + 1
        assert rank_low - slack <= target <= rank_high + slack


class TestGKMerge:
    def test_merge_counts(self):
        first = GKQuantileSummary(0.05)
        first.extend([1.0, 2.0, 3.0])
        second = GKQuantileSummary(0.05)
        second.extend([10.0, 20.0])
        merged = first.merge(second)
        assert len(merged) == 5
        assert merged.query(0.0) == 1.0
        assert merged.query(1.0) == 20.0

    def test_merge_with_empty(self):
        first = GKQuantileSummary(0.1)
        first.extend(np.arange(100.0))
        empty = GKQuantileSummary(0.1)
        merged = first.merge(empty)
        assert len(merged) == 100
        assert abs(merged.query(0.5) - 50.0) <= 25.0

    def test_merge_rank_guarantee(self):
        """Merged error is bounded by the sum of the input epsilons."""
        rng = np.random.default_rng(9)
        left = rng.normal(size=4000)
        right = rng.normal(loc=3.0, size=2500)
        epsilon = 0.02
        first = GKQuantileSummary(epsilon)
        first.extend(left)
        second = GKQuantileSummary(epsilon)
        second.extend(right)
        merged = first.merge(second)
        combined = np.sort(np.concatenate([left, right]))
        n = combined.size
        for fraction in (0.1, 0.25, 0.5, 0.75, 0.9):
            estimate = merged.query(fraction)
            rank = int(np.searchsorted(combined, estimate, side="right"))
            assert abs(rank - fraction * n) <= 2 * (2 * epsilon) * n + 2

    def test_merge_is_usable_for_further_queries(self):
        rng = np.random.default_rng(10)
        parts = [rng.normal(size=1000) for _ in range(4)]
        summaries = []
        for part in parts:
            summary = GKQuantileSummary(0.05)
            summary.extend(part)
            summaries.append(summary)
        merged = summaries[0]
        for summary in summaries[1:]:
            merged = merged.merge(summary)
        assert len(merged) == 4000
        assert merged.summary_size < 4000
        median = merged.query(0.5)
        truth = float(np.median(np.concatenate(parts)))
        assert abs(median - truth) <= 0.5


class TestReservoirSample:
    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)

    def test_estimates_before_data(self):
        reservoir = ReservoirSample(4)
        with pytest.raises(ValueError):
            reservoir.estimate_mean()
        with pytest.raises(ValueError):
            reservoir.estimate_sum()
        with pytest.raises(ValueError):
            reservoir.estimate_quantile(0.5)

    def test_keeps_everything_under_capacity(self):
        reservoir = ReservoirSample(10)
        reservoir.extend([1.0, 2.0, 3.0])
        assert sorted(reservoir.values()) == [1.0, 2.0, 3.0]
        assert reservoir.sample_size == 3
        assert len(reservoir) == 3

    def test_capacity_respected(self):
        reservoir = ReservoirSample(16, seed=4)
        reservoir.extend(np.arange(1000.0))
        assert reservoir.sample_size == 16

    def test_sample_is_subset_of_stream(self):
        reservoir = ReservoirSample(8, seed=5)
        stream = np.arange(500.0) * 3
        reservoir.extend(stream)
        assert set(reservoir.values()).issubset(set(stream))

    def test_uniformity_rough(self):
        """Each element should land in the sample with probability ~k/n."""
        hits = np.zeros(100)
        for seed in range(300):
            reservoir = ReservoirSample(10, seed=seed)
            reservoir.extend(np.arange(100.0))
            for value in reservoir.values():
                hits[int(value)] += 1
        # Expected 30 hits each; allow generous tolerance.
        assert hits.min() > 10
        assert hits.max() < 60

    def test_estimators_consistent(self):
        rng = np.random.default_rng(6)
        data = rng.normal(loc=5.0, size=5000)
        reservoir = ReservoirSample(1000, seed=7)
        reservoir.extend(data)
        assert reservoir.estimate_mean() == pytest.approx(5.0, abs=0.3)
        assert reservoir.estimate_sum() == pytest.approx(data.sum(), rel=0.1)
        assert reservoir.estimate_quantile(0.5) == pytest.approx(
            np.median(data), abs=0.3
        )
        with pytest.raises(ValueError):
            reservoir.estimate_quantile(2.0)
