"""Tests for the stream-mining applications (repro.mining)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import Histogram
from repro.core.optimal import optimal_histogram
from repro.datasets import timeseries_collection
from repro.mining import (
    HistogramChangeDetector,
    cluster_series,
    histogram_features,
    histogram_l1,
    histogram_l2,
    merged_breakpoints,
)

from .conftest import int_sequences


class TestHistogramDistances:
    def test_merged_breakpoints_cover_domain(self):
        first = Histogram.from_boundaries(np.arange(10.0), [3])
        second = Histogram.from_boundaries(np.arange(10.0), [6])
        segments = merged_breakpoints(first, second)
        assert segments[0][0] == 0
        assert segments[-1][1] == 9
        covered = sum(end - start + 1 for start, end, _, _ in segments)
        assert covered == 10

    def test_length_mismatch_rejected(self):
        first = Histogram.from_boundaries([1.0, 2.0], [])
        second = Histogram.from_boundaries([1.0, 2.0, 3.0], [])
        with pytest.raises(ValueError):
            histogram_l2(first, second)

    def test_distance_to_self_is_zero(self):
        histogram = Histogram.from_boundaries(np.arange(16.0), [4, 9])
        assert histogram_l2(histogram, histogram) == 0.0
        assert histogram_l1(histogram, histogram) == 0.0

    @given(int_sequences, st.data())
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_computation(self, values, data):
        n = values.size
        first = optimal_histogram(values, data.draw(st.integers(1, 4)))
        second = optimal_histogram(values[::-1].copy(), data.draw(st.integers(1, 4)))
        dense_l2 = float(np.sqrt(np.sum((first.to_array() - second.to_array()) ** 2)))
        dense_l1 = float(np.sum(np.abs(first.to_array() - second.to_array())))
        assert histogram_l2(first, second) == pytest.approx(dense_l2, abs=1e-9)
        assert histogram_l1(first, second) == pytest.approx(dense_l1, abs=1e-9)

    @given(int_sequences)
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, values):
        first = optimal_histogram(values, 2)
        second = optimal_histogram(np.roll(values, 1), 3)
        assert histogram_l2(first, second) == pytest.approx(
            histogram_l2(second, first)
        )


class TestChangeDetector:
    def test_validates(self):
        with pytest.raises(ValueError):
            HistogramChangeDetector(1)
        with pytest.raises(ValueError):
            HistogramChangeDetector(16, sensitivity=0.0)
        with pytest.raises(ValueError):
            HistogramChangeDetector(16, check_every=0)
        with pytest.raises(ValueError):
            HistogramChangeDetector(16, lag=0)

    def test_detects_abrupt_level_shift(self):
        rng = np.random.default_rng(1)
        change_at = 1200
        stream = np.concatenate([
            rng.normal(100.0, 5.0, change_at),
            rng.normal(500.0, 5.0, 1200),
        ]).round()
        detector = HistogramChangeDetector(window_size=128, check_every=16)
        events = detector.run(stream)
        assert events, "the level shift must be detected"
        first = events[0].position
        # Fires once the current window starts absorbing the new regime.
        assert change_at <= first <= change_at + 128 + 32

    def test_quiet_stream_stays_quiet(self):
        rng = np.random.default_rng(2)
        stream = rng.normal(100.0, 5.0, 3000).round()
        detector = HistogramChangeDetector(window_size=128, check_every=16)
        assert detector.run(stream) == []

    def test_multiple_changes(self):
        rng = np.random.default_rng(3)
        stream = np.concatenate([
            rng.normal(100.0, 4.0, 1000),
            rng.normal(400.0, 4.0, 1000),
            rng.normal(150.0, 4.0, 1000),
        ]).round()
        detector = HistogramChangeDetector(window_size=128, check_every=16,
                                           cooldown=512)
        events = detector.run(stream)
        positions = [event.position for event in events]
        assert any(1000 <= p <= 1250 for p in positions)
        assert any(2000 <= p <= 2250 for p in positions)

    def test_event_fields(self):
        rng = np.random.default_rng(4)
        stream = np.concatenate([
            rng.normal(50.0, 2.0, 800), rng.normal(300.0, 2.0, 400)
        ])
        detector = HistogramChangeDetector(window_size=64, check_every=8)
        events = detector.run(stream)
        assert events
        event = events[0]
        assert event.score > event.threshold > 0


class TestClustering:
    def test_validates(self):
        collection = timeseries_collection(10, 32, seed=5)
        with pytest.raises(ValueError):
            cluster_series(collection, 0)
        with pytest.raises(ValueError):
            cluster_series(collection, 11)
        with pytest.raises(ValueError):
            histogram_features(np.zeros(5))
        with pytest.raises(ValueError):
            histogram_features(collection, grid=0)

    def test_features_shape(self):
        collection = timeseries_collection(12, 64, seed=6)
        features = histogram_features(collection, grid=20)
        assert features.shape == (12, 20)

    def test_deterministic(self):
        collection = timeseries_collection(20, 64, families=2, seed=7)
        first = cluster_series(collection, 2, seed=3)
        second = cluster_series(collection, 2, seed=3)
        assert np.array_equal(first.labels, second.labels)
        assert first.num_clusters == 2

    def test_recovers_families(self):
        """Histogram features separate well-separated shape families."""
        collection, families = timeseries_collection(
            60, 96, families=3, seed=8, return_families=True
        )
        result = cluster_series(collection, 3, seed=1)
        # Purity: majority family per cluster.
        correct = 0
        for cluster in range(3):
            members = families[result.labels == cluster]
            if members.size:
                correct += int(np.bincount(members).max())
        assert correct / len(families) >= 0.8

    def test_single_cluster(self):
        collection = timeseries_collection(8, 32, seed=9)
        result = cluster_series(collection, 1)
        assert set(result.labels.tolist()) == {0}
        assert result.inertia >= 0.0
