"""Validate-before-mutate: a failed batch ingest must apply nothing.

``Maintainer._ingest_batch`` documents the contract every batch caller
relies on: when ``extend`` raises, the synopsis must be exactly as it
was.  :class:`~repro.runtime.pipeline.StreamPipeline` rolls its arrival
counter back for the *whole* chunk when no maintainer consumed it, and
:class:`~repro.service.stream_worker.StreamWorker` attributes the
failure to exactly the un-ingested suffix (quarantining offenders,
replaying the rest) -- a backend that quietly applies a prefix before
noticing a bad value mid-batch makes both bookkeepings wrong and the
recovered stream diverge from a clean run.

Every registry backend is probed with poison planted at the *end* of a
batch (the position a prefix-mutating implementation gets wrong), on
both the small-batch scalar path and the vectorized path.  The uniform
property: either the whole batch is accepted, or the failed extend left
``state_dict()`` bit-identical to the pre-batch state.
"""

import numpy as np
import pytest

from repro.runtime import make_maintainer
from repro.runtime.pipeline import StreamPipeline

from .conftest import BACKEND_PARAMS as BACKEND_KWARGS

#: Integral, in-domain values every backend (incl. the frequency-vector
#: dynamic wavelet) accepts.
CLEAN = [3.0, 17.0, 41.0, 5.0, 29.0, 7.0, 63.0, 11.0]

#: Probes covering the failure modes the backends can hit: non-finite
#: values, a negative (rejected by the equi-depth summary), and a value
#: far outside the dynamic wavelet's domain.
POISON = [float("nan"), float("inf"), float("-inf"), -1.0, 1.0e6]


def _build(backend):
    maintainer = make_maintainer(backend, **BACKEND_KWARGS[backend])
    maintainer.extend(np.asarray(CLEAN, dtype=np.float64))
    return maintainer


def _synopsis_state(maintainer):
    """state_dict minus the wall-clock telemetry (not synopsis state)."""
    state = maintainer.state_dict()
    state.pop("stats", None)
    return state


@pytest.mark.parametrize("backend", sorted(BACKEND_KWARGS))
@pytest.mark.parametrize("clean_points", [3, 24], ids=["scalar", "vectorized"])
@pytest.mark.parametrize("bad", POISON, ids=["nan", "inf", "-inf", "neg", "huge"])
class TestAllOrNothingExtend:
    def test_failed_extend_leaves_state_untouched(self, backend, clean_points, bad):
        maintainer = _build(backend)
        before = maintainer.state_dict()
        points_before = maintainer.stats().points
        batch = np.asarray(
            (CLEAN * 3)[:clean_points] + [bad], dtype=np.float64
        )
        try:
            maintainer.extend(batch)
        except (ValueError, OverflowError):
            after = maintainer.state_dict()
            assert after == before, (
                f"{backend}: failed extend mutated state "
                f"(poison {bad!r} at position {clean_points})"
            )
            assert maintainer.stats().points == points_before
        else:
            # The backend accepts this value (e.g. the GK summary or the
            # reservoir order any float): the whole batch must be in.
            assert maintainer.stats().points == points_before + batch.size

    def test_retry_after_failure_matches_clean_run(self, backend, clean_points, bad):
        """After a rejected batch, re-feeding the clean prefix converges.

        This is the recovery sequence the stream worker performs: the
        failed batch is split at the poison point and the clean part is
        re-fed.  The result must equal a maintainer that never saw the
        poison at all.
        """
        maintainer = _build(backend)
        clean_part = np.asarray((CLEAN * 3)[:clean_points], dtype=np.float64)
        batch = np.concatenate([clean_part, [bad]])
        try:
            maintainer.extend(batch)
        except (ValueError, OverflowError):
            maintainer.extend(clean_part)
        else:
            pytest.skip(f"{backend} accepts {bad!r}; no recovery path to check")
        reference = _build(backend)
        reference.extend(clean_part)
        assert _synopsis_state(maintainer) == _synopsis_state(reference)


class TestPipelineRollback:
    """The arrival counter stays batch-exact across rejected chunks."""

    @pytest.mark.parametrize("backend", sorted(BACKEND_KWARGS))
    def test_arrivals_rolled_back_on_rejected_chunk(self, backend):
        maintainer = make_maintainer(backend, **BACKEND_KWARGS[backend])
        pipeline = StreamPipeline([maintainer], maintain_every=4)
        pipeline.extend(np.asarray(CLEAN, dtype=np.float64))
        arrivals = pipeline.arrivals
        poisoned = np.asarray(CLEAN[:3] + [float("nan")], dtype=np.float64)
        try:
            pipeline.extend(poisoned)
        except (ValueError, OverflowError):
            assert pipeline.arrivals == arrivals, (
                f"{backend}: arrival counter drifted on a rejected chunk"
            )
        else:
            assert pipeline.arrivals == arrivals + poisoned.size

    def test_resumed_pipeline_matches_uninterrupted_run(self):
        """Reject -> re-feed clean suffix == clean run (cadence aligned)."""
        interrupted = make_maintainer("fixed_window", **BACKEND_KWARGS["fixed_window"])
        pipeline = StreamPipeline([interrupted], maintain_every=4)
        head = np.asarray(CLEAN, dtype=np.float64)
        tail = np.asarray(CLEAN[:3], dtype=np.float64)
        pipeline.extend(head)
        with pytest.raises(ValueError):
            pipeline.extend(np.concatenate([tail, [float("nan")]]))
        pipeline.extend(tail)

        clean = make_maintainer("fixed_window", **BACKEND_KWARGS["fixed_window"])
        reference = StreamPipeline([clean], maintain_every=4)
        reference.extend(head)
        reference.extend(tail)
        assert pipeline.arrivals == reference.arrivals
        assert _synopsis_state(interrupted) == _synopsis_state(clean)
