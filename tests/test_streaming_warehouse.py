"""Tests for one-pass warehouse summaries (repro.warehouse.streaming)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import warehouse_measure_column
from repro.warehouse import (
    AttributeSummary,
    Relation,
    StreamingEquiDepthSummary,
    StreamingWaveletSummary,
)


class TestStreamingEquiDepth:
    def test_validates(self):
        with pytest.raises(ValueError):
            StreamingEquiDepthSummary(0)
        summary = StreamingEquiDepthSummary(4)
        with pytest.raises(ValueError):
            summary.insert(-1.0)
        with pytest.raises(ValueError):
            summary.histogram()
        with pytest.raises(ValueError):
            summary.estimate_count(0, 1)

    def test_histogram_covers_domain(self):
        summary = StreamingEquiDepthSummary(4, epsilon=0.05)
        rng = np.random.default_rng(0)
        values = rng.integers(0, 200, size=3000)
        summary.extend(values)
        histogram = summary.histogram()
        assert len(histogram) == int(values.max()) + 1
        assert histogram.num_buckets <= 4
        # Total mass approximately equals the row count.
        total = histogram.range_sum(0, len(histogram) - 1)
        assert total == pytest.approx(3000, rel=0.05)

    def test_buckets_roughly_equal_mass(self):
        summary = StreamingEquiDepthSummary(8, epsilon=0.01)
        rng = np.random.default_rng(1)
        values = rng.integers(0, 1000, size=20000)
        summary.extend(values)
        histogram = summary.histogram()
        masses = [bucket.total for bucket in histogram.buckets]
        mean_mass = sum(masses) / len(masses)
        assert max(masses) <= 2.0 * mean_mass

    def test_count_estimates_close(self):
        column = warehouse_measure_column(30000, seed=2)
        relation = Relation({"v": column})
        summary = StreamingEquiDepthSummary(16, epsilon=0.005)
        summary.extend(column)
        rng = np.random.default_rng(3)
        for _ in range(20):
            low = float(rng.integers(0, 800))
            high = low + float(rng.integers(50, 400))
            exact = relation.count_range("v", low, high)
            estimate = summary.estimate_count(low, high)
            assert abs(estimate - exact) <= 0.02 * len(relation) + 5

    def test_empty_range(self):
        summary = StreamingEquiDepthSummary(4)
        summary.extend([1.0, 2.0, 3.0])
        assert summary.estimate_count(5, 2) == 0.0


class TestStreamingWavelet:
    def test_validates(self):
        with pytest.raises(ValueError):
            StreamingWaveletSummary(100, 0)
        summary = StreamingWaveletSummary(100, 8)
        with pytest.raises(ValueError):
            summary.estimate_count(0, 10)

    def test_counts_with_generous_budget(self):
        summary = StreamingWaveletSummary(64, 64)
        rng = np.random.default_rng(4)
        values = rng.integers(0, 64, size=5000)
        summary.extend(values)
        exact = int(np.count_nonzero((values >= 10) & (values <= 30)))
        assert summary.estimate_count(10, 30) == pytest.approx(exact, rel=0.02)

    def test_delete_supported(self):
        summary = StreamingWaveletSummary(32, 32)
        summary.extend([5, 5, 9])
        summary.delete(5)
        assert summary.estimate_count(5, 5) == pytest.approx(1.0, abs=1e-6)
        assert len(summary) == 2


class TestConstructionRoutesAgree:
    def test_all_routes_estimate_the_same_distribution(self):
        """Frequency-vector, GK, and wavelet routes answer comparably."""
        column = warehouse_measure_column(20000, seed=5)
        relation = Relation({"v": column})
        domain = int(column.max()) + 1

        frequency_route = AttributeSummary.build(
            relation, "v", 16, method="approximate", epsilon=0.1
        )
        gk_route = StreamingEquiDepthSummary(16, epsilon=0.005)
        gk_route.extend(column)
        wavelet_route = StreamingWaveletSummary(domain, 32)
        wavelet_route.extend(column)

        rng = np.random.default_rng(6)
        rows = len(relation)
        for _ in range(15):
            low = float(rng.integers(0, 700))
            high = low + float(rng.integers(100, 500))
            exact = relation.count_range("v", low, high)
            for route in (frequency_route, gk_route, wavelet_route):
                estimate = route.estimate_count(low, high)
                assert abs(estimate - exact) <= 0.15 * rows + 10


class TestBatchedIngestion:
    """Satellite of the runtime refactor: numpy batches, one validation."""

    def test_equi_depth_extend_accepts_numpy_arrays(self):
        column = warehouse_measure_column(400, seed=3)
        from_list = StreamingEquiDepthSummary(8, epsilon=0.05)
        from_list.extend(column.tolist())
        from_array = StreamingEquiDepthSummary(8, epsilon=0.05)
        from_array.extend(np.asarray(column))
        assert from_array.histogram().to_dict() == from_list.histogram().to_dict()

    def test_equi_depth_rejects_negative_batch_upfront(self):
        summary = StreamingEquiDepthSummary(4)
        summary.extend([1.0, 2.0, 3.0, 4.0])
        before = len(summary)
        with pytest.raises(ValueError, match="non-negative"):
            summary.extend(np.array([5.0, -1.0, 6.0]))
        # The batch is validated before any value is ingested.
        assert len(summary) == before

    def test_append_is_insert(self):
        summary = StreamingEquiDepthSummary(4)
        summary.append(2.0)
        summary.insert(3.0)
        assert len(summary) == 2
        wavelet = StreamingWaveletSummary(domain_size=8, budget=4)
        wavelet.append(1)
        wavelet.insert(2)
        assert len(wavelet) == 2

    def test_wavelet_extend_accepts_numpy_arrays(self):
        values = np.array([1.0, 3.0, 3.0, 7.0, 2.0])
        from_array = StreamingWaveletSummary(domain_size=8, budget=4)
        from_array.extend(values)
        from_list = StreamingWaveletSummary(domain_size=8, budget=4)
        from_list.extend([1, 3, 3, 7, 2])
        assert len(from_array) == len(from_list) == 5
        for low, high in ((0, 7), (2, 4), (3, 3)):
            assert from_array.estimate_count(low, high) == from_list.estimate_count(
                low, high
            )
