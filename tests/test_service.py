"""Tests for repro.service: the concurrent multi-stream synopsis service.

Pins down the serving-layer contract: threaded ingestion is equivalent
to a direct single-threaded pipeline run, queries are snapshot-isolated,
backpressure policies behave as configured, and a crashed service
restored from its snapshot manifest converges to the uninterrupted run.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.runtime import StreamPipeline, make_maintainer
from repro.service import (
    BackpressureError,
    SnapshotStore,
    StreamService,
    StreamSpec,
    StreamWorker,
    UnknownStreamError,
    UnsupportedQueryError,
)

from .conftest import BACKEND_PARAMS as BACKEND_KWARGS


def integer_stream(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=n).astype(float)


def reference_synopsis(maintainer):
    """What a service view would serve: the last-maintained synopsis."""
    produce = getattr(maintainer, "last_synopsis", None)
    return produce() if produce is not None else maintainer.synopsis()


def assert_same_synopsis(a, b):
    if hasattr(a, "to_dict"):
        assert a.to_dict() == b.to_dict()
    elif hasattr(a, "quantiles"):
        assert a.quantiles(5) == b.quantiles(5)
    else:
        assert a.range_sum(0, len(a) - 1) == b.range_sum(0, len(b) - 1)


class TestServiceEquivalence:
    """Threaded service ingestion == direct single-threaded pipeline."""

    @pytest.mark.parametrize("backend", sorted(BACKEND_KWARGS))
    def test_matches_direct_pipeline(self, backend):
        stream = integer_stream(1500, seed=4)
        with StreamService() as service:
            service.create_stream(
                "s",
                backend=backend,
                params=BACKEND_KWARGS[backend],
                maintain_every=32,
                queue_capacity=128,
            )
            # Ragged chunks, crossing queue and cadence boundaries.
            rng = np.random.default_rng(8)
            i = 0
            while i < stream.size:
                step = int(rng.integers(1, 97))
                service.ingest("s", stream[i : i + step])
                i += step
            service.flush("s")
            served = service.synopsis("s")
        direct = make_maintainer(backend, **BACKEND_KWARGS[backend])
        StreamPipeline([direct], maintain_every=32).run(stream)
        assert_same_synopsis(served, reference_synopsis(direct))

    def test_arbitrary_queue_sizes(self):
        stream = integer_stream(800, seed=1)
        for capacity in (1, 7, 64, 4096):
            with StreamService() as service:
                service.create_stream(
                    "s",
                    backend="fixed_window",
                    params=BACKEND_KWARGS["fixed_window"],
                    maintain_every=16,
                    queue_capacity=capacity,
                )
                for start in range(0, 800, 13):
                    service.ingest("s", stream[start : start + 13])
                service.flush("s")
                served = service.synopsis("s")
            direct = make_maintainer("fixed_window", **BACKEND_KWARGS["fixed_window"])
            StreamPipeline([direct], maintain_every=16).run(stream)
            assert served.to_dict() == direct.synopsis().to_dict()

    def test_concurrent_producers_lossless(self):
        """N producer threads into one blocking stream lose nothing."""
        with StreamService() as service:
            service.create_stream(
                "gk", backend="gk_quantiles", params=dict(epsilon=0.1),
                queue_capacity=32,
            )

            def produce(seed):
                for chunk in np.array_split(integer_stream(500, seed=seed), 25):
                    service.ingest("gk", chunk)

            threads = [
                threading.Thread(target=produce, args=(seed,)) for seed in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.flush("gk")
            stats = service.stats("gk")
            assert stats["submitted_points"] == 2000
            assert stats["ingested_points"] == 2000
            assert stats["dropped_points"] == 0
            assert len(service.synopsis("gk")) == 2000

    def test_multiple_streams_are_independent(self):
        with StreamService() as service:
            service.create_stream(
                "a", backend="exact", params=dict(window_size=64)
            )
            service.create_stream(
                "b", backend="gk_quantiles", params=dict(epsilon=0.1)
            )
            service.ingest("a", integer_stream(100, seed=1))
            service.ingest("b", integer_stream(200, seed=2))
            service.flush()
            assert service.stats("a")["arrivals"] == 100
            assert service.stats("b")["arrivals"] == 200
            assert sorted(service.streams()) == ["a", "b"]


class TestSnapshotIsolation:
    def test_view_is_frozen_against_later_ingestion(self):
        with StreamService() as service:
            service.create_stream(
                "gk", backend="gk_quantiles", params=dict(epsilon=0.1)
            )
            service.ingest("gk", integer_stream(300, seed=0))
            service.flush("gk")
            view = service.view("gk")
            frozen = view.synopsis.to_dict()
            service.ingest("gk", integer_stream(300, seed=1))
            service.flush("gk")
            # The old view is untouched; the service serves a newer one.
            assert view.synopsis.to_dict() == frozen
            assert service.view("gk").arrivals == 600
            assert view.arrivals == 300

    def test_query_before_ingestion_raises(self):
        with StreamService() as service:
            service.create_stream("s", backend="exact", params=dict(window_size=8))
            with pytest.raises(ValueError, match="no materialized synopsis"):
                service.range_sum("s", 0, 3)


class TestQueries:
    def test_range_sum_exact_backend(self):
        stream = integer_stream(64, seed=9)
        with StreamService() as service:
            service.create_stream("s", backend="exact", params=dict(window_size=64))
            service.ingest("s", stream)
            service.flush("s")
            assert service.range_sum("s", 10, 20) == pytest.approx(
                float(stream[10:21].sum())
            )

    def test_quantile_across_backends(self):
        stream = integer_stream(500, seed=3)
        specs = {
            "gk": ("gk_quantiles", dict(epsilon=0.05)),
            "res": ("reservoir", dict(capacity=256)),
            "depth": ("equi_depth", dict(num_buckets=16)),
            "exact": ("exact", dict(window_size=500)),
        }
        with StreamService() as service:
            for name, (backend, params) in specs.items():
                service.create_stream(name, backend=backend, params=params)
                service.ingest(name, stream)
            service.flush()
            truth = float(np.quantile(stream, 0.5))
            for name in specs:
                assert service.quantile(name, 0.5) == pytest.approx(
                    truth, abs=15.0
                ), name

    def test_histogram_payload_is_json_friendly(self):
        with StreamService() as service:
            service.create_stream(
                "h", backend="fixed_window", params=BACKEND_KWARGS["fixed_window"]
            )
            service.ingest("h", integer_stream(100, seed=5))
            service.flush("h")
            payload = json.loads(json.dumps(service.histogram("h")))
            assert payload["kind"] == "histogram"
            assert len(payload["ends"]) == len(payload["values"])

    def test_gk_rejects_positional_queries(self):
        with StreamService() as service:
            service.create_stream(
                "gk", backend="gk_quantiles", params=dict(epsilon=0.1)
            )
            service.ingest("gk", integer_stream(50))
            service.flush("gk")
            with pytest.raises(UnsupportedQueryError):
                service.range_sum("gk", 0, 10)

    def test_stats_surface_counters(self):
        with StreamService() as service:
            service.create_stream("s", backend="exact", params=dict(window_size=32))
            service.ingest("s", integer_stream(96))
            service.flush("s")
            stats = service.stats("s")
            assert stats["arrivals"] == 96
            assert stats["maintainer"]["points"] == 96
            assert stats["enqueue_p99_seconds"] >= 0.0
            assert stats["queue_depth"] == 0

    def test_unknown_stream_error_lists_hosted(self):
        with StreamService() as service:
            service.create_stream("known", backend="exact", params=dict(window_size=8))
            with pytest.raises(UnknownStreamError, match="known"):
                service.ingest("missing", [1.0])


class TestBackpressure:
    """Policies exercised on an unstarted worker (queue fills, no drain)."""

    @staticmethod
    def idle_worker(policy, capacity=10):
        maintainer = make_maintainer("gk_quantiles", epsilon=0.1)
        return StreamWorker(
            "s", maintainer, queue_capacity=capacity, backpressure=policy
        )

    def test_reject_raises_when_full(self):
        worker = self.idle_worker("reject")
        worker.submit(np.ones(10))
        with pytest.raises(BackpressureError, match="queue full"):
            worker.submit(np.ones(1))
        assert worker.counters.rejected_batches == 1
        assert worker.counters.rejected_points == 1
        assert worker.counters.submitted_points == 10

    def test_drop_oldest_evicts_from_the_front(self):
        worker = self.idle_worker("drop_oldest", capacity=10)
        worker.submit(np.full(5, 1.0))
        worker.submit(np.full(5, 2.0))
        worker.submit(np.full(5, 3.0))  # evicts the batch of 1.0s
        assert worker.counters.dropped_points == 5
        worker.start()
        worker.flush()
        worker.stop()
        sample = worker.maintainer.synopsis()
        assert len(sample) == 10  # only the surviving points were ingested
        assert worker.counters.ingested_points == 10

    def test_oversize_batch_enters_empty_queue(self):
        worker = self.idle_worker("reject", capacity=4)
        assert worker.submit(np.ones(32)) == 32
        with pytest.raises(BackpressureError):
            worker.submit(np.ones(1))

    def test_block_policy_waits_for_space(self):
        worker = self.idle_worker("block", capacity=8)
        worker.submit(np.ones(8))
        # The queue is full; a blocked producer must be released once the
        # worker drains.
        worker.start()
        assert worker.submit(np.ones(8)) == 8
        worker.flush()
        worker.stop()
        assert worker.counters.ingested_points == 16
        assert worker.counters.dropped_points == 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="backpressure"):
            self.idle_worker("spill")

    def test_worker_failure_propagates_to_producers(self):
        # Under poison="fail" an ingest error is fatal (the pre-quarantine
        # behavior, still available per stream spec).
        maintainer = make_maintainer("equi_depth", num_buckets=4)
        worker = StreamWorker("bad", maintainer, queue_capacity=64, poison="fail")
        worker.start()
        worker.submit(np.asarray([-5.0]))  # equi-depth rejects negatives
        with pytest.raises(RuntimeError, match="worker failed"):
            worker.flush()
        with pytest.raises(RuntimeError, match="worker failed"):
            worker.submit(np.ones(4))


class TestDrainStopLifecycle:
    """stop()/close() are drain-then-stop by default and idempotent."""

    @staticmethod
    def worker():
        return StreamWorker(
            "s", make_maintainer("gk_quantiles", epsilon=0.1), queue_capacity=64
        )

    def test_stop_drains_queued_records_by_default(self):
        worker = self.worker()
        worker.submit(integer_stream(50, seed=0))  # queued, worker not started
        worker.start()
        worker.stop()
        assert worker.counters.ingested_points == 50
        assert worker.counters.dropped_points == 0

    def test_stop_and_close_are_idempotent(self):
        worker = self.worker()
        worker.start()
        worker.submit(integer_stream(10, seed=1))
        worker.stop()
        worker.stop()
        worker.close()
        assert worker.counters.ingested_points == 10

    def test_stop_before_start_is_safe(self):
        worker = self.worker()
        worker.stop()
        worker.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            worker.submit([1.0])

    def test_submit_after_stop_rejected_without_losing_drained_work(self):
        worker = self.worker()
        worker.start()
        worker.submit(integer_stream(30, seed=2))
        worker.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            worker.submit([1.0])
        assert len(worker.maintainer.synopsis()) == 30

    def test_preload_only_before_start(self):
        worker = self.worker()
        assert worker.preload([integer_stream(10, seed=3)]) == 10
        worker.start()
        with pytest.raises(RuntimeError, match="preload"):
            worker.preload([[1.0]])
        worker.flush()
        worker.stop()
        assert worker.counters.ingested_points == 10


class TestDropOldestConcurrent:
    """drop_oldest under concurrent producers: counted, never raising."""

    def test_concurrent_producers_account_every_point(self):
        with StreamService() as service:
            service.create_stream(
                "m", backend="gk_quantiles", params=dict(epsilon=0.1),
                queue_capacity=64, backpressure="drop_oldest",
            )
            errors = []

            def produce(seed):
                try:
                    for chunk in np.array_split(
                        integer_stream(600, seed=seed), 40
                    ):
                        service.ingest("m", chunk)
                except Exception as error:  # pragma: no cover - must not happen
                    errors.append(error)

            threads = [
                threading.Thread(target=produce, args=(seed,))
                for seed in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.flush("m")
            assert errors == []
            stats = service.stats("m")
            assert stats["submitted_points"] == 6 * 600
            # Every submitted point was either ingested or dropped; the
            # freshest-data-wins policy never raises at the producer.
            assert (
                stats["ingested_points"] + stats["dropped_points"]
                == stats["submitted_points"]
            )
            assert stats["queue_depth"] == 0


class TestPoisonQuarantine:
    """Poison records go to the dead-letter buffer; ingest keeps flowing."""

    def test_poison_points_quarantined_ingest_continues(self):
        stream = integer_stream(200, seed=11)
        poisoned = stream.copy()
        poison_positions = [40, 41, 120]
        for position in poison_positions:
            poisoned[position] = -7.0  # equi-depth rejects negatives
        with StreamService() as service:
            service.create_stream(
                "d", backend="equi_depth", params=dict(num_buckets=8),
                maintain_every=16,
            )
            for start in range(0, 200, 50):
                service.ingest("d", poisoned[start : start + 50])
            service.flush("d")
            stats = service.stats("d")
            assert stats["dead_letter"]["poison_points"] == 3
            assert stats["dead_letter"]["quarantined"] == 3
            assert stats["arrivals"] == 197
            assert stats["ingested_points"] == 197
            records = service.dead_letters("d")
            assert [r.value for r in records] == [-7.0, -7.0, -7.0]
            assert all("negative" in r.error for r in records)
            served = service.synopsis("d")
            health = service.health("d")
            assert health["state"] == "healthy"
        # Quarantined points never advance the arrival counter, so the
        # result equals a clean-stream run with the poison removed.
        clean = np.delete(stream, poison_positions)
        direct = make_maintainer("equi_depth", num_buckets=8)
        StreamPipeline([direct], maintain_every=16).run(clean)
        assert_same_synopsis(served, reference_synopsis(direct))

    def test_retry_requarantines_still_bad_records(self):
        with StreamService() as service:
            service.create_stream(
                "d", backend="equi_depth", params=dict(num_buckets=4)
            )
            service.ingest("d", [1.0, -3.0, 2.0])
            service.flush("d")
            assert len(service.dead_letters("d")) == 1
            outcome = service.retry_dead_letters("d")
            assert outcome == {"retried": 1, "succeeded": 0, "failed": 1}
            counters = service.stats("d")["dead_letter"]
            assert counters["retry_failed"] == 1
            assert counters["quarantined"] == 1

    def test_fail_policy_keeps_old_semantics(self):
        with StreamService() as service:
            service.create_stream(
                "d", backend="equi_depth", params=dict(num_buckets=4),
                poison="fail",
            )
            service.ingest("d", [1.0, -3.0, 2.0])
            with pytest.raises(RuntimeError, match="worker failed"):
                service.flush("d")

    def test_spec_rejects_unknown_poison_policy(self):
        with pytest.raises(ValueError, match="poison"):
            StreamSpec(backend="exact", poison="explode")


class TestCheckpointRestore:
    def test_crash_recovery_matches_uninterrupted_run(self, tmp_path):
        """Kill after a checkpoint, restore, finish: same final synopsis."""
        stream = integer_stream(2000, seed=6)
        params = dict(window_size=128, num_buckets=8, epsilon=0.25)

        service = StreamService(snapshot_dir=tmp_path)
        service.create_stream(
            "cpu", backend="fixed_window", params=params, maintain_every=32
        )
        for start in range(0, 1200, 100):
            service.ingest("cpu", stream[start : start + 100])
        service.flush("cpu")
        service.checkpoint("cpu")
        # Post-checkpoint traffic that the "crash" will wipe out.
        service.ingest("cpu", stream[1200:1400])
        del service  # crash: no close(), no final checkpoint

        restored = StreamService.restore(tmp_path)
        restored.flush()
        resume_from = restored.stats("cpu")["arrivals"]
        assert resume_from == 1200
        restored.ingest("cpu", stream[resume_from:])
        restored.flush("cpu")
        final = restored.synopsis("cpu")
        restored.close(checkpoint=False)

        direct = make_maintainer("fixed_window", **params)
        StreamPipeline([direct], maintain_every=32).run(stream)
        assert final.to_dict() == direct.synopsis().to_dict()

    @pytest.mark.parametrize("backend", sorted(BACKEND_KWARGS))
    def test_snapshot_round_trip_every_backend(self, backend, tmp_path):
        stream = integer_stream(700, seed=sorted(BACKEND_KWARGS).index(backend))
        with StreamService(snapshot_dir=tmp_path) as service:
            service.create_stream(
                "s", backend=backend, params=BACKEND_KWARGS[backend],
                maintain_every=16,
            )
            service.ingest("s", stream[:400])
            service.flush("s")
            service.checkpoint("s")
        restored = StreamService.restore(tmp_path)
        restored.ingest("s", stream[400:])
        restored.flush("s")
        served = restored.synopsis("s")
        restored.close(checkpoint=False)
        direct = make_maintainer(backend, **BACKEND_KWARGS[backend])
        pipeline = StreamPipeline([direct], maintain_every=16)
        pipeline.run(stream)
        assert_same_synopsis(served, reference_synopsis(direct))

    def test_checkpoint_captures_buffered_tail(self, tmp_path):
        """Points accepted but not yet ingested survive in the snapshot."""
        maintainer = make_maintainer("gk_quantiles", epsilon=0.1)
        worker = StreamWorker("t", maintainer, queue_capacity=512)
        stream = integer_stream(300, seed=7)
        worker.submit(stream[:200])
        # Worker never started: everything is tail.
        state, arrivals, tail = worker.checkpoint_state()
        assert arrivals == 0
        assert sum(len(batch) for batch in tail) == 200
        restored = make_maintainer("gk_quantiles", epsilon=0.1)
        restored.load_state_dict(state)
        for batch in tail:
            restored.extend(batch)
        restored.extend(stream[200:300])
        direct = make_maintainer("gk_quantiles", epsilon=0.1)
        direct.extend(stream[:200])
        direct.extend(stream[200:300])
        assert restored.synopsis().to_dict() == direct.synopsis().to_dict()

    def test_auto_checkpoint_cadence(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with StreamService(snapshot_dir=tmp_path) as service:
            service.create_stream(
                "s", backend="gk_quantiles", params=dict(epsilon=0.1),
                checkpoint_every=100,
            )
            for _ in range(5):
                service.ingest("s", integer_stream(100, seed=1))
                service.flush("s")
        assert "s" in store.streams()
        payload = store.load_latest("s")
        assert payload["arrivals"] >= 100

    def test_close_takes_final_checkpoint(self, tmp_path):
        service = StreamService(snapshot_dir=tmp_path)
        service.create_stream("s", backend="exact", params=dict(window_size=32))
        service.ingest("s", integer_stream(64, seed=2))
        service.close()
        payload = SnapshotStore(tmp_path).load_latest("s")
        assert payload["arrivals"] == 64
        assert payload["tail"] == []

    def test_checkpoint_without_store_rejected(self):
        with StreamService() as service:
            service.create_stream("s", backend="exact", params=dict(window_size=8))
            with pytest.raises(RuntimeError, match="snapshot_dir"):
                service.checkpoint()

    def test_preexisting_format2_json_directory_restores(self, tmp_path):
        """A snapshot directory written by the old JSON layout restores."""
        stream = integer_stream(500, seed=17)
        params = dict(epsilon=0.05)
        maintainer = make_maintainer("gk_quantiles", **params)
        pipeline = StreamPipeline([maintainer], maintain_every=16)
        pipeline.run(stream[:300])
        spec = StreamSpec(
            backend="gk_quantiles", params=params, maintain_every=16
        )
        store = SnapshotStore(tmp_path)
        # Exactly what a pre-binary service persisted: JSON state dict,
        # no state_arrays -- the store must keep this on format 2.
        path = store.write(
            "s",
            {
                "spec": spec.to_dict(),
                "arrivals": 300,
                "state": json.loads(json.dumps(maintainer.state_dict())),
                "tail": [stream[300:350].tolist()],
            },
        )
        assert path.suffix == ".json"
        restored = StreamService.restore(tmp_path, snapshot_base_every=3)
        restored.flush("s")
        assert restored.stats("s")["arrivals"] == 350
        restored.ingest("s", stream[350:])
        restored.flush("s")
        # The first checkpoint of the restored service may chain a delta
        # onto the legacy JSON base.
        restored.checkpoint("s")
        served = restored.synopsis("s")
        restored.close(checkpoint=False)
        direct = make_maintainer("gk_quantiles", **params)
        StreamPipeline([direct], maintain_every=16).run(stream)
        assert_same_synopsis(served, reference_synopsis(direct))

    def test_delta_cadence_round_trip(self, tmp_path):
        """Restore from a delta head, checkpoint again, restore again."""
        stream = integer_stream(900, seed=23)
        params = dict(window_size=64, num_buckets=8, epsilon=0.25)
        with StreamService(tmp_path, snapshot_base_every=3) as service:
            service.create_stream(
                "s", backend="fixed_window", params=params, maintain_every=16
            )
            for boundary in range(150, 601, 150):
                service.ingest("s", stream[boundary - 150 : boundary])
                service.flush("s")
                service.checkpoint("s")
            service.close(checkpoint=False)
        suffixes = [p.suffix for p in SnapshotStore(tmp_path).generations("s")]
        assert ".delta" in suffixes and ".snap" in suffixes
        middle = StreamService.restore(tmp_path, snapshot_base_every=3)
        middle.flush("s")
        assert middle.stats("s")["arrivals"] == 600
        middle.ingest("s", stream[600:750])
        middle.flush("s")
        middle.checkpoint("s")  # chains onto the restored head
        middle.close(checkpoint=False)
        final = StreamService.restore(tmp_path)
        final.flush("s")
        assert final.stats("s")["arrivals"] == 750
        final.ingest("s", stream[750:])
        final.flush("s")
        served = final.synopsis("s")
        final.close(checkpoint=False)
        direct = make_maintainer("fixed_window", **params)
        StreamPipeline([direct], maintain_every=16).run(stream)
        assert served.to_dict() == reference_synopsis(direct).to_dict()

    def test_checkpoint_mode_full_overrides_cadence(self, tmp_path):
        with StreamService(tmp_path, snapshot_base_every=4) as service:
            service.create_stream(
                "s", backend="exact", params=dict(window_size=32)
            )
            for _ in range(3):
                service.ingest("s", integer_stream(50, seed=3))
                service.flush("s")
                service.checkpoint("s", mode="full")
            suffixes = {
                p.suffix for p in service._store.generations("s")
            }
            assert suffixes == {".snap"}
            with pytest.raises(ValueError, match="mode"):
                service.checkpoint("s", mode="bogus")

    def test_snapshot_base_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_base_every"):
            StreamService(tmp_path, snapshot_base_every=0)


class TestSnapshotStore:
    def test_manifest_tracks_latest_and_prunes(self, tmp_path):
        # keep=2 by default: the newest generation plus one fallback.
        store = SnapshotStore(tmp_path)
        store.write("s", {"arrivals": 1, "state": {}, "tail": []})
        store.write("s", {"arrivals": 2, "state": {}, "tail": []})
        entry = store.manifest()["streams"]["s"]
        assert entry["seq"] == 2
        assert store.load_latest("s")["arrivals"] == 2
        remaining = sorted(p.name for p in tmp_path.glob("s-*.json"))
        assert remaining == ["s-00000001.json", "s-00000002.json"]
        store.write("s", {"arrivals": 3, "state": {}, "tail": []})
        remaining = sorted(p.name for p in tmp_path.glob("s-*.json"))
        assert remaining == ["s-00000002.json", "s-00000003.json"]

    def test_unknown_stream_raises(self, tmp_path):
        with pytest.raises(KeyError, match="nope"):
            SnapshotStore(tmp_path).load_latest("nope")

    def test_wrong_format_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": 99, "streams": {}})
        )
        with pytest.raises(ValueError, match="format"):
            store.manifest()


class TestServiceLifecycle:
    def test_duplicate_stream_rejected(self):
        with StreamService() as service:
            service.create_stream("s", backend="exact", params=dict(window_size=8))
            with pytest.raises(ValueError, match="already exists"):
                service.create_stream(
                    "s", backend="exact", params=dict(window_size=8)
                )

    def test_invalid_stream_name_rejected(self):
        with StreamService() as service:
            for bad in ("", "a/b", "a-b", "a b"):
                with pytest.raises(ValueError, match="stream name"):
                    service.create_stream(
                        bad, backend="exact", params=dict(window_size=8)
                    )

    def test_spec_and_kwargs_are_exclusive(self):
        spec = StreamSpec(backend="exact", params=dict(window_size=8))
        with StreamService() as service:
            with pytest.raises(ValueError, match="not both"):
                service.create_stream("s", backend="exact", spec=spec)
            service.create_stream("s", spec=spec)
            assert service.spec("s").backend == "exact"

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="backpressure"):
            StreamSpec(backend="exact", backpressure="nope")
        with pytest.raises(ValueError, match="queue_capacity"):
            StreamSpec(backend="exact", queue_capacity=0)
        spec = StreamSpec(backend="exact", params=dict(window_size=8))
        assert StreamSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_drop_stream(self):
        with StreamService() as service:
            service.create_stream("s", backend="exact", params=dict(window_size=8))
            service.ingest("s", [1.0, 2.0])
            service.drop_stream("s")
            assert service.streams() == []
            with pytest.raises(UnknownStreamError):
                service.ingest("s", [3.0])

    def test_create_after_close_rejected(self):
        service = StreamService()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.create_stream("s", backend="exact", params=dict(window_size=8))
