"""Tests for repro.counting: sliding-window EH and CR-precis turnstile.

Four layers:

* the core structures honor their deterministic guarantees (DGIM
  eps-relative window counts -- including the eps=0.01/n=100 regime the
  exemplar implementations skip -- and the CRT overestimate bound under
  deletions);
* the signed-unit turnstile codec survives arbitrary batch splits;
* the :class:`~repro.runtime.maintainer.UpdateMaintainer` adapters keep
  exact state round-trips and honest stats accounting;
* the service tiers carry turnstile updates end to end (insert-only
  backends quarantine deletions as poison instead of corrupting state).
"""

from __future__ import annotations

import json
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting import (
    BasicCountingEH,
    CRPrecis,
    CRPrecisMaintainer,
    EHCountMaintainer,
    ExponentialHistogram,
    decode_updates,
    encode_update,
    encode_updates,
    first_primes,
)
from repro.runtime import UpdateMaintainer, make_maintainer
from repro.service import StreamService

from .conftest import BACKEND_PARAMS


# ---------------------------------------------------------------------------
# BasicCountingEH: DGIM invariants and the sharpened estimate
# ---------------------------------------------------------------------------


def exact_window_count(bits: list[int], window: int) -> int:
    return sum(bits[-window:])


class TestBasicCountingEH:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BasicCountingEH(0, 0.5)
        with pytest.raises(ValueError):
            BasicCountingEH(10, 0.0)
        with pytest.raises(ValueError):
            BasicCountingEH(10, 1.5)

    @pytest.mark.parametrize(
        "window,epsilon",
        [(100, 0.01), (100, 0.1), (64, 0.25), (16, 0.5), (1, 0.5), (1000, 0.05)],
    )
    def test_relative_error_bound_holds(self, window, epsilon):
        """The sharpened estimate keeps the eps-relative bound in every
        regime -- including eps=0.01, n=100, the case the exemplar
        implementation explicitly skips its own bound check for."""
        rng = np.random.default_rng(7)
        core = BasicCountingEH(window, epsilon)
        bits: list[int] = []
        worst = 0.0
        for now in range(1, 4001):
            bit = int(rng.random() < 0.6)
            bits.append(bit)
            if bit:
                core.add(now)
            if now % 37 == 0:
                exact = exact_window_count(bits, window)
                estimate = core.estimate(now)
                if exact:
                    worst = max(worst, abs(estimate - exact) / exact)
                else:
                    assert estimate == 0.0
        assert worst <= epsilon, worst

    def test_bucket_structure_invariants(self):
        core = BasicCountingEH(256, 0.1)
        for now in range(1, 2001):
            core.add(now)
            sizes = [size for size, _ in core.buckets]
            stamps = [stamp for _, stamp in core.buckets]
            assert all(size & (size - 1) == 0 for size in sizes)
            assert stamps == sorted(stamps)
            # Sizes are nonincreasing toward the new end; each class
            # holds at most max_per_class buckets.
            assert sizes == sorted(sizes, reverse=True)
            assert max(Counter(sizes).values()) <= core.max_per_class

    def test_space_is_logarithmic(self):
        core = BasicCountingEH(10_000, 0.1)
        for now in range(1, 50_001):
            core.add(now)
        # O((1/eps) log^2 n) buckets, not O(n).
        assert core.bucket_count() < 200

    def test_estimate_exact_while_oldest_bucket_is_unit(self):
        core = BasicCountingEH(64, 0.5)
        for now in range(1, 4):
            core.add(now)
            if core.buckets[0][0] == 1:
                assert core.estimate(now) == float(now)

    def test_expiry_empties_the_window(self):
        core = BasicCountingEH(8, 0.25)
        for now in range(1, 20):
            core.add(now)
        assert core.estimate(1000) == 0.0
        assert core.bucket_count(live_only=True, now=1000) == 0

    def test_queries_are_pure(self):
        core = BasicCountingEH(8, 0.25)
        for now in range(1, 50):
            core.add(now)
        before = [list(b) for b in core.buckets]
        core.estimate(49)
        core.error_bound(49)
        core.bucket_count(live_only=True, now=49)
        assert core.buckets == before

    def test_dict_roundtrip_is_exact(self):
        core = BasicCountingEH(32, 0.2)
        for now in range(1, 100):
            if now % 3:
                core.add(now)
        payload = json.loads(json.dumps(core.to_dict()))
        clone = BasicCountingEH.from_dict(payload)
        assert clone.buckets == core.buckets
        assert clone.k == core.k
        assert clone.max_per_class == core.max_per_class
        assert clone.estimate(99) == core.estimate(99)


# ---------------------------------------------------------------------------
# ExponentialHistogram: windowed count / sum / mean / variance
# ---------------------------------------------------------------------------


class TestExponentialHistogram:
    def test_rejects_negative_values(self):
        summary = ExponentialHistogram(16, 0.25)
        with pytest.raises(ValueError):
            summary.append(-1)

    def test_window_length_is_exact(self):
        summary = ExponentialHistogram(10, 0.5)
        assert summary.window_count() == 0
        for i in range(25):
            summary.append(i % 3)
            assert summary.window_count() == min(10, i + 1)

    def test_windowed_sums_meet_epsilon(self):
        window, epsilon = 64, 0.25
        rng = np.random.default_rng(11)
        summary = ExponentialHistogram(window, epsilon)
        values: list[int] = []
        for i in range(2000):
            value = int(rng.integers(0, 100))
            summary.append(value)
            values.append(value)
            if i % 53 == 0 and i > 0:
                tail = np.asarray(values[-window:])
                exact_sum = float(tail.sum())
                exact_nonzero = float((tail != 0).sum())
                if exact_sum:
                    rel = abs(summary.window_sum() - exact_sum) / exact_sum
                    assert rel <= epsilon
                if exact_nonzero:
                    rel = abs(summary.nonzero_count() - exact_nonzero)
                    assert rel / exact_nonzero <= epsilon

    def test_mean_and_variance_bounds(self):
        window, epsilon = 64, 0.25
        rng = np.random.default_rng(3)
        summary = ExponentialHistogram(window, epsilon)
        values: list[int] = []
        for _ in range(500):
            value = int(rng.integers(0, 50))
            summary.append(value)
            values.append(value)
        tail = np.asarray(values[-window:], dtype=np.float64)
        exact_mean = float(tail.mean())
        exact_m2 = float((tail * tail).sum())
        length = len(tail)
        assert abs(summary.window_mean() - exact_mean) <= epsilon * exact_mean
        variance_allowance = (
            epsilon * exact_m2 / length
            + (2 * epsilon + epsilon**2) * exact_mean**2
        )
        assert (
            abs(summary.window_variance() - float(tail.var()))
            <= variance_allowance
        )

    def test_expiry_drains_to_zero(self):
        summary = ExponentialHistogram(8, 0.25)
        for _ in range(40):
            summary.append(7)
        for _ in range(8):
            summary.append(0)
        assert summary.nonzero_count() == 0.0
        assert summary.window_sum() == 0.0
        assert summary.window_mean() == 0.0
        assert summary.window_variance() == 0.0

    def test_sum_error_bound_is_honest(self):
        window, epsilon = 32, 0.25
        summary = ExponentialHistogram(window, epsilon)
        values: list[int] = []
        rng = np.random.default_rng(5)
        for _ in range(300):
            value = int(rng.integers(0, 40))
            summary.append(value)
            values.append(value)
        exact = float(np.asarray(values[-window:]).sum())
        assert abs(summary.window_sum() - exact) <= summary.sum_error_bound()

    def test_restore_at_huge_arrival_index_continues_exactly(self):
        """Arrival indices are plain Python ints: a summary restored at
        arrival 10**12 behaves exactly like its donor -- no timestamp
        wrap, no recycling (the exemplar's open TODO)."""
        donor = ExponentialHistogram(16, 0.25)
        donor.arrivals = 10**12
        twin_payload = json.loads(json.dumps(donor.to_dict()))
        restored = ExponentialHistogram.from_dict(twin_payload)
        stream = np.asarray([3, 0, 9, 5, 0, 2, 8, 1] * 4, dtype=np.int64)
        donor.extend(stream)
        restored.extend(stream)
        assert donor.to_dict() == restored.to_dict()
        assert donor.arrivals == 10**12 + stream.size
        exact = float(stream[-16:].sum())
        assert abs(donor.window_sum() - exact) <= 0.25 * exact

    def test_dict_roundtrip_is_exact(self):
        summary = ExponentialHistogram(32, 0.2)
        rng = np.random.default_rng(9)
        summary.extend(rng.integers(0, 60, 500).astype(np.int64))
        payload = json.loads(json.dumps(summary.to_dict()))
        clone = ExponentialHistogram.from_dict(payload)
        assert clone.to_dict() == summary.to_dict()
        assert clone.window_sum() == summary.window_sum()
        assert clone.bucket_cells() == summary.bucket_cells()


# ---------------------------------------------------------------------------
# CR-precis
# ---------------------------------------------------------------------------


class TestFirstPrimes:
    def test_known_prefixes(self):
        assert first_primes(2, 5) == [2, 3, 5, 7, 11]
        assert first_primes(23, 5) == [23, 29, 31, 37, 41]
        assert first_primes(24, 2) == [29, 31]

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            first_primes(2, 0)


class TestCRPrecis:
    PARAMS = dict(rows=5, base=23, domain=131072)

    def _turnstile_stream(self, seed, updates):
        rng = np.random.default_rng(seed)
        live: Counter = Counter()
        ops = []
        for _ in range(updates):
            if live and rng.random() < 0.4:
                keys = sorted(live)
                key = keys[int(rng.integers(len(keys)))]
                ops.append((key, -1))
                live[key] -= 1
                if not live[key]:
                    del live[key]
            else:
                key = int(min(rng.zipf(1.4), self.PARAMS["domain"] - 1))
                ops.append((key, 1))
                live[key] += 1
        return ops, live

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CRPrecis(0, 23, 100)
        with pytest.raises(ValueError):
            CRPrecis(3, 1, 100)
        with pytest.raises(ValueError):
            CRPrecis(3, 23, 1)

    def test_point_queries_bracket_truth_under_deletions(self):
        table = CRPrecis(**self.PARAMS)
        ops, live = self._turnstile_stream(2, 3000)
        for key, delta in ops:
            table.update(key, delta)
        assert table.l1() == sum(live.values())
        bound = table.overestimate_bound()
        for key in list(live)[:50] + [99_999]:
            truth = live.get(key, 0)
            served = table.point_query(key)
            assert served >= truth  # never underestimates
            assert served - truth <= bound

    def test_error_exponent_matches_crt_definition(self):
        table = CRPrecis(**self.PARAMS)
        # 23^3 = 12167 <= 131071 < 23^4: two keys collide in <= 3 rows.
        assert table.error_exponent() == 3

    def test_heavy_hitters_have_no_false_negatives(self):
        table = CRPrecis(rows=5, base=23, domain=4096)
        truth = Counter({7: 500, 900: 300, 4000: 150})
        for key, count in truth.items():
            table.update(key, count)
        for key in range(0, 4096, 37):
            if key not in truth:
                table.update(key, 1)
        phi = 0.05
        hot = table.heavy_hitters(phi)
        threshold = phi * table.l1()
        for key, count in truth.items():
            if count >= threshold:
                assert key in hot
                assert hot[key] >= count

    def test_range_count_overestimates_within_bound(self):
        table = CRPrecis(rows=5, base=23, domain=4096)
        truth = Counter()
        rng = np.random.default_rng(4)
        for _ in range(800):
            key = int(rng.integers(100, 200))
            table.update(key, 1)
            truth[key] += 1
        exact = sum(truth[k] for k in range(120, 181))
        served = table.range_count(120, 180)
        per_key = table.overestimate_bound()
        assert exact <= served <= exact + 61 * per_key

    def test_update_validates_before_mutating(self):
        table = CRPrecis(rows=3, base=5, domain=64)
        with pytest.raises(ValueError):
            table.update(64, 1)
        with pytest.raises(ValueError):
            table.update(-1, 1)
        assert table.l1() == 0
        assert all(int(row.sum()) == 0 for row in table.tables)

    def test_apply_matches_update_loop(self):
        bulk = CRPrecis(rows=4, base=11, domain=1024)
        slow = CRPrecis(rows=4, base=11, domain=1024)
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 1024, 500).astype(np.int64)
        deltas = np.where(rng.random(500) < 0.3, -1, 1).astype(np.int64)
        # Keep it a strict turnstile: flip early deletions to inserts.
        running: Counter = Counter()
        for i in range(keys.size):
            if deltas[i] < 0 and running[int(keys[i])] <= 0:
                deltas[i] = 1
            running[int(keys[i])] += int(deltas[i])
        bulk.apply(keys, deltas)
        for key, delta in zip(keys.tolist(), deltas.tolist()):
            slow.update(key, delta)
        assert all(
            np.array_equal(a, b) for a, b in zip(bulk.tables, slow.tables)
        )
        assert bulk.updates == slow.updates == 500

    def test_table_cells_is_sum_of_moduli(self):
        table = CRPrecis(**self.PARAMS)
        assert table.table_cells() == sum(table.primes) == 23 + 29 + 31 + 37 + 41

    def test_dict_roundtrip_is_exact(self):
        table = CRPrecis(rows=3, base=7, domain=512)
        for key in (3, 200, 511, 3):
            table.update(key, 2)
        table.update(3, -1)
        payload = json.loads(json.dumps(table.to_dict()))
        clone = CRPrecis.from_dict(payload)
        assert clone.to_dict() == table.to_dict()
        assert clone.point_query(3) == table.point_query(3)

    def test_roundtrip_rejects_mismatched_rows(self):
        table = CRPrecis(rows=3, base=7, domain=512)
        payload = table.to_dict()
        payload["tables"][0] = payload["tables"][0][:-1]
        with pytest.raises(ValueError):
            CRPrecis.from_dict(payload)


# ---------------------------------------------------------------------------
# Signed-unit turnstile codec
# ---------------------------------------------------------------------------


class TestTurnstileCodec:
    def test_single_update_roundtrip(self):
        batch = encode_update(5, 3)
        assert batch.tolist() == [5.0, 5.0, 5.0]
        keys, deltas = decode_updates(batch)
        assert keys.tolist() == [5, 5, 5]
        assert deltas.tolist() == [1, 1, 1]

    def test_deletion_encoding_keeps_key_zero_distinct(self):
        keys, deltas = decode_updates(encode_update(0, -2))
        assert keys.tolist() == [0, 0]
        assert deltas.tolist() == [-1, -1]

    def test_zero_delta_is_empty(self):
        assert encode_update(9, 0).size == 0
        assert encode_updates([]).size == 0

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            encode_update(-1, 1)

    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=-4, max_value=4),
            ),
            max_size=30,
        ),
        split=st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=50, deadline=None)
    def test_batches_split_safely(self, updates, split):
        """Any split of an encoded batch decodes to the same multiset of
        unit updates -- the property that lets turnstile traffic ride
        queues, snapshots, and shard frames that re-chunk freely."""
        batch = encode_updates(updates)
        split = min(split, batch.size)
        whole = Counter(
            zip(*(arr.tolist() for arr in decode_updates(batch)))
        )
        first = decode_updates(batch[:split])
        second = decode_updates(batch[split:])
        rejoined = Counter(zip(*(arr.tolist() for arr in first)))
        rejoined.update(Counter(zip(*(arr.tolist() for arr in second))))
        assert rejoined == whole
        net = Counter()
        for key, delta in updates:
            net[key] += delta
        decoded_net = Counter()
        for (key, delta), count in whole.items():
            decoded_net[key] += delta * count
        assert {k: v for k, v in net.items() if v} == {
            k: v for k, v in decoded_net.items() if v
        }


# ---------------------------------------------------------------------------
# UpdateMaintainer adapters
# ---------------------------------------------------------------------------


class TestEHCountMaintainer:
    def test_registered_and_typed(self):
        maintainer = make_maintainer("eh_count", **BACKEND_PARAMS["eh_count"])
        assert isinstance(maintainer, UpdateMaintainer)
        assert isinstance(maintainer.synopsis(), ExponentialHistogram)

    def test_update_is_repeated_arrival(self):
        via_update = EHCountMaintainer(window=16, epsilon=0.25)
        via_extend = EHCountMaintainer(window=16, epsilon=0.25)
        via_update.update(7, 5)
        via_extend.extend(np.full(5, 7.0))
        assert (
            via_update.state_dict()["backend"]
            == via_extend.state_dict()["backend"]
        )
        assert via_update.stats().points == via_extend.stats().points == 5

    def test_update_rejects_deletions_and_negative_keys(self):
        maintainer = EHCountMaintainer(window=16, epsilon=0.25)
        with pytest.raises(ValueError, match="insert-only"):
            maintainer.update(3, -1)
        with pytest.raises(ValueError):
            maintainer.update(-3, 1)
        assert maintainer.stats().points == 0
        assert maintainer.synopsis().arrivals == 0

    def test_extend_rejects_negative_and_nonfinite(self):
        maintainer = EHCountMaintainer(window=16, epsilon=0.25)
        with pytest.raises(ValueError, match="cr_precis"):
            maintainer.extend(np.asarray([1.0, -2.0]))
        with pytest.raises(ValueError):
            maintainer.extend(np.asarray([np.nan]))
        assert maintainer.synopsis().arrivals == 0

    def test_zero_delta_update_is_a_noop(self):
        maintainer = EHCountMaintainer(window=16, epsilon=0.25)
        maintainer.update(4, 0)
        assert maintainer.stats().points == 0
        assert maintainer.stats().batches == 0

    def test_state_roundtrip_through_json(self):
        maintainer = EHCountMaintainer(window=32, epsilon=0.25)
        rng = np.random.default_rng(8)
        maintainer.extend(rng.integers(0, 50, 300).astype(float))
        payload = json.loads(json.dumps(maintainer.state_dict()))
        clone = EHCountMaintainer(window=32, epsilon=0.25)
        clone.load_state_dict(payload)
        tail = rng.integers(0, 50, 50).astype(float)
        maintainer.extend(tail)
        clone.extend(tail)
        assert (
            clone.state_dict()["backend"] == maintainer.state_dict()["backend"]
        )
        assert clone.stats().counters() == maintainer.stats().counters()


class TestCRPrecisMaintainer:
    def test_registered_and_typed(self):
        maintainer = make_maintainer("cr_precis", **BACKEND_PARAMS["cr_precis"])
        assert isinstance(maintainer, UpdateMaintainer)
        assert isinstance(maintainer.synopsis(), CRPrecis)

    def test_update_matches_encoded_extend(self):
        via_update = CRPrecisMaintainer(rows=4, base=11, domain=1024)
        via_extend = CRPrecisMaintainer(rows=4, base=11, domain=1024)
        updates = [(5, 3), (900, 2), (5, -1), (0, 4), (0, -2)]
        for key, delta in updates:
            via_update.update(key, delta)
        via_extend.extend(encode_updates(updates))
        assert (
            via_update.state_dict()["backend"]
            == via_extend.state_dict()["backend"]
        )
        # points counts unit updates on both channels: sum(|delta|) = 12.
        assert via_update.stats().points == via_extend.stats().points == 12

    def test_stats_count_deletions_as_work(self):
        maintainer = CRPrecisMaintainer(rows=4, base=11, domain=1024)
        maintainer.update(3, 5)
        maintainer.update(3, -5)
        assert maintainer.stats().points == 10
        assert maintainer.synopsis().l1() == 0

    def test_extend_validates_domain_before_mutating(self):
        maintainer = CRPrecisMaintainer(rows=3, base=5, domain=64)
        with pytest.raises(ValueError, match="outside turnstile domain"):
            maintainer.extend(np.asarray([3.0, 64.0]))
        assert maintainer.synopsis().l1() == 0
        assert maintainer.stats().points == 0

    def test_state_roundtrip_through_json(self):
        maintainer = CRPrecisMaintainer(rows=4, base=11, domain=1024)
        maintainer.extend(encode_updates([(5, 3), (17, 2), (5, -2)]))
        payload = json.loads(json.dumps(maintainer.state_dict()))
        clone = CRPrecisMaintainer(rows=4, base=11, domain=1024)
        clone.load_state_dict(payload)
        assert clone.state_dict() == maintainer.state_dict()
        assert clone.stats().counters() == maintainer.stats().counters()
        assert clone.synopsis().point_query(5) == 1


# ---------------------------------------------------------------------------
# Registry error paths
# ---------------------------------------------------------------------------


class TestRegistryErrorPaths:
    def test_duplicate_registration_is_an_error(self):
        from repro.runtime.registry import register_maintainer

        with pytest.raises(ValueError, match="already registered"):
            register_maintainer("eh_count", lambda **kw: None)

    def test_unknown_name_lists_new_backends(self):
        with pytest.raises(KeyError) as excinfo:
            make_maintainer("eh_coutn")
        message = str(excinfo.value)
        assert "eh_count" in message
        assert "cr_precis" in message

    def test_invalid_name_rejected(self):
        from repro.runtime.registry import register_maintainer

        with pytest.raises(ValueError, match="invalid maintainer name"):
            register_maintainer("bad name!", lambda **kw: None)


# ---------------------------------------------------------------------------
# Service tiers carry turnstile updates
# ---------------------------------------------------------------------------


class TestServiceUpdateVerbs:
    def test_cr_precis_point_query_after_service_updates(self):
        with StreamService() as service:
            service.create_stream(
                "freq", backend="cr_precis", params=BACKEND_PARAMS["cr_precis"]
            )
            assert service.update("freq", 42, 5) == 5
            assert service.update("freq", 42, -2) == 2
            assert service.update_many("freq", [(7, 3), (42, 1)]) == 4
            assert service.update("freq", 9, 0) == 0
            service.flush("freq")
            synopsis = service.synopsis("freq")
            assert synopsis.point_query(42) == 4
            assert synopsis.point_query(7) == 3
            assert synopsis.l1() == 7

    def test_eh_count_accepts_inserts_quarantines_deletions(self):
        with StreamService() as service:
            service.create_stream(
                "win", backend="eh_count", params=BACKEND_PARAMS["eh_count"]
            )
            service.update("win", 5, 3)
            service.flush("win")
            assert service.synopsis("win").arrivals == 3
            # A deletion rides the same channel but the insert-only
            # backend rejects it; the poison policy quarantines the
            # batch instead of corrupting the synopsis.
            service.update("win", 5, -2)
            service.flush("win")
            assert service.synopsis("win").arrivals == 3
            # Each of the |delta| = 2 encoded unit points is quarantined
            # individually.
            letters = service.dead_letters("win")
            assert len(letters) == 2
            assert all(record.value == -6.0 for record in letters)

    def test_accuracy_monitor_auto_resolves_window_count(self):
        from repro.obs import AccuracyMonitor

        params = BACKEND_PARAMS["eh_count"]
        maintainer = make_maintainer("eh_count", **params)
        monitor = AccuracyMonitor(
            params["epsilon"], window_size=params["window"], check_every=1
        )
        rng = np.random.default_rng(13)
        chunk = rng.integers(0, 80, 256).astype(float)
        maintainer.extend(chunk)
        monitor.extend(chunk)
        report = monitor.check(chunk.size, maintainer.synopsis())
        assert report.mode == "window_count"
        assert report.within_bound, report.observed_epsilon

    def test_accuracy_monitor_window_count_covers_cr_precis(self):
        from repro.obs import AccuracyMonitor

        maintainer = make_maintainer("cr_precis", **BACKEND_PARAMS["cr_precis"])
        monitor = AccuracyMonitor(1.0, window_size=256, check_every=1)
        batch = encode_updates([(5, 40), (9, 20), (5, -10)])
        maintainer.extend(batch)
        monitor.extend(batch)
        report = monitor.check(batch.size, maintainer.synopsis())
        assert report.mode == "window_count"
        # Overestimate mass is normalized by l1, so it cannot exceed
        # e/t = 3/5 here -- well within epsilon = 1.
        assert report.within_bound

    def test_sharded_tier_carries_updates(self):
        from repro.shard import ShardRouter

        with ShardRouter(num_shards=2) as router:
            router.create_stream(
                "freq", backend="cr_precis", params=BACKEND_PARAMS["cr_precis"]
            )
            assert router.update("freq", 100, 4) == 4
            assert router.update_many("freq", [(100, -1), (2000, 2)]) == 3
            router.flush("freq")
            rendered = router.histogram("freq")
            assert rendered["kind"] == "CRPrecis"
            # l1 is exact: 4 inserts - 1 delete + 2 inserts = 5.
            assert sum(rendered["tables"][0]) == 5
