"""Numeric examples from the paper, traced against this implementation.

Each test reproduces a worked example from the paper's text, so a reader
can line the code up against the prose.  Indices in the paper are
1-based; this library is 0-based, and each test notes the mapping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FixedWindowHistogramBuilder, optimal_error, optimal_histogram
from repro.core.prefix import PrefixSums


class TestSection42Decomposition:
    """Section 4.2: any sequence is a sum of a non-increasing and a
    non-decreasing function, so exact minimization cannot be sped up by
    monotonicity alone.  The paper works the sequence 3,7,5,8,2,6,4."""

    SEQUENCE = [3.0, 7.0, 5.0, 8.0, 2.0, 6.0, 4.0]

    @staticmethod
    def _decompose(values):
        total = sum(values)
        f = [total - sum(values[: i]) for i in range(len(values))]
        g = [sum(values[: i + 1]) for i in range(len(values))]
        return f, g

    def test_paper_f_and_g(self):
        f, g = self._decompose(self.SEQUENCE)
        assert f == [35.0, 32.0, 25.0, 20.0, 12.0, 10.0, 4.0]
        assert g == [3.0, 10.0, 15.0, 23.0, 25.0, 31.0, 35.0]

    def test_sum_is_shifted_sequence(self):
        f, g = self._decompose(self.SEQUENCE)
        sums = [a + b for a, b in zip(f, g)]
        assert sums == [38.0, 42.0, 40.0, 43.0, 37.0, 41.0, 39.0]
        # The shift is the sequence total (35): minima coincide.
        assert sums.index(min(sums)) == self.SEQUENCE.index(min(self.SEQUENCE))

    def test_monotonicity_as_claimed(self):
        f, g = self._decompose(self.SEQUENCE)
        assert all(a >= b for a, b in zip(f, f[1:]))  # non-increasing
        assert all(a <= b for a, b in zip(g, g[1:]))  # non-decreasing

    def test_shift_does_not_preserve_ratio(self):
        """Paper: '38 is closer to 37 than 3 is to 2 in terms of ratio'."""
        assert 38 / 37 < 3 / 2


class TestSection45Example1:
    """Section 4.5, Example 1: stream 100,0,0,0,1,1,1,1 with delta = 1 and
    B = 2 (we pass epsilon = 4 so that delta = eps / 2B = 1)."""

    BEFORE = [100.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]

    def _builder(self) -> FixedWindowHistogramBuilder:
        builder = FixedWindowHistogramBuilder(8, 2, epsilon=4.0)
        builder.extend(self.BEFORE)
        return builder

    def test_initial_interval_cover(self):
        """Paper: CreateList[1,8,1] computes the intervals (1,1),(2,8)."""
        builder = self._builder()
        # 1-based (1,1),(2,8) -> 0-based (0,0),(1,7).
        assert builder.interval_cover(1) == [(0, 0), (1, 7)]

    def test_cover_after_slide(self):
        """Paper: after 100 drops and 1 enters, the intervals become
        (1,3),(4,6),(7,8) and the optimal partition (1,3),(4,8) is found."""
        builder = self._builder()
        builder.append(1.0)  # data is now 0,0,0,1,1,1,1,1
        # 1-based (1,3),(4,6),(7,8) -> 0-based (0,2),(3,5),(6,7).
        assert builder.interval_cover(1) == [(0, 2), (3, 5), (6, 7)]
        # "the binary search has now detected the transition at position 3".
        histogram = builder.histogram()
        assert histogram.boundaries() == [2]
        assert histogram.sse(builder.window_values()) == pytest.approx(0.0)

    def test_herror_values_from_the_prose(self):
        """Paper: HERROR[4,1] = 0.75 and HERROR[6,1] = 1.5 after the slide."""
        window = np.asarray([0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        prefix = PrefixSums(window)
        assert prefix.sqerror(0, 3) == pytest.approx(0.75)   # 1-based [1,4]
        assert prefix.sqerror(0, 5) == pytest.approx(1.5)    # 1-based [1,6]

    def test_interval_growth_rule_holds(self):
        """Every cover interval (a, b) satisfies the (1 + delta) rule."""
        builder = self._builder()
        builder.append(1.0)
        window = builder.window_values()
        prefix = PrefixSums(window)
        for start, end in builder.interval_cover(1):
            assert prefix.sqerror(0, end) <= 2.0 * prefix.sqerror(0, start) + 1e-9


class TestSection41BasicObservation:
    """Section 4.1: if the last bucket of the optimal B-histogram covers
    [i+1, n], the rest must be an optimal (B-1)-histogram of [1, i]."""

    def test_suffix_optimality(self):
        rng = np.random.default_rng(41)
        values = rng.integers(0, 30, size=24).astype(float)
        histogram = optimal_histogram(values, 4)
        last = histogram.buckets[-1]
        head = values[: last.start]
        head_histogram = optimal_histogram(head, 3)
        expected = head_histogram.sse(head) + PrefixSums(values).sqerror(
            last.start, last.end
        )
        assert histogram.sse(values) == pytest.approx(expected, abs=1e-6)


class TestFootnote7Constant:
    """Section 4.5's interval-count analysis notes "the hidden constant is
    about 3": measured covers stay within a small constant of
    (1/delta) * ln(HERROR)."""

    def test_interval_count_near_analytic_form(self, utilization_1k):
        builder = FixedWindowHistogramBuilder(512, 4, 0.5)
        builder.extend(utilization_1k[:512])
        counts = builder.interval_counts()
        delta = builder.delta
        herror = max(builder.herror_estimate, 2.0)
        analytic = np.log(herror) / delta + 1
        for count in counts:
            assert count <= 3 * analytic
