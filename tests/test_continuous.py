"""Tests for continuous queries and alerts (repro.query.continuous)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.continuous import Alert, ContinuousQueryEngine, StandingQuery


def _engine(window: int = 32, **kwargs) -> ContinuousQueryEngine:
    return ContinuousQueryEngine(window, num_buckets=4, epsilon=0.25, **kwargs)


class TestStandingQuery:
    def test_validates_range(self):
        with pytest.raises(ValueError):
            StandingQuery("bad", 5, 2)
        with pytest.raises(ValueError):
            StandingQuery("bad", 0, 3, aggregate="median")

    def test_breaches_above_and_below(self):
        above = StandingQuery("hi", 0, 3, threshold=10.0, above=True)
        assert above.breaches(11.0)
        assert not above.breaches(10.0)
        below = StandingQuery("lo", 0, 3, threshold=10.0, above=False)
        assert below.breaches(9.0)
        assert not below.breaches(10.0)

    def test_no_threshold_never_breaches(self):
        query = StandingQuery("plain", 0, 3)
        assert not query.breaches(1e12)


class TestRegistration:
    def test_duplicate_names_rejected(self):
        engine = _engine()
        engine.register(StandingQuery("q", 0, 7))
        with pytest.raises(ValueError):
            engine.register(StandingQuery("q", 0, 3))

    def test_range_must_fit_window(self):
        engine = _engine(window=16)
        with pytest.raises(ValueError):
            engine.register(StandingQuery("big", 0, 16))

    def test_deregister(self):
        engine = _engine()
        engine.register(StandingQuery("q", 0, 7))
        engine.deregister("q")
        assert engine.query_names == []
        with pytest.raises(KeyError):
            engine.deregister("q")
        with pytest.raises(KeyError):
            engine.answers("q")
        with pytest.raises(KeyError):
            engine.last_answer("q")

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            _engine(check_every=0)
        with pytest.raises(ValueError):
            _engine(keep_history=-1)


class TestEvaluation:
    def test_no_answers_before_window_full(self):
        engine = _engine(window=16)
        engine.register(StandingQuery("q", 0, 15))
        for value in range(10):
            assert engine.update(float(value)) == []
        assert engine.last_answer("q") is None

    def test_answers_track_window_sum(self):
        engine = _engine(window=8)
        engine.register(StandingQuery("total", 0, 7))
        stream = np.arange(1.0, 25.0)
        for value in stream:
            engine.update(float(value))
        # Synopsis whole-window sums are exact (mean representatives).
        expected = float(stream[-8:].sum())
        assert engine.last_answer("total") == pytest.approx(expected)

    def test_average_aggregate(self):
        engine = _engine(window=8)
        engine.register(StandingQuery("mean", 0, 7, aggregate="avg"))
        for value in [4.0] * 20:
            engine.update(value)
        assert engine.last_answer("mean") == pytest.approx(4.0)

    def test_history_bounded(self):
        engine = _engine(window=4, keep_history=5)
        engine.register(StandingQuery("q", 0, 3))
        for value in range(50):
            engine.update(float(value))
        assert len(engine.answers("q")) == 5

    def test_check_cadence(self):
        engine = _engine(window=4, check_every=8)
        engine.register(StandingQuery("q", 0, 3))
        for value in range(33):
            engine.update(float(value))
        positions = [position for position, _ in engine.answers("q")]
        assert positions == [8, 16, 24, 32]


class TestAlerts:
    def test_edge_triggered(self):
        engine = _engine(window=4)
        engine.register(StandingQuery("hot", 0, 3, threshold=100.0))
        # Quiet, then a sustained burst: exactly one alert on the edge.
        stream = [1.0] * 16 + [200.0] * 16
        alerts = engine.run(stream)
        assert len(alerts) == 1
        alert = alerts[0]
        assert isinstance(alert, Alert)
        assert alert.query_name == "hot"
        assert alert.answer > alert.threshold

    def test_realerts_after_recovery(self):
        engine = _engine(window=4)
        engine.register(StandingQuery("hot", 0, 3, threshold=100.0))
        stream = [1.0] * 12 + [200.0] * 12 + [1.0] * 12 + [200.0] * 12
        alerts = engine.run(stream)
        assert len(alerts) == 2

    def test_below_threshold_alert(self):
        engine = _engine(window=4)
        engine.register(
            StandingQuery("cold", 0, 3, aggregate="avg", threshold=10.0, above=False)
        )
        stream = [50.0] * 10 + [1.0] * 10
        alerts = engine.run(stream)
        assert len(alerts) == 1

    def test_callback_invoked(self):
        seen = []
        engine = _engine(window=4, on_alert=seen.append)
        engine.register(StandingQuery("hot", 0, 3, threshold=50.0))
        engine.run([1.0] * 8 + [100.0] * 8)
        assert len(seen) == 1
        assert seen[0] is engine.alerts[0]

    def test_multiple_queries_independent(self):
        engine = _engine(window=8)
        engine.register(StandingQuery("recent", 4, 7, threshold=400.0))
        engine.register(StandingQuery("whole", 0, 7, threshold=10_000.0))
        engine.run([1.0] * 16 + [150.0] * 16)
        names = [alert.query_name for alert in engine.alerts]
        assert "recent" in names
        assert "whole" not in names


class TestMigrationFaithful:
    """The engine's pipeline-driven loop must reproduce the hand-rolled
    per-point loop it replaced: same checkpoint positions, same answers,
    same edge-triggered alerts."""

    def test_alerts_match_reference_loop(self):
        from repro.core.fixed_window import FixedWindowHistogramBuilder
        from repro.query.queries import RangeQuery

        window, check_every = 24, 5
        rng = np.random.default_rng(17)
        stream = np.concatenate([
            rng.uniform(10.0, 20.0, 60),
            rng.uniform(80.0, 90.0, 40),
            rng.uniform(10.0, 20.0, 47),
        ])
        queries = [
            StandingQuery("hot", 0, 23, threshold=24 * 50.0),
            StandingQuery("head", 0, 7, aggregate="avg", threshold=40.0),
            StandingQuery("cool", 8, 15, threshold=8 * 45.0, above=False),
        ]

        # Hand-rolled reference: append per point, evaluate at checkpoints.
        builder = FixedWindowHistogramBuilder(window, 4, 0.25)
        breached = {q.name: False for q in queries}
        expected = []
        for position, value in enumerate(stream, start=1):
            builder.append(float(value))
            if position < window or position % check_every != 0:
                continue
            histogram = builder.histogram()
            for query in queries:
                answer = RangeQuery(query.start, query.end, query.aggregate).answer(
                    histogram
                )
                now = query.breaches(answer)
                if now and not breached[query.name]:
                    expected.append((query.name, position, answer))
                breached[query.name] = now

        engine = ContinuousQueryEngine(
            window, num_buckets=4, epsilon=0.25, check_every=check_every
        )
        for query in queries:
            engine.register(query)
        alerts = engine.run(stream)
        assert [(a.query_name, a.position, a.answer) for a in alerts] == expected

    def test_run_equals_per_point_updates(self):
        rng = np.random.default_rng(23)
        stream = rng.uniform(0.0, 100.0, 200)
        query = StandingQuery("q", 0, 15, threshold=800.0)

        batched = ContinuousQueryEngine(16, num_buckets=4, epsilon=0.5,
                                        check_every=3)
        batched.register(query)
        batched.run(stream)

        stepped = ContinuousQueryEngine(16, num_buckets=4, epsilon=0.5,
                                        check_every=3)
        stepped.register(query)
        fired = []
        for value in stream:
            fired.extend(stepped.update(value))
        assert fired == stepped.alerts == batched.alerts
        assert stepped.answers("q") == batched.answers("q")
