"""The observability layer and the telemetry races it fixes.

Four groups of coverage:

* Substrate semantics -- :class:`~repro.obs.metrics.MetricsRegistry`
  handle caching and kind checking, the exporter round-trips
  (Prometheus text and JSONL), tracer spans, and the accuracy monitor's
  observed-epsilon-within-bound guarantee on the fixed-window backend.
* The enqueue-latency race (regression): the old ``WorkerCounters``
  ring was a bare deque read with ``list()`` twice per ``to_dict`` --
  concurrent producers could make p50 and p99 describe two different
  latency populations.  The registry-backed counters must hold the
  single-snapshot invariant (p50 <= p99, always) under a writer that
  flips the whole reservoir between two values.
* The premature ``degraded -> healthy`` promotion (regression): the
  supervisor used to promote on ``queue_depth == 0`` alone, but the
  worker pops a batch *before* feeding it, so the final replay batch
  can be mid-ingest -- and the served view still the dead worker's
  stale adoption -- behind an empty queue.  A gated maintainer holds a
  replacement worker exactly in that window and the stream must stay
  ``degraded`` until the batch lands.
* Service-level exposure: ``StreamService.metrics()`` covers every
  hosted stream across all eight registry backends while readers and
  producers run concurrently, and the Prometheus rendering parses.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.obs import (
    AccuracyMonitor,
    HistogramMetric,
    MetricsRegistry,
    PipelineObserver,
    Tracer,
    parse_prometheus_text,
    to_jsonl,
    to_prometheus_text,
    write_jsonl,
)
from repro.runtime import make_maintainer
from repro.runtime.maintainer import Maintainer
from repro.runtime.pipeline import StreamPipeline
from repro.runtime.registry import available_maintainers, register_maintainer
from repro.service import RestartPolicy, StreamService, UnknownStreamError
from repro.service.stream_worker import StreamWorker, WorkerCounters

from .conftest import BACKEND_PARAMS as BACKEND_KWARGS

FAST_RESTARTS = RestartPolicy(
    max_restarts=3, backoff_initial=0.01, backoff_factor=2.0, backoff_max=0.05
)


def integer_stream(n, seed=0):
    """Values every backend accepts (incl. the dynamic wavelet's domain)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 64, size=n).astype(np.float64)


def wait_for_state(service, name, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    seen = None
    while time.monotonic() < deadline:
        seen = service.health(name)["state"]
        if seen == state:
            return seen
        time.sleep(0.005)
    return seen


# ----------------------------------------------------------------------
# Metrics substrate
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_handles_are_cached_per_name_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", stream="a")
        assert registry.counter("repro_test_total", stream="a") is counter
        other = registry.counter("repro_test_total", stream="b")
        assert other is not counter
        counter.inc(3)
        assert counter.value == 3
        assert other.value == 0

    def test_kind_mismatch_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", stream="a")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_test_total", stream="a")

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "0starts_with_digit", "has space", "has-dash"):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad)

    def test_counter_only_goes_up(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)
        assert counter.value == 0

    def test_gauge_set_max_is_a_high_watermark(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5.0
        gauge.set(1)
        assert gauge.value == 1.0

    def test_histogram_reservoir_is_bounded_but_count_is_not(self):
        histogram = MetricsRegistry().histogram("repro_lat", reservoir=8)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.sum == sum(range(100))
        recent = histogram.snapshot()
        assert recent == [float(v) for v in range(92, 100)]

    def test_quantiles_come_from_one_snapshot(self):
        histogram = MetricsRegistry().histogram("repro_lat")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        marks = histogram.quantiles((0.0, 0.5, 1.0))
        assert marks[0.0] == 1.0
        assert marks[1.0] == 4.0
        assert marks[0.0] <= marks[0.5] <= marks[1.0]
        assert MetricsRegistry().histogram("repro_lat").quantile(0.5) == 0.0

    def test_collect_labeled_filters_on_every_pair(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", stream="x").inc()
        registry.counter("repro_a_total", stream="y").inc(2)
        registry.gauge("repro_b", stream="x", stage="ingest").set(7)
        samples = registry.collect_labeled(stream="x")
        assert {s["name"] for s in samples} == {"repro_a_total", "repro_b"}
        assert all(s["labels"]["stream"] == "x" for s in samples)
        assert registry.collect_labeled(stream="z") == []


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_points_total", stream="cpu").inc(42)
        registry.gauge("repro_depth", stream='we"ird\\nm').set(3.5)
        histogram = registry.histogram("repro_lat_seconds", stream="cpu")
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        return registry

    def test_prometheus_text_round_trips(self):
        registry = self._populated()
        samples = parse_prometheus_text(to_prometheus_text(registry))
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample["name"], []).append(sample)
        assert by_name["repro_points_total"][0]["value"] == 42.0
        assert by_name["repro_points_total"][0]["labels"] == {"stream": "cpu"}
        # Escaped label values survive the round trip.
        assert by_name["repro_depth"][0]["value"] == 3.5
        # Histograms render as summaries: quantile series + count + sum.
        quantiles = {
            s["labels"]["quantile"]: s["value"]
            for s in by_name["repro_lat_seconds"]
        }
        assert set(quantiles) == {"0.5", "0.9", "0.99"}
        assert quantiles["0.5"] == pytest.approx(0.2)
        assert by_name["repro_lat_seconds_count"][0]["value"] == 3.0
        assert by_name["repro_lat_seconds_sum"][0]["value"] == pytest.approx(0.6)

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("this is not a metric line\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("repro_ok_total notanumber\n")
        # Comments and blank lines are fine.
        assert parse_prometheus_text("# HELP x y\n\n") == []

    def test_jsonl_is_one_sample_per_line(self):
        registry = self._populated()
        lines = to_jsonl(registry).splitlines()
        assert len(lines) == len(registry.collect())
        for line in lines:
            sample = json.loads(line)
            assert "exported_at" in sample
            assert sample["name"].startswith("repro_")
        assert to_jsonl(MetricsRegistry()) == ""

    def test_write_jsonl_appends(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.jsonl"
        write_jsonl(registry, path)
        write_jsonl(registry, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2 * len(registry.collect())


class TestTracer:
    def test_unknown_stage_is_an_error(self):
        with pytest.raises(ValueError, match="unknown stage"):
            Tracer().record("compaction", "s", 0.1)

    def test_span_records_even_when_the_block_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("checkpoint", "cpu", generation=3):
                raise RuntimeError("disk full")
        (span,) = tracer.spans()
        assert span.stage == "checkpoint"
        assert span.stream == "cpu"
        assert span.status == "RuntimeError"
        assert span.meta == {"generation": 3}
        status = tracer.registry.counter(
            "repro_spans_total", stage="checkpoint", stream="cpu",
            status="RuntimeError",
        )
        assert status.value == 1

    def test_span_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record("ingest", "s", float(i))
        spans = tracer.spans()
        assert [s.seconds for s in spans] == [6.0, 7.0, 8.0, 9.0]
        # The aggregate histogram survives ring eviction.
        assert tracer.stage_seconds("ingest", "s").count == 10

    def test_spans_filter_by_stage_and_stream(self):
        tracer = Tracer()
        tracer.record("ingest", "a", 0.1)
        tracer.record("maintain", "a", 0.2)
        tracer.record("ingest", "b", 0.3)
        assert len(tracer.spans(stage="ingest")) == 2
        assert len(tracer.spans(stream="a")) == 2
        assert len(tracer.spans(stage="ingest", stream="b")) == 1

    def test_pipeline_observer_files_stage_timings(self):
        tracer = Tracer()
        maintainer = make_maintainer("exact", window_size=64)
        pipeline = StreamPipeline(
            [maintainer], maintain_every=4,
            observer=PipelineObserver(tracer, "cpu"),
        )
        pipeline.extend(integer_stream(8))
        ingest = tracer.spans(stage="ingest", stream="cpu")
        maintain = tracer.spans(stage="maintain", stream="cpu")
        assert len(ingest) == 1 and len(maintain) == 1
        assert ingest[0].meta["arrivals"] == 8
        # A chunk below the cadence emits ingest but no maintain span.
        pipeline.extend(integer_stream(2))
        assert len(tracer.spans(stage="ingest", stream="cpu")) == 2
        assert len(tracer.spans(stage="maintain", stream="cpu")) == 1


# ----------------------------------------------------------------------
# Accuracy monitoring
# ----------------------------------------------------------------------


class TestAccuracyMonitor:
    def test_fixed_window_observed_epsilon_within_configured_bound(self):
        """Theorem 1, observed live: SSE(served)/SSE(optimal) - 1 <= eps."""
        params = BACKEND_KWARGS["fixed_window"]
        maintainer = make_maintainer("fixed_window", **params)
        monitor = AccuracyMonitor(
            params["epsilon"], window_size=params["window_size"],
            check_every=64, mode="sse",
        )
        rng = np.random.default_rng(3)
        arrivals = 0
        reports = []
        for _ in range(8):
            chunk = np.repeat(rng.normal(size=8), 8) + 0.1 * rng.normal(size=64)
            maintainer.extend(chunk)
            maintainer.maintain()
            monitor.extend(chunk)
            arrivals += chunk.size
            report = monitor.maybe_check(arrivals, maintainer.synopsis())
            if report is not None:
                reports.append(report)
        assert len(reports) == 8
        assert all(r.mode == "sse" for r in reports)
        assert all(r.within_bound for r in reports), [
            r.observed_epsilon for r in reports
        ]

    def test_check_cadence_and_report_bound(self):
        monitor = AccuracyMonitor(
            0.5, window_size=32, check_every=100, mode="range_sum",
            max_reports=1,
        )
        maintainer = make_maintainer("exact", window_size=32)
        arrivals = 0
        for _ in range(10):
            chunk = integer_stream(32, seed=arrivals)
            maintainer.extend(chunk)
            monitor.extend(chunk)
            arrivals += chunk.size
            monitor.maybe_check(arrivals, maintainer.synopsis())
        # 320 arrivals at a cadence of 100 check at 128 and 256; the
        # bounded log retains only the newest of them.
        assert len(monitor.reports()) == 1
        assert monitor.latest().arrivals == 256
        assert monitor.latest().within_bound

    def test_registry_mirrors_checks_and_violations(self):
        registry = MetricsRegistry()
        monitor = AccuracyMonitor(
            1e-9, window_size=16, check_every=1, mode="range_sum",
            registry=registry, stream="s",
        )

        class _Wildly:
            def range_sum(self, start, end):
                return 1.0e9

        monitor.extend(integer_stream(16))
        report = monitor.check(16, _Wildly())
        assert not report.within_bound
        assert registry.counter("repro_accuracy_checks_total", stream="s").value == 1
        assert (
            registry.counter("repro_accuracy_violations_total", stream="s").value
            == 1
        )
        assert registry.gauge("repro_observed_epsilon", stream="s").value > 1e-9

    def test_service_level_accuracy_monitoring(self):
        with StreamService() as service:
            service.create_stream(
                "s", backend="fixed_window",
                params=BACKEND_KWARGS["fixed_window"],
                maintain_every=16,
                accuracy=dict(epsilon=0.25, window_size=64, check_every=64),
            )
            stream = integer_stream(256, seed=9)
            for start in range(0, 256, 64):
                service.ingest("s", stream[start : start + 64])
            assert service.flush("s") is True
            summary = service.accuracy("s")
            assert summary["checks"] >= 1
            assert summary["violations"] == 0
            assert summary["observed_epsilon"] <= 0.25
            assert service.stats("s")["accuracy"] == summary

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="epsilon"):
            AccuracyMonitor(0.0)
        with pytest.raises(ValueError, match="mode"):
            AccuracyMonitor(0.1, mode="vibes")
        with pytest.raises(ValueError, match="check_every"):
            AccuracyMonitor(0.1, check_every=0)


# ----------------------------------------------------------------------
# Regression: the enqueue-latency reservoir race
# ----------------------------------------------------------------------


class TestLatencyTelemetryRace:
    """p50/p99 must describe one latency population, never two.

    The pre-fix ``WorkerCounters`` kept a bare deque and ran ``list()``
    over it once per percentile: a producer flipping the reservoir
    between epochs could land p50 in the new epoch and p99 in the old
    one (p50 > p99), and a resize mid-iteration could raise outright.
    """

    def _flip_flop(self, observe, read, reservoir):
        stop = threading.Event()
        torn, errors = [], []

        def writer():
            epoch = 0.0
            while not stop.is_set():
                for _ in range(reservoir):
                    observe(epoch)
                epoch = 1.0 - epoch

        def reader():
            while not stop.is_set():
                try:
                    p50, p99 = read()
                except Exception as error:  # noqa: BLE001 - the regression
                    errors.append(error)
                    return
                if p50 > p99 + 1e-12:
                    torn.append((p50, p99))

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, f"reader crashed: {errors[0]!r}"
        assert not torn, f"torn percentile pair: {torn[0]}"

    def test_histogram_quantiles_never_torn(self):
        histogram = HistogramMetric("repro_lat", (), reservoir=512)

        def read():
            marks = histogram.quantiles((0.50, 0.99))
            return marks[0.50], marks[0.99]

        self._flip_flop(histogram.observe, read, reservoir=512)

    def test_worker_counters_to_dict_never_torn(self):
        counters = WorkerCounters()

        def read():
            stats = counters.to_dict()
            return stats["enqueue_p50_seconds"], stats["enqueue_p99_seconds"]

        self._flip_flop(
            lambda epoch: counters.record_enqueue(1, epoch, 1),
            read,
            reservoir=WorkerCounters.LATENCY_RESERVOIR,
        )

    def test_multi_producer_submit_with_stats_readers(self):
        """Sustained concurrent submits while readers hammer stats()."""
        worker = StreamWorker(
            "s", make_maintainer("exact", window_size=128),
            maintain_every=8, queue_capacity=512,
        )
        worker.start()
        errors = []
        done = threading.Event()
        batch = integer_stream(16)

        def producer():
            try:
                for _ in range(50):
                    worker.submit(batch)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        def reader():
            while not done.is_set():
                try:
                    stats = worker.stats()
                    assert (
                        stats["enqueue_p50_seconds"]
                        <= stats["enqueue_p99_seconds"] + 1e-12
                    )
                    worker.counters.latency_quantile(0.9)
                except Exception as error:  # noqa: BLE001
                    errors.append(error)
                    return

        producers = [threading.Thread(target=producer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in producers + readers:
            thread.start()
        for thread in producers:
            thread.join()
        worker.flush()
        done.set()
        for thread in readers:
            thread.join()
        try:
            assert not errors, f"concurrent telemetry failed: {errors[0]!r}"
            counters = worker.counters
            assert counters.submitted_points == 4 * 50 * batch.size
            assert counters.ingested_points == counters.submitted_points
            assert counters.drained_batches == counters.enqueued_batches == 200
            assert len(counters.enqueue_latencies) == min(
                200, WorkerCounters.LATENCY_RESERVOIR
            )
        finally:
            worker.close()


# ----------------------------------------------------------------------
# Regression: premature degraded -> healthy promotion
# ----------------------------------------------------------------------

#: Sentinel values the gated maintainer reacts to.
CRASH_VALUE = 666.0
BLOCK_VALUE = 999.0


class _PromotionController:
    """Shared switchboard between the test and the gated maintainer."""

    def __init__(self):
        self.crash_armed = threading.Event()
        self.crash_armed.set()
        self.block_gate = threading.Event()
        self.blocking = threading.Event()
        self.instances = 0


class _GatedMaintainer(Maintainer):
    """Crashes once on CRASH_VALUE; holds ingest open on BLOCK_VALUE."""

    def __init__(self, controller):
        super().__init__("gated")
        self._ctrl = controller
        controller.instances += 1
        self._values = []

    def _ingest_batch(self, batch):
        for value in batch.tolist():
            if value == CRASH_VALUE and self._ctrl.crash_armed.is_set():
                self._ctrl.crash_armed.clear()
                raise RuntimeError("injected crash")
            if value == BLOCK_VALUE and not self._ctrl.block_gate.is_set():
                self._ctrl.blocking.set()
                if not self._ctrl.block_gate.wait(timeout=10.0):
                    raise RuntimeError("block gate never released")
            self._values.append(value)

    def synopsis(self):
        return list(self._values)


@pytest.fixture(autouse=True, scope="module")
def _obs_gated_backend():
    """Register the test-only gated backend for this module, then remove
    it again: ``repro.verify`` now fails loudly on any registered
    maintainer without certification parameters, so a leaked test
    registration would poison the verify suite."""
    from repro.runtime.registry import _REGISTRY

    if "obs_gated" not in available_maintainers():
        register_maintainer("obs_gated", _GatedMaintainer)
    yield
    _REGISTRY.pop("obs_gated", None)


class TestDegradedPromotion:
    def test_not_promoted_while_final_batch_is_in_flight(self):
        """queue_depth == 0 with the last batch mid-ingest stays degraded.

        The replacement worker pops the final pending batch *before*
        feeding it, so the queue reads empty while the batch (and the
        re-materialization of the served view) is still in progress --
        the exact window in which the old promotion check reported
        ``healthy``.
        """
        ctrl = _PromotionController()
        with StreamService(
            supervise=True, restart_policy=FAST_RESTARTS
        ) as service:
            service.create_stream(
                "s", backend="obs_gated", params={"controller": ctrl},
                maintain_every=1, poison="fail",
            )
            try:
                service.ingest("s", [1.0, 2.0, 3.0])
                assert service.flush("s") is True
                # One batch: the crash kills generation 1; the replacement
                # replays [1, 2, 3], then blocks mid-way through the
                # re-queued pending batch.
                service.ingest("s", [CRASH_VALUE, BLOCK_VALUE])
                assert ctrl.blocking.wait(timeout=5.0), (
                    "replacement worker never reached the gate"
                )
                health = service.health("s")
                assert health["queue_depth"] == 0
                assert health["restarts"] == 1
                # Hold the window open across several supervisor polls:
                # the stream must stay degraded the whole time.
                deadline = time.monotonic() + 0.2
                while time.monotonic() < deadline:
                    assert service.health("s")["state"] == "degraded"
                    time.sleep(0.02)
            finally:
                ctrl.block_gate.set()
            assert wait_for_state(service, "s", "healthy") == "healthy"
            assert service.stats("s")["arrivals"] == 5
            assert service.synopsis("s") == [
                1.0, 2.0, 3.0, CRASH_VALUE, BLOCK_VALUE,
            ]
            assert ctrl.instances == 2
            assert service.health("s")["lossy_recovery"] is False


# ----------------------------------------------------------------------
# Service-level exposure
# ----------------------------------------------------------------------

#: Every stream's metrics() must cover at least these instruments.
PER_STREAM_METRICS = {
    "repro_submitted_points_total",
    "repro_ingested_points_total",
    "repro_dropped_points_total",
    "repro_enqueued_batches_total",
    "repro_drained_batches_total",
    "repro_max_queue_depth",
    "repro_enqueue_wait_seconds_total",
    "repro_enqueue_latency_seconds",
    "repro_dead_letter_poison_points_total",
    "repro_dead_letter_quarantined",
    "repro_stage_seconds",
    "repro_spans_total",
}


class TestServiceMetrics:
    def test_concurrent_metrics_under_sustained_ingest_all_backends(self):
        with StreamService() as service:
            for backend, params in BACKEND_KWARGS.items():
                service.create_stream(backend, backend=backend, params=params,
                                      maintain_every=16)
            errors = []
            done = threading.Event()

            def producer(name, seed):
                try:
                    for i in range(10):
                        service.ingest(name, integer_stream(64, seed=seed + i))
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            def reader():
                while not done.is_set():
                    try:
                        assert service.metrics()
                        parse_prometheus_text(service.prometheus_metrics())
                        service.stats()
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return

            producers = [
                threading.Thread(target=producer, args=(backend, 100 * i))
                for i, backend in enumerate(BACKEND_KWARGS)
            ]
            readers = [threading.Thread(target=reader) for _ in range(2)]
            for thread in producers + readers:
                thread.start()
            for thread in producers:
                thread.join()
            assert service.flush() is True
            done.set()
            for thread in readers:
                thread.join()
            assert not errors, f"concurrent metrics access failed: {errors[0]!r}"

            for backend in BACKEND_KWARGS:
                samples = service.metrics(backend)
                names = {s["name"] for s in samples}
                missing = PER_STREAM_METRICS - names
                assert not missing, f"{backend}: metrics missing {missing}"
                by_name = {
                    s["name"]: s for s in samples
                    if s["labels"].get("stage") in (None, "ingest")
                }
                assert by_name["repro_submitted_points_total"]["value"] == 640
                assert by_name["repro_ingested_points_total"]["value"] == 640
                stages = {
                    s["labels"]["stage"] for s in samples
                    if s["name"] == "repro_stage_seconds"
                }
                assert {"ingest", "maintain", "materialize"} <= stages

    def test_metrics_cover_checkpoints_and_export(self, tmp_path):
        with StreamService(tmp_path / "snapshots") as service:
            service.create_stream(
                "s", backend="exact", params={"window_size": 64},
            )
            service.ingest("s", integer_stream(128))
            service.flush("s")
            service.checkpoint("s")
            names = {s["name"] for s in service.metrics("s")}
            assert "repro_snapshot_writes_total" in names
            spans = service.spans(stage="checkpoint", name="s")
            assert len(spans) == 1 and spans[0].status == "ok"
            # The exporters see the same registry the service reports from.
            parsed = parse_prometheus_text(service.prometheus_metrics())
            assert any(
                s["name"] == "repro_snapshot_writes_total"
                and s["labels"].get("stream") == "s"
                for s in parsed
            )
            path = service.export_metrics_jsonl(tmp_path / "metrics.jsonl")
            lines = path.read_text().splitlines()
            assert len(lines) == len(service.metrics())

    def test_unknown_stream_metrics_raise(self):
        with StreamService() as service:
            service.create_stream("s", backend="exact",
                                  params={"window_size": 8})
            with pytest.raises(UnknownStreamError):
                service.metrics("nope")
            assert service.accuracy("s") is None
