"""Stateful property tests: long random interaction sequences against
reference models (hypothesis RuleBasedStateMachine)."""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.fixed_window import FixedWindowHistogramBuilder
from repro.core.optimal import optimal_error
from repro.core.prefix import SlidingPrefixSums
from repro.sketches import GKQuantileSummary
from repro.streams import SlidingWindow

_VALUES = st.integers(min_value=0, max_value=1000).map(float)


class SlidingPrefixMachine(RuleBasedStateMachine):
    """SlidingPrefixSums vs a plain-list reference under random appends."""

    def __init__(self) -> None:
        super().__init__()
        self.capacity = 7
        self.sliding = SlidingPrefixSums(self.capacity)
        self.reference: list[float] = []

    @rule(value=_VALUES)
    def append(self, value):
        self.sliding.append(value)
        self.reference.append(value)
        if len(self.reference) > self.capacity:
            self.reference.pop(0)

    @invariant()
    def window_matches(self):
        assert list(self.sliding.values()) == self.reference

    @invariant()
    def sums_match(self):
        n = len(self.reference)
        if n == 0:
            return
        assert abs(self.sliding.sum_range(0, n - 1) - sum(self.reference)) < 1e-6
        mid = n // 2
        assert (
            abs(self.sliding.sum_range(mid, n - 1) - sum(self.reference[mid:]))
            < 1e-6
        )


class SlidingWindowMachine(RuleBasedStateMachine):
    """SlidingWindow eviction semantics vs a list reference."""

    def __init__(self) -> None:
        super().__init__()
        self.capacity = 5
        self.window = SlidingWindow(self.capacity)
        self.reference: list[float] = []

    @rule(value=_VALUES)
    def append(self, value):
        evicted = self.window.append(value)
        self.reference.append(value)
        if len(self.reference) > self.capacity:
            expected = self.reference.pop(0)
            assert evicted == expected
        else:
            assert evicted is None

    @invariant()
    def contents_match(self):
        assert list(self.window.values()) == self.reference
        for index, expected in enumerate(self.reference):
            assert self.window[index] == expected


class FixedWindowMachine(RuleBasedStateMachine):
    """The fixed-window builder keeps its guarantee through arbitrary
    append/update/histogram interleavings."""

    def __init__(self) -> None:
        super().__init__()
        self.window_size = 12
        self.buckets = 3
        self.epsilon = 0.5
        self.builder = FixedWindowHistogramBuilder(
            self.window_size, self.buckets, self.epsilon
        )
        self.reference: list[float] = []

    @rule(value=_VALUES)
    def append(self, value):
        self.builder.append(value)
        self.reference.append(value)
        if len(self.reference) > self.window_size:
            self.reference.pop(0)

    @precondition(lambda self: self.reference)
    @rule()
    def force_update(self):
        self.builder.update()

    @precondition(lambda self: self.reference)
    @rule()
    def check_histogram(self):
        window = np.asarray(self.reference)
        histogram = self.builder.histogram()
        assert len(histogram) == window.size
        sse = histogram.sse(window)
        bound = (1.0 + self.epsilon) * optimal_error(window, self.buckets)
        assert sse <= bound + 1e-6

    @invariant()
    def window_matches(self):
        assert list(self.builder.window_values()) == self.reference


class GKMachine(RuleBasedStateMachine):
    """GK summary rank bounds stay valid under inserts and merges."""

    def __init__(self) -> None:
        super().__init__()
        self.epsilon = 0.1
        self.summary = GKQuantileSummary(self.epsilon)
        self.reference: list[float] = []

    @rule(value=_VALUES)
    def insert(self, value):
        self.summary.insert(value)
        self.reference.append(value)

    @rule(values=st.lists(_VALUES, min_size=1, max_size=20))
    def merge_batch(self, values):
        other = GKQuantileSummary(self.epsilon)
        other.extend(values)
        self.summary = self.summary.merge(other)
        self.reference.extend(values)

    @invariant()
    def count_matches(self):
        assert len(self.summary) == len(self.reference)

    @precondition(lambda self: self.reference)
    @invariant()
    def median_within_bound(self):
        n = len(self.reference)
        estimate = self.summary.query(0.5)
        ordered = sorted(self.reference)
        low = np.searchsorted(ordered, estimate, side="left")
        high = np.searchsorted(ordered, estimate, side="right")
        # Merges sum epsilons; a generous 4*eps*n + 2 covers any sequence
        # of merges exercised here.
        slack = 4 * self.epsilon * n + 2
        assert low - slack <= 0.5 * n <= high + slack


_settings = settings(max_examples=25, stateful_step_count=30, deadline=None)

TestSlidingPrefixMachine = SlidingPrefixMachine.TestCase
TestSlidingPrefixMachine.settings = _settings
TestSlidingWindowMachine = SlidingWindowMachine.TestCase
TestSlidingWindowMachine.settings = _settings
TestFixedWindowMachine = FixedWindowMachine.TestCase
TestFixedWindowMachine.settings = _settings
TestGKMachine = GKMachine.TestCase
TestGKMachine.settings = _settings
