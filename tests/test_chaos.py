"""Chaos suite: deterministic fault injection against the stream service.

The acceptance bar for the fault-tolerance subsystem: with a seeded
:class:`FaultInjector` killing each backend's worker mid-stream and
corrupting the newest snapshot generation, a supervised
:class:`StreamService` auto-recovers and every recovered synopsis equals
a direct :class:`StreamPipeline` run over the same data -- exactly for
the deterministic backends and bit-exactly (including generator state)
for the reservoir sample.  The suite also pins the failure-mode edges:
restart-budget exhaustion, queries during recovery, injected snapshot
write failures, slow-ingest faults, and schedule reproducibility.

Faults fire at exact stream positions, never wall-clock times, so every
test here is deterministic modulo thread scheduling -- and the
equivalence assertions are immune even to that, because replay re-feeds
the exact same points at the exact same arrival positions.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import StreamPipeline, make_maintainer
from repro.service import (
    FaultInjector,
    RestartPolicy,
    StreamFailedError,
    StreamService,
)

from .conftest import BACKEND_PARAMS as BACKEND_KWARGS

pytestmark = pytest.mark.chaos

FAST_RESTARTS = RestartPolicy(
    max_restarts=3, backoff_initial=0.01, backoff_factor=2.0, backoff_max=0.05
)


def integer_stream(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=n).astype(float)


def reference_synopsis(maintainer):
    """What a service view would serve: the last-maintained synopsis."""
    produce = getattr(maintainer, "last_synopsis", None)
    return produce() if produce is not None else maintainer.synopsis()


def assert_same_synopsis(a, b):
    if hasattr(a, "to_dict"):
        assert a.to_dict() == b.to_dict()
    elif hasattr(a, "quantiles"):
        assert a.quantiles(5) == b.quantiles(5)
    else:
        assert a.range_sum(0, len(a) - 1) == b.range_sum(0, len(b) - 1)


def direct_run(backend, stream, maintain_every=32):
    maintainer = make_maintainer(backend, **BACKEND_KWARGS[backend])
    StreamPipeline([maintainer], maintain_every=maintain_every).run(stream)
    return reference_synopsis(maintainer)


def wait_for_state(service, name, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    seen = None
    while time.monotonic() < deadline:
        seen = service.health(name)["state"]
        if seen == state:
            return seen
        time.sleep(0.005)
    return seen


class TestCrashRecoveryEquivalence:
    """The headline guarantee: crash + corrupt snapshot, exact recovery."""

    @pytest.mark.parametrize("backend", sorted(BACKEND_KWARGS))
    def test_crash_and_corrupt_newest_snapshot(self, backend, tmp_path):
        stream = integer_stream(1200, seed=21)
        injector = FaultInjector(seed=101)
        # Seeded crash point in the post-checkpoint tail of the stream.
        crash_arrival = 800 + injector.crash_points(400, count=1)[0]
        injector.crash_at(crash_arrival, stream="s")
        with StreamService(
            tmp_path,
            supervise=True,
            restart_policy=FAST_RESTARTS,
            fault_injector=injector,
        ) as service:
            service.create_stream(
                "s", backend=backend, params=BACKEND_KWARGS[backend],
                maintain_every=32,
            )
            for boundary in (400, 800):
                service.ingest("s", stream[boundary - 400 : boundary])
                service.flush("s")
                paths = service.checkpoint("s")
            # Corrupt the newest generation: recovery must fall back to
            # the previous one and roll forward through the replay log.
            Path(paths[0]).write_text("}corrupt, not a snapshot{")
            for start in range(800, 1200, 50):
                service.ingest("s", stream[start : start + 50])
            assert service.flush("s") is True
            health = service.health("s")
            assert health["state"] == "healthy"
            assert health["restarts"] == 1
            assert health["lossy_recovery"] is False
            assert service.stats("s")["arrivals"] == 1200
            crashes = [e for e in injector.events if e["kind"] == "crash"]
            assert len(crashes) == 1 and crashes[0]["stream"] == "s"
            counters = service._store.counters
            assert counters["corrupt_snapshots"] >= 1
            assert counters["fallback_loads"] >= 1
            served = service.synopsis("s")
        assert_same_synopsis(served, direct_run(backend, stream))

    def test_crash_without_snapshots_replays_from_scratch(self):
        stream = integer_stream(600, seed=5)
        injector = FaultInjector().crash_at(300, stream="s")
        with StreamService(
            supervise=True, restart_policy=FAST_RESTARTS,
            fault_injector=injector,
        ) as service:
            service.create_stream(
                "s", backend="fixed_window",
                params=BACKEND_KWARGS["fixed_window"], maintain_every=16,
            )
            for start in range(0, 600, 40):
                service.ingest("s", stream[start : start + 40])
            service.flush("s")
            assert service.health("s")["state"] == "healthy"
            assert service.health("s")["restarts"] == 1
            served = service.synopsis("s")
        assert_same_synopsis(
            served, direct_run("fixed_window", stream, maintain_every=16)
        )

    def test_seeded_schedule_is_reproducible(self):
        first = FaultInjector(seed=7).crash_points(1000, count=3)
        second = FaultInjector(seed=7).crash_points(1000, count=3)
        assert first == second
        assert len(first) == 3
        assert all(1 <= point < 1000 for point in first)


class TestRestartBudget:
    """A crash loop must end in ``failed``, not spin forever."""

    def test_budget_exhaustion_fails_stream_but_serves_stale(self):
        stream = integer_stream(300, seed=9)
        injector = FaultInjector().crash_at(150, stream="s", times=50)
        policy = RestartPolicy(
            max_restarts=2, backoff_initial=0.01, backoff_max=0.02
        )
        service = StreamService(
            supervise=True, restart_policy=policy, fault_injector=injector
        )
        try:
            service.create_stream(
                "s", backend="gk_quantiles", params=dict(epsilon=0.1),
                maintain_every=16,
            )
            service.ingest("s", stream[:100])
            service.flush("s")
            with pytest.raises(StreamFailedError, match="restart budget"):
                for start in range(100, 300, 50):
                    service.ingest("s", stream[start : start + 50])
                service.flush("s")
            health = service.health("s")
            assert health["state"] == "failed"
            assert health["restarts"] == 2
            assert health["stale_view"] is True
            assert "injected crash" in health["last_error"]
            # The last good view still answers queries, marked stale.
            assert service.view("s").stale is True
            assert np.isfinite(service.quantile("s", 0.5))
        finally:
            service.close()


class TestQueryDuringRecovery:
    """Queries during a restart degrade to the stale view, never block."""

    def test_stale_view_served_mid_recovery(self, tmp_path):
        stream = integer_stream(900, seed=3)
        injector = FaultInjector().crash_at(450, stream="s")
        # A wide, non-growing backoff keeps the stream visibly degraded
        # long enough for the main thread to query mid-recovery.
        policy = RestartPolicy(
            max_restarts=3, backoff_initial=0.35, backoff_factor=1.0,
            backoff_max=0.35,
        )
        service = StreamService(
            tmp_path, supervise=True, restart_policy=policy,
            fault_injector=injector,
        )
        try:
            service.create_stream(
                "s", backend="fixed_window",
                params=BACKEND_KWARGS["fixed_window"], maintain_every=16,
                checkpoint_every=200,
            )
            service.ingest("s", stream[:400])
            service.flush("s")
            assert service.view("s").stale is False

            def produce():
                for start in range(400, 900, 50):
                    service.ingest("s", stream[start : start + 50])
                service.flush("s")

            producer = threading.Thread(target=produce)
            producer.start()
            assert wait_for_state(service, "s", "degraded", timeout=5.0) == (
                "degraded"
            )
            # Mid-recovery: the last good view answers, marked stale.
            view = service.view("s")
            assert view.stale is True
            assert np.isfinite(service.quantile("s", 0.5))
            assert service.health("s")["stale_view"] is True
            producer.join(timeout=30.0)
            assert not producer.is_alive()
            assert wait_for_state(service, "s", "healthy", timeout=10.0) == (
                "healthy"
            )
            assert service.view("s").stale is False
            served = service.synopsis("s")
        finally:
            service.close()
        assert_same_synopsis(
            served, direct_run("fixed_window", stream, maintain_every=16)
        )


class TestSnapshotWriteFaults:
    """Injected snapshot write failures are counted, never producer-fatal."""

    def test_auto_checkpoint_survives_write_failure(self, tmp_path):
        stream = integer_stream(300, seed=13)
        injector = FaultInjector().fail_snapshot_write(stream="s", times=1)
        with StreamService(tmp_path, fault_injector=injector) as service:
            service.create_stream(
                "s", backend="exact", params=dict(window_size=64),
                checkpoint_every=100,
            )
            for start in range(0, 300, 100):
                service.ingest("s", stream[start : start + 100])
                service.flush("s")
            health = service.health("s")
            assert health["checkpoint_errors"] == 1
            assert health["state"] == "healthy"
            counters = service._store.counters
            assert counters["write_failures"] == 1
            assert counters["writes"] >= 1
            assert any(e["kind"] == "snapshot" for e in injector.events)
        restored = StreamService.restore(tmp_path)
        try:
            # close() took a final good checkpoint despite the earlier miss.
            assert restored.stats("s")["arrivals"] == 300
        finally:
            restored.close(checkpoint=False)


class TestSlowIngestFaults:
    def test_slow_fault_fires_and_stream_completes(self):
        injector = FaultInjector().slow_ingest_at(50, 0.05, stream="s")
        with StreamService(fault_injector=injector) as service:
            service.create_stream(
                "s", backend="gk_quantiles", params=dict(epsilon=0.1)
            )
            service.ingest("s", integer_stream(100, seed=1))
            service.flush("s")
            assert service.stats("s")["arrivals"] == 100
            slow = [e for e in injector.events if e["kind"] == "slow"]
            assert len(slow) == 1
            assert injector.pending() == 0


class TestRecoveryObservability:
    """Crash recovery leaves a visible trail: spans plus restart metrics."""

    def test_recovery_emits_recover_span_and_restart_metrics(self):
        stream = integer_stream(600, seed=11)
        injector = FaultInjector(seed=7).crash_at(300, stream="s")
        with StreamService(
            supervise=True, restart_policy=FAST_RESTARTS,
            fault_injector=injector,
        ) as service:
            service.create_stream(
                "s", backend="exact", params=dict(window_size=64),
                maintain_every=16,
            )
            for start in range(0, 600, 50):
                service.ingest("s", stream[start : start + 50])
            assert service.flush("s") is True
            assert wait_for_state(service, "s", "healthy") == "healthy"
            assert service.stats("s")["arrivals"] == 600

            spans = service.spans(stage="recover", name="s")
            assert len(spans) == 1
            assert spans[0].status == "ok"
            assert spans[0].meta["restart"] == 1
            # The replacement's replay traffic shows up as ingest spans
            # on the same shared tracer.
            assert service.spans(stage="ingest", name="s")

            samples = {
                s["name"]: s["value"] for s in service.metrics("s")
                if s["kind"] in ("counter", "gauge")
            }
            assert samples["repro_restarts_total"] == 1
            assert samples.get("repro_lossy_recoveries_total", 0) == 0
            # The replacement re-ingests the replay suffix, so the drained
            # total exceeds the deduplicated arrival counter.
            assert samples["repro_ingested_points_total"] >= 600

    def test_exhausted_budget_restarts_are_all_traced(self):
        stream = integer_stream(300, seed=9)
        injector = FaultInjector().crash_at(150, stream="s", times=50)
        policy = RestartPolicy(
            max_restarts=2, backoff_initial=0.01, backoff_max=0.02
        )
        with StreamService(supervise=True, restart_policy=policy,
                           fault_injector=injector) as service:
            service.create_stream(
                "s", backend="exact", params=dict(window_size=64),
                maintain_every=16,
            )
            service.ingest("s", stream[:100])
            service.flush("s")
            with pytest.raises(StreamFailedError, match="restart budget"):
                for start in range(100, 300, 50):
                    service.ingest("s", stream[start : start + 50])
                service.flush("s")
            assert wait_for_state(service, "s", "failed") == "failed"
            # Every restart attempt within the budget was traced and
            # counted; the budget bounds both.
            spans = service.spans(stage="recover", name="s")
            assert len(spans) == 2
            restarts = [
                s["value"] for s in service.metrics("s")
                if s["name"] == "repro_restarts_total"
            ]
            assert restarts and restarts[0] == 2


class TestDeltaCheckpointRecovery:
    """Delta chains must not weaken the bit-identical recovery bar."""

    @pytest.mark.parametrize("backend", sorted(BACKEND_KWARGS))
    def test_crash_recovery_with_delta_cadence(self, backend, tmp_path):
        stream = integer_stream(1200, seed=33)
        injector = FaultInjector(seed=19)
        crash_arrival = 900 + injector.crash_points(300, count=1)[0]
        injector.crash_at(crash_arrival, stream="s")
        with StreamService(
            tmp_path,
            supervise=True,
            restart_policy=FAST_RESTARTS,
            fault_injector=injector,
            snapshot_base_every=3,
        ) as service:
            service.create_stream(
                "s", backend=backend, params=BACKEND_KWARGS[backend],
                maintain_every=32,
            )
            # Six checkpoints under a base-every-3 cadence: full, delta,
            # delta, full, delta, delta.
            for boundary in range(150, 901, 150):
                service.ingest("s", stream[boundary - 150 : boundary])
                service.flush("s")
                service.checkpoint("s")
            suffixes = {p.suffix for p in service._store.generations("s")}
            assert ".delta" in suffixes
            for start in range(900, 1200, 50):
                service.ingest("s", stream[start : start + 50])
            assert service.flush("s") is True
            health = service.health("s")
            assert health["state"] == "healthy"
            assert health["restarts"] == 1
            assert health["lossy_recovery"] is False
            assert service.stats("s")["arrivals"] == 1200
            served = service.synopsis("s")
        assert_same_synopsis(served, direct_run(backend, stream))

    def test_corrupt_delta_head_still_recovers_exactly(self, tmp_path):
        stream = integer_stream(1000, seed=51)
        injector = FaultInjector().crash_at(950, stream="s")
        with StreamService(
            tmp_path,
            supervise=True,
            restart_policy=FAST_RESTARTS,
            fault_injector=injector,
            snapshot_base_every=4,
        ) as service:
            service.create_stream(
                "s", backend="gk_quantiles",
                params=BACKEND_KWARGS["gk_quantiles"], maintain_every=32,
            )
            paths = []
            for boundary in range(200, 801, 200):
                service.ingest("s", stream[boundary - 200 : boundary])
                service.flush("s")
                paths = service.checkpoint("s")
            # The newest generation is a delta; corrupting it must
            # truncate the chain, not break recovery -- replay covers
            # everything past the surviving prefix.
            assert paths[0].endswith(".delta")
            Path(paths[0]).write_bytes(b"garbage")
            for start in range(800, 1000, 50):
                service.ingest("s", stream[start : start + 50])
            assert service.flush("s") is True
            health = service.health("s")
            assert health["state"] == "healthy"
            assert health["lossy_recovery"] is False
            assert service.stats("s")["arrivals"] == 1000
            served = service.synopsis("s")
        assert_same_synopsis(served, direct_run("gk_quantiles", stream))
