"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

#: Small integer-valued sequences, the paper's data model (bounded integers).
int_sequences = st.lists(
    st.integers(min_value=0, max_value=100), min_size=1, max_size=60
).map(lambda xs: np.asarray(xs, dtype=np.float64))

#: Sequences long enough for multi-bucket histograms.
longer_sequences = st.lists(
    st.integers(min_value=0, max_value=100), min_size=8, max_size=80
).map(lambda xs: np.asarray(xs, dtype=np.float64))

#: Modest float sequences for numeric modules (wavelets, distances).
float_sequences = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
).map(lambda xs: np.asarray(xs, dtype=np.float64))

bucket_counts = st.integers(min_value=1, max_value=8)
epsilons = st.sampled_from([0.05, 0.1, 0.25, 0.5, 1.0])


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def step_sequence() -> np.ndarray:
    """Three exact plateaus: optimal 3-bucket SSE is zero."""
    return np.asarray([1.0] * 5 + [7.0] * 4 + [3.0] * 6)


@pytest.fixture
def utilization_1k() -> np.ndarray:
    from repro.datasets import att_utilization_stream

    return att_utilization_stream(1000, seed=42)
