"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

#: Small integer-valued sequences, the paper's data model (bounded integers).
int_sequences = st.lists(
    st.integers(min_value=0, max_value=100), min_size=1, max_size=60
).map(lambda xs: np.asarray(xs, dtype=np.float64))

#: Sequences long enough for multi-bucket histograms.
longer_sequences = st.lists(
    st.integers(min_value=0, max_value=100), min_size=8, max_size=80
).map(lambda xs: np.asarray(xs, dtype=np.float64))

#: Modest float sequences for numeric modules (wavelets, distances).
float_sequences = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
).map(lambda xs: np.asarray(xs, dtype=np.float64))

#: Raw integer lists (no numpy mapping) for window/order-statistics tests
#: that index into the original Python list.
int_point_lists = st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=80)

#: Signed integer lists, long enough to force GK summary compression.
signed_int_lists = st.lists(
    st.integers(min_value=-100, max_value=100), min_size=1, max_size=400
)

bucket_counts = st.integers(min_value=1, max_value=8)
epsilons = st.sampled_from([0.05, 0.1, 0.25, 0.5, 1.0])


# ---------------------------------------------------------------------------
# Registry backends
# ---------------------------------------------------------------------------

#: Canonical constructor parameters for every registry backend, shared by
#: all backend sweeps (runtime, service, chaos, obs, verify).  Sized small
#: so exact-oracle comparisons stay fast.
BACKEND_PARAMS: dict[str, dict] = {
    "fixed_window": dict(window_size=64, num_buckets=8, epsilon=0.25),
    "agglomerative": dict(num_buckets=8, epsilon=0.25),
    "wavelet": dict(window_size=64, budget=8),
    "dynamic_wavelet": dict(domain_size=128, budget=8),
    "gk_quantiles": dict(epsilon=0.05),
    "equi_depth": dict(num_buckets=8),
    "reservoir": dict(capacity=32),
    "exact": dict(window_size=64),
    "eh_count": dict(window=64, epsilon=0.25),
    "cr_precis": dict(rows=5, base=23, domain=131072),
}


def _registry_backends() -> list[str]:
    from repro.runtime.registry import available_maintainers

    return sorted(available_maintainers())


@pytest.fixture(params=_registry_backends())
def all_backends(request) -> tuple[str, dict]:
    """``(backend, params)`` for every backend the registry exposes.

    Parametrized over the registry itself, so registering a ninth
    backend automatically enrolls it in every sweep that uses this
    fixture -- and fails loudly until canonical test parameters exist.
    """
    name = request.param
    assert name in BACKEND_PARAMS, (
        f"backend {name!r} is registered but has no canonical test params; "
        "add it to tests/conftest.py BACKEND_PARAMS"
    )
    return name, dict(BACKEND_PARAMS[name])


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def step_sequence() -> np.ndarray:
    """Three exact plateaus: optimal 3-bucket SSE is zero."""
    return np.asarray([1.0] * 5 + [7.0] * 4 + [3.0] * 6)


@pytest.fixture
def utilization_1k() -> np.ndarray:
    from repro.datasets import att_utilization_stream

    return att_utilization_stream(1000, seed=42)
