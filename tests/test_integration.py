"""Cross-module integration tests: end-to-end scenarios from the paper."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AgglomerativeHistogramBuilder,
    AttributeSummary,
    FixedWindowHistogramBuilder,
    GKQuantileSummary,
    RangeQuery,
    Relation,
    SeriesIndex,
    VOptimalReducer,
    WaveletSynopsis,
    approximate_histogram,
    equal_depth_histogram,
    measure_accuracy,
    optimal_error,
    optimal_histogram,
)
from repro.datasets import (
    att_utilization_stream,
    timeseries_collection,
    warehouse_measure_column,
)
from repro.query import RandomRangeWorkload
from repro.streams import take, bursty_traffic


class TestNetworkMonitoringScenario:
    """A router stream monitored with a fixed window (paper section 1)."""

    def test_window_queries_track_truth(self):
        stream = take(bursty_traffic(seed=21), 600)
        window = 128
        builder = FixedWindowHistogramBuilder(window, 8, 0.25)
        workload = RandomRangeWorkload(window, seed=1)
        checked = 0
        for index, value in enumerate(stream):
            builder.append(value)
            if index >= window - 1 and index % 100 == 0:
                histogram = builder.histogram()
                truth = builder.window_values()
                accuracy = measure_accuracy(histogram, truth, workload.sample(20))
                # Error is bounded by the total in-window variability.
                assert accuracy.mean_absolute_error <= float(np.ptp(truth)) * window
                checked += 1
        assert checked >= 4

    def test_three_methods_agree_on_easy_data(self):
        """On piecewise-constant data every method is exact."""
        values = np.repeat([10.0, 50.0, 20.0, 90.0], 32)
        optimal = optimal_histogram(values, 4)
        approx = approximate_histogram(values, 4, 0.1)
        fixed = FixedWindowHistogramBuilder(values.size, 4, 0.1)
        fixed.extend(values)
        assert optimal.sse(values) == pytest.approx(0.0, abs=1e-9)
        assert approx.sse(values) == pytest.approx(0.0, abs=1e-9)
        assert fixed.histogram().sse(values) == pytest.approx(0.0, abs=1e-9)
        assert optimal.boundaries() == approx.boundaries() == [31, 63, 95]


class TestOnePassOrdering:
    def test_agglomerative_and_fixed_window_agree_on_full_buffer(self):
        """With window == stream length both models summarize the same data
        and must meet the same guarantee."""
        stream = att_utilization_stream(300, seed=22)
        buckets, epsilon = 6, 0.25
        agglomerative = AgglomerativeHistogramBuilder(buckets, epsilon)
        fixed = FixedWindowHistogramBuilder(stream.size, buckets, epsilon)
        agglomerative.extend(stream)
        fixed.extend(stream)
        bound = (1.0 + epsilon) * optimal_error(stream, buckets) + 1e-6
        assert agglomerative.histogram().sse(stream) <= bound
        assert fixed.histogram().sse(stream) <= bound

    def test_order_sensitivity_is_bounded(self):
        """Histograms are order-sensitive, but the guarantee holds per order."""
        rng = np.random.default_rng(23)
        values = rng.integers(0, 40, size=120).astype(float)
        shuffled = rng.permutation(values)
        for data in (values, shuffled):
            histogram = approximate_histogram(data, 5, 0.2)
            assert histogram.sse(data) <= 1.2 * optimal_error(data, 5) + 1e-6


class TestWarehousePipeline:
    def test_end_to_end_aqp(self):
        column = warehouse_measure_column(30000, seed=24)
        relation = Relation({"bytes": column})
        summary = AttributeSummary.build(
            relation, "bytes", 32, method="approximate", epsilon=0.1
        )
        exact_total = relation.sum_range("bytes", 0, float(column.max()))
        estimate_total = summary.estimate_sum(0, float(column.max()))
        assert estimate_total == pytest.approx(exact_total, rel=0.01)

    def test_streaming_equidepth_via_gk_matches_sorted(self):
        """GK quantiles drive a streaming equi-depth cut of the distribution."""
        column = warehouse_measure_column(20000, seed=25)
        summary = GKQuantileSummary(0.01)
        summary.extend(column)
        cuts = summary.quantiles(7)
        exact_cuts = [float(np.quantile(column, q / 8)) for q in range(1, 8)]
        for estimated, exact in zip(cuts, exact_cuts):
            assert abs(estimated - exact) <= 0.05 * (1 + abs(exact)) + 5.0

    def test_equal_depth_on_sorted_values_balances_mass(self):
        column = np.sort(warehouse_measure_column(5000, seed=26))
        histogram = equal_depth_histogram(column, 8)
        masses = [
            column[b.start : b.end + 1].sum() for b in histogram.buckets
        ]
        assert max(masses) <= 2.5 * (sum(masses) / len(masses))


class TestSimilarityPipeline:
    def test_streaming_features_index_whole_collection(self):
        collection = timeseries_collection(30, 64, seed=27)
        index = SeriesIndex(VOptimalReducer(12, epsilon=0.2))
        index.add_all(collection)
        query = collection[4] + 0.02
        outcome = index.knn_search(query, 3)
        assert outcome.matches[0][0] == 4  # nearest is the perturbed original

    def test_wavelet_and_histogram_summaries_comparable_interface(self):
        """Both synopses answer the same RangeQuery objects."""
        values = att_utilization_stream(256, seed=28)
        histogram = optimal_histogram(values, 16)
        synopsis = WaveletSynopsis.from_values(values, 16)
        query = RangeQuery(10, 200)
        exact = float(values[10:201].sum())
        for answers in (query.answer(histogram), query.answer(synopsis)):
            assert answers == pytest.approx(exact, rel=0.5)
