"""Tests for the differential-oracle certification subsystem (repro.verify).

Three layers of trust:

* the machinery itself works (fuzzer determinism, oracle wiring, CLI);
* every registry backend passes certification (the shipped guarantee);
* the checker *can* fail -- deliberately broken backends must be caught,
  including the off-by-one split regression the subsystem exists for.
"""

from __future__ import annotations

import json
from unittest import mock

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.core.fixed_window import FixedWindowHistogramBuilder
from repro.runtime.registry import make_maintainer
from repro.service import StreamService, StreamSpec
from repro.sketches.gk import GKQuantileSummary
from repro.verify import (
    GRID_BACKENDS,
    PROFILES,
    SIGNED_PROFILES,
    DifferentialChecker,
    StreamFuzzer,
    certify,
    compatible_profiles,
    default_grid,
    observe,
    oracle_for,
)
from repro.verify.__main__ import main as verify_main

from .conftest import BACKEND_PARAMS

pytestmark = pytest.mark.verify


class TestStreamFuzzer:
    def test_deterministic_from_seed(self):
        first = list(StreamFuzzer("zipf", 7).batches(300))
        second = list(StreamFuzzer("zipf", 7).batches(300))
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "profile", [p for p in PROFILES if p not in SIGNED_PROFILES]
    )
    def test_profiles_emit_nonnegative_integers(self, profile):
        values = StreamFuzzer(profile, 3).take(500)
        assert values.dtype == np.float64
        assert float(values.min()) >= 0.0
        assert np.array_equal(values, np.rint(values))

    @pytest.mark.parametrize("profile", SIGNED_PROFILES)
    def test_signed_profiles_are_deterministic(self, profile):
        first = StreamFuzzer(profile, 13).take(600)
        second = StreamFuzzer(profile, 13).take(600)
        assert np.array_equal(first, second)
        assert np.array_equal(first, np.rint(first))

    def test_turnstile_profile_is_a_strict_turnstile(self):
        """Deletions only ever target live keys: decoded frequencies must
        stay non-negative at every prefix, and a healthy fraction of
        updates must actually be deletions."""
        from collections import Counter

        from repro.counting.encoding import decode_updates

        values = StreamFuzzer("turnstile", 9).take(2000)
        keys, deltas = decode_updates(values)
        live: Counter = Counter()
        for key, delta in zip(keys.tolist(), deltas.tolist()):
            live[key] += delta
            assert live[key] >= 0
        deletions = int((deltas < 0).sum())
        assert 0.2 <= deletions / values.size <= 0.5

    def test_expiry_profile_has_long_quiet_stretches(self):
        values = StreamFuzzer("expiry", 5).take(2000)
        zero_runs = []
        run = 0
        for v in values.tolist():
            if v == 0.0:
                run += 1
            else:
                if run:
                    zero_runs.append(run)
                run = 0
        assert max(zero_runs, default=0) >= 90

    def test_clip_domain_respected(self):
        fuzzer = StreamFuzzer("spike", 1, clip_domain=64)
        values = fuzzer.take(1000)
        assert float(values.max()) <= 63.0

    def test_batches_cover_exact_total(self):
        batches = list(StreamFuzzer("uniform", 0).batches(257, max_batch=10))
        assert sum(batch.size for batch in batches) == 257
        assert all(1 <= batch.size <= 10 for batch in batches)

    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError):
            StreamFuzzer("gaussian")


class TestOracleWiring:
    def test_every_backend_has_an_oracle(self, all_backends):
        backend, params = all_backends
        oracle = oracle_for(backend, params)
        oracle.extend(np.asarray([1.0, 2.0, 3.0]))
        assert oracle.count == 3

    def test_observe_is_stable_and_discriminating(self, all_backends):
        backend, params = all_backends
        stream = StreamFuzzer("uniform", 5).take(200)
        one = make_maintainer(backend, **params)
        two = make_maintainer(backend, **params)
        one.extend(stream)
        two.extend(stream)
        one.maintain()
        two.maintain()
        assert observe(one) == observe(two)
        two.extend(stream[:7])
        two.maintain()
        assert observe(one) != observe(two)


class TestDifferentialSweep:
    @pytest.mark.parametrize("profile", ["uniform", "spike"])
    def test_backend_certifies(self, all_backends, profile):
        backend, params = all_backends
        result = DifferentialChecker(
            backend,
            params,
            profile=profile,
            seed=11,
            total_points=384,
            check_every=128,
        ).run()
        assert result.passed, [str(v) for v in result.violations]
        assert result.checks >= 3

    def test_report_roundtrips_through_json(self):
        cases = default_grid(quick=True, backends=["exact"], points=128)
        report = certify(cases)
        assert report.passed
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["passed"] is True
        assert payload["backends"] == ["exact"]

    def test_grid_covers_all_backends(self):
        cases = default_grid(quick=True)
        assert {case.backend for case in cases} == set(GRID_BACKENDS)
        with pytest.raises(KeyError):
            default_grid(backends=["no_such_backend"])

    def test_grid_fails_loudly_when_registry_outgrows_it(self):
        """Registering a backend without adding certification params to
        GRID_BACKENDS must break the default grid, not silently skip."""
        import repro.verify.runner as runner

        registered = list(runner.available_maintainers()) + ["brand_new"]
        with mock.patch.object(
            runner, "available_maintainers", lambda: registered
        ):
            with pytest.raises(RuntimeError, match="brand_new"):
                runner.default_grid(quick=True)

    def test_signed_profiles_only_reach_turnstile_backends(self):
        from repro.verify.runner import TURNSTILE_BACKENDS

        for backend in GRID_BACKENDS:
            allowed = compatible_profiles(backend)
            if backend in TURNSTILE_BACKENDS:
                assert set(SIGNED_PROFILES) <= set(allowed)
            else:
                assert not set(SIGNED_PROFILES) & set(allowed)
        for case in default_grid():
            if case.profile in SIGNED_PROFILES:
                assert case.backend in TURNSTILE_BACKENDS


class TestInjectedBugsAreCaught:
    """The checker must fail when the implementation is wrong."""

    def test_off_by_one_split_selection_fails_epsilon_bound(self):
        """Regression gate: shift `fixed_window` split selection by one
        position and the differential checker must report an epsilon-bound
        violation against the exact V-optimal DP."""
        original = FixedWindowHistogramBuilder._best_split

        def off_by_one(self, c, k):
            split = original(self, c, k)
            return max(1, split - 1) if split > 1 else split

        with mock.patch.object(
            FixedWindowHistogramBuilder, "_best_split", off_by_one
        ):
            result = DifferentialChecker(
                "fixed_window",
                BACKEND_PARAMS["fixed_window"],
                profile="spike",
                seed=0,
                total_points=512,
            ).run()
        assert not result.passed
        assert {"epsilon-bound"} <= {v.check for v in result.violations}

    def test_corrupted_quantile_answers_fail_rank_check(self):
        original = GKQuantileSummary.query

        def shifted(self, fraction):
            return original(self, min(1.0, fraction * 0.5 + 0.4))

        with mock.patch.object(GKQuantileSummary, "query", shifted):
            result = DifferentialChecker(
                "gk_quantiles",
                BACKEND_PARAMS["gk_quantiles"],
                profile="permutation",
                seed=2,
                total_points=512,
            ).run()
        assert not result.passed
        assert {"quantile-rank"} <= {v.check for v in result.violations}

    def test_dropped_points_fail_chunking_equivalence(self):
        """A maintainer that silently drops one point of every split batch
        diverges from its whole-batch twin."""
        original = FixedWindowHistogramBuilder.extend

        def lossy(self, values):
            values = np.asarray(values, dtype=np.float64)
            original(self, values[:-1] if values.size > 3 else values)

        with mock.patch.object(FixedWindowHistogramBuilder, "extend", lossy):
            result = DifferentialChecker(
                "fixed_window",
                BACKEND_PARAMS["fixed_window"],
                profile="uniform",
                seed=4,
                total_points=256,
            ).run()
        assert not result.passed


class TestCommandLine:
    def test_quick_single_backend_exits_zero(self, capsys):
        code = verify_main(["--quick", "--backend", "exact", "--points", "128"])
        assert code == 0
        assert "CERTIFIED" in capsys.readouterr().out

    def test_report_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = verify_main(
            ["--quick", "--backend", "reservoir", "--points", "96",
             "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert payload["backends"] == ["reservoir"]

    def test_list_prints_grid_without_running(self, capsys):
        code = verify_main(["--list", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "22 cases" in out

    def test_rejects_bad_points(self, capsys):
        assert verify_main(["--points", "0"]) == 2

    def test_exits_nonzero_on_violation(self, capsys):
        original = FixedWindowHistogramBuilder._best_split

        def off_by_one(self, c, k):
            split = original(self, c, k)
            return max(1, split - 1) if split > 1 else split

        with mock.patch.object(
            FixedWindowHistogramBuilder, "_best_split", off_by_one
        ):
            code = verify_main(
                ["--quick", "--backend", "fixed_window", "--points", "512"]
            )
        assert code == 1
        assert "VIOLATIONS FOUND" in capsys.readouterr().out


class TestServiceCertify:
    def test_certify_monitored_stream(self):
        with StreamService() as service:
            service.create_stream(
                "hist",
                spec=StreamSpec(
                    backend="fixed_window",
                    params=BACKEND_PARAMS["fixed_window"],
                    accuracy=dict(epsilon=0.25, window_size=64, check_every=64),
                ),
            )
            rng = np.random.default_rng(21)
            for _ in range(6):
                service.ingest("hist", rng.integers(0, 50, 50).astype(float))
            report = service.certify("hist", points=256)
        assert report["passed"] is True
        assert report["restore_identity"] is True
        assert report["live_accuracy"]["within_bound"] is True
        assert report["differential"]["passed"] is True
        json.dumps(report)  # JSON-serializable end to end

    def test_certify_without_monitor(self):
        with StreamService() as service:
            service.create_stream(
                "q", backend="gk_quantiles", params=BACKEND_PARAMS["gk_quantiles"]
            )
            service.ingest("q", np.arange(300.0))
            report = service.certify("q", profile="sorted", points=256)
        assert report["passed"] is True
        assert report["live_accuracy"] is None

    def test_certify_records_a_span(self):
        with StreamService() as service:
            service.create_stream(
                "s", backend="exact", params=BACKEND_PARAMS["exact"]
            )
            service.ingest("s", np.arange(64.0))
            service.certify("s", points=128)
            assert len(service.spans(stage="certify")) == 1


class CertifiedStreamMachine(RuleBasedStateMachine):
    """Interleave ingest / maintain / checkpoint / crash / query against
    the exact V-optimal oracle.

    A crash rolls the maintainer back to the last checkpoint *and* the
    mirrored history back to the same arrival, so every audit compares
    the maintainer against exactly the stream it should have absorbed.
    """

    PARAMS = dict(window_size=32, num_buckets=4, epsilon=0.5)

    def __init__(self):
        super().__init__()
        self.maintainer = make_maintainer("fixed_window", **self.PARAMS)
        self.history: list[float] = []
        self.snapshot: tuple[dict, int] | None = None

    @rule(points=st.lists(st.integers(0, 50), min_size=1, max_size=8))
    def ingest(self, points):
        batch = np.asarray(points, dtype=np.float64)
        self.maintainer.extend(batch)
        self.history.extend(batch.tolist())

    @rule()
    def maintain(self):
        if self.history:
            self.maintainer.maintain()

    @rule()
    def checkpoint(self):
        if not self.history:
            return
        self.maintainer.maintain()
        payload = json.loads(json.dumps(self.maintainer.state_dict()))
        self.snapshot = (payload, len(self.history))

    @rule()
    def crash_and_restore(self):
        if self.snapshot is None:
            return
        payload, arrival = self.snapshot
        self.maintainer = make_maintainer("fixed_window", **self.PARAMS)
        self.maintainer.load_state_dict(json.loads(json.dumps(payload)))
        self.history = self.history[:arrival]

    @rule()
    def audit(self):
        if not self.history:
            return
        oracle = oracle_for("fixed_window", self.PARAMS)
        oracle.extend(np.asarray(self.history, dtype=np.float64))
        violations = oracle.check(self.maintainer)
        assert not violations, [str(v) for v in violations]


CertifiedStreamMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestCertifiedStreamMachine = CertifiedStreamMachine.TestCase
