"""Tests for the similarity-search subsystem (repro.similarity)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import timeseries_collection
from repro.similarity import (
    APCAReducer,
    PAAReducer,
    SeriesIndex,
    SubsequenceIndex,
    VOptimalReducer,
    apca,
    euclidean,
    lower_bound_distance,
    project_onto,
)

series_pairs = st.integers(8, 48).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(-20, 20, allow_nan=False, allow_infinity=False),
                 min_size=n, max_size=n),
        st.lists(st.floats(-20, 20, allow_nan=False, allow_infinity=False),
                 min_size=n, max_size=n),
        st.integers(1, 6),
    )
)


class TestAPCA:
    def test_validates(self):
        with pytest.raises(ValueError):
            apca([], 2)
        with pytest.raises(ValueError):
            apca([1.0, 2.0], 0)

    def test_budget_respected(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=64).cumsum()
        for segments in (1, 3, 8):
            histogram = apca(values, segments)
            assert histogram.num_buckets <= segments
            assert len(histogram) == 64

    def test_generous_budget_exact(self):
        values = np.asarray([1.0, 5.0, 2.0])
        histogram = apca(values, 10)
        assert histogram.sse(values) == 0.0

    def test_vopt_beats_apca_on_non_dyadic_plateaus(self, step_sequence):
        """APCA's Haar seeding cannot always place non-dyadic boundaries --
        the exact regime where the paper's V-optimal features win."""
        from repro.core.optimal import optimal_histogram

        apca_error = apca(step_sequence, 3).sse(step_sequence)
        vopt_error = optimal_histogram(step_sequence, 3).sse(step_sequence)
        assert vopt_error == pytest.approx(0.0, abs=1e-9)
        assert apca_error >= vopt_error

    def test_segments_use_exact_means(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=32)
        histogram = apca(values, 4)
        for bucket in histogram.buckets:
            assert bucket.value == pytest.approx(
                values[bucket.start : bucket.end + 1].mean(), abs=1e-9
            )

    def test_error_decreases_with_budget(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=128).cumsum()
        errors = [apca(values, m).sse(values) for m in (2, 4, 8, 16)]
        for coarse, fine in zip(errors, errors[1:]):
            assert fine <= coarse + 1e-9


class TestDistances:
    def test_euclidean_basic(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == 5.0
        with pytest.raises(ValueError):
            euclidean([1.0], [1.0, 2.0])

    def test_project_onto(self):
        from repro.core.bucket import Histogram

        representation = Histogram.from_boundaries([0.0, 0.0, 4.0, 4.0], [1])
        means = project_onto([2.0, 4.0, 6.0, 8.0], representation)
        assert list(means) == [3.0, 7.0]
        with pytest.raises(ValueError):
            project_onto([1.0, 2.0], representation)

    def test_lower_bound_zero_for_identical(self):
        values = np.asarray([1.0, 1.0, 5.0, 5.0])
        from repro.core.bucket import Histogram

        representation = Histogram.from_boundaries(values, [1])
        assert lower_bound_distance(values, representation) == pytest.approx(0.0)

    @given(series_pairs, st.sampled_from(["vopt", "apca", "paa"]))
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_never_exceeds_true_distance(self, pair, method):
        """No false dismissals: LB(Q, repr(C)) <= ED(Q, C)."""
        query_list, candidate_list, budget = pair
        query = np.asarray(query_list)
        candidate = np.asarray(candidate_list)
        reducer = {
            "vopt": VOptimalReducer(2 * budget),
            "apca": APCAReducer(2 * budget),
            "paa": PAAReducer(budget),
        }[method]
        representation = reducer.reduce(candidate)
        bound = lower_bound_distance(query, representation)
        assert bound <= euclidean(query, candidate) + 1e-6


class TestReducers:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            VOptimalReducer(1)
        with pytest.raises(ValueError):
            APCAReducer(0)
        with pytest.raises(ValueError):
            PAAReducer(0)

    def test_adaptive_budget_halved(self):
        assert VOptimalReducer(16).segments == 8
        assert APCAReducer(17).segments == 8
        assert PAAReducer(16).segments == 16

    def test_vopt_with_epsilon(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 50, size=40).astype(float)
        exact = VOptimalReducer(8).reduce(values)
        approx = VOptimalReducer(8, epsilon=0.1).reduce(values)
        assert approx.sse(values) <= 1.1 * exact.sse(values) + 1e-6


class TestSeriesIndex:
    @pytest.fixture
    def collection(self) -> np.ndarray:
        return timeseries_collection(40, 64, seed=9)

    def test_add_validates_shapes(self, collection):
        index = SeriesIndex(PAAReducer(8))
        index.add(collection[0])
        with pytest.raises(ValueError):
            index.add(collection[0][:32])
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 2)))

    def test_len_and_representation(self, collection):
        index = SeriesIndex(VOptimalReducer(8))
        index.add_all(collection)
        assert len(index) == 40
        assert index.representation(0).num_buckets <= 4

    @pytest.mark.parametrize(
        "reducer",
        [VOptimalReducer(12), VOptimalReducer(12, epsilon=0.2),
         APCAReducer(12), PAAReducer(12)],
    )
    def test_range_search_exact_answers(self, collection, reducer):
        """Filter-and-refine returns exactly the brute-force answer set."""
        index = SeriesIndex(reducer)
        index.add_all(collection)
        query = collection[3] + 0.01
        radius = float(np.median([euclidean(query, s) for s in collection])) * 0.5
        outcome = index.range_search(query, radius)
        expected = sorted(
            i for i, s in enumerate(collection) if euclidean(query, s) <= radius
        )
        assert sorted(i for i, _ in outcome.matches) == expected
        assert outcome.false_positives == outcome.candidates_verified - len(expected)
        assert outcome.pruned + outcome.candidates_verified == len(collection)

    def test_knn_search_exact(self, collection):
        index = SeriesIndex(VOptimalReducer(12))
        index.add_all(collection)
        query = collection[7] + 0.05
        outcome = index.knn_search(query, 5)
        truth = sorted(
            ((euclidean(query, s), i) for i, s in enumerate(collection))
        )[:5]
        assert [d for _, d in outcome.matches] == pytest.approx(
            [d for d, _ in truth]
        )
        assert outcome.candidates_verified >= 5

    def test_knn_validation(self, collection):
        index = SeriesIndex(PAAReducer(4))
        index.add_all(collection)
        with pytest.raises(ValueError):
            index.knn_search(collection[0], 0)
        with pytest.raises(ValueError):
            index.knn_search(collection[0], 41)

    def test_range_search_validation(self, collection):
        index = SeriesIndex(PAAReducer(4))
        index.add_all(collection)
        with pytest.raises(ValueError):
            index.range_search(collection[0], -1.0)

    def test_precision_property(self, collection):
        index = SeriesIndex(VOptimalReducer(12))
        index.add_all(collection)
        outcome = index.knn_search(collection[0], 3)
        assert 0.0 < outcome.precision <= 1.0


class TestZNormalization:
    def test_znormalize_properties(self):
        from repro.similarity import znormalize

        rng = np.random.default_rng(20)
        series = rng.normal(5.0, 3.0, 64)
        normalized = znormalize(series)
        assert normalized.mean() == pytest.approx(0.0, abs=1e-9)
        assert normalized.std() == pytest.approx(1.0, abs=1e-9)
        assert np.allclose(znormalize([7.0, 7.0, 7.0]), 0.0)

    def test_normalized_index_is_offset_and_scale_invariant(self):
        collection = timeseries_collection(30, 64, seed=21)
        index = SeriesIndex(VOptimalReducer(12), normalize=True)
        index.add_all(collection)
        base = collection[5]
        shifted = 3.0 * base + 100.0  # same shape, different offset/scale
        outcome = index.knn_search(shifted, 1)
        assert outcome.matches[0][0] == 5
        assert outcome.matches[0][1] == pytest.approx(0.0, abs=1e-6)

    def test_unnormalized_index_is_not_invariant(self):
        collection = timeseries_collection(30, 64, seed=21)
        index = SeriesIndex(VOptimalReducer(12), normalize=False)
        index.add_all(collection)
        shifted = 3.0 * collection[5] + 100.0
        outcome = index.knn_search(shifted, 1)
        assert outcome.matches[0][1] > 1.0  # raw distance is large

    def test_normalized_search_still_exact(self):
        from repro.similarity import znormalize

        collection = timeseries_collection(25, 64, seed=22)
        index = SeriesIndex(APCAReducer(12), normalize=True)
        index.add_all(collection)
        query = collection[2] + 0.01
        outcome = index.knn_search(query, 4)
        normalized_query = znormalize(query)
        truth = sorted(
            (euclidean(normalized_query, znormalize(s)), i)
            for i, s in enumerate(collection)
        )[:4]
        assert [d for _, d in outcome.matches] == pytest.approx(
            [d for d, _ in truth]
        )


class TestSubsequenceIndex:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            SubsequenceIndex(np.arange(10.0), 11, PAAReducer(4))
        with pytest.raises(ValueError):
            SubsequenceIndex(np.arange(10.0), 4, PAAReducer(4), stride=0)

    def test_offsets_with_stride(self):
        index = SubsequenceIndex(np.arange(20.0), 8, PAAReducer(4), stride=4)
        assert len(index) == 4  # offsets 0, 4, 8, 12

    def test_range_search_exact(self):
        rng = np.random.default_rng(10)
        stream = rng.normal(size=300).cumsum()
        index = SubsequenceIndex(stream, 50, VOptimalReducer(10), stride=5)
        pattern = stream[100:150] + rng.normal(0, 0.05, 50)
        radius = 2.0
        outcome = index.range_search(pattern, radius)
        expected = [
            offset
            for offset in range(0, 251, 5)
            if euclidean(pattern, stream[offset : offset + 50]) <= radius
        ]
        assert [m.offset for m in outcome.matches] and sorted(
            m.offset for m in outcome.matches
        ) == expected

    def test_pattern_length_checked(self):
        index = SubsequenceIndex(np.arange(20.0), 8, PAAReducer(4))
        with pytest.raises(ValueError):
            index.range_search(np.arange(9.0), 1.0)
        with pytest.raises(ValueError):
            index.range_search(np.arange(8.0), -1.0)

    def test_normalized_subsequence_matching(self):
        """A scaled+shifted copy of a window is found only when normalizing."""
        rng = np.random.default_rng(13)
        stream = rng.normal(size=200).cumsum()
        index_raw = SubsequenceIndex(stream, 40, PAAReducer(8), stride=10)
        index_norm = SubsequenceIndex(
            stream, 40, PAAReducer(8), stride=10, normalize=True
        )
        pattern = 5.0 * stream[50:90] + 40.0  # same shape, new offset/scale
        raw = index_raw.range_search(pattern, 1.0)
        normalized = index_norm.range_search(pattern, 1.0)
        assert not raw.matches
        assert any(match.offset == 50 for match in normalized.matches)

    def test_stream_builder_matches_offline_windows(self):
        """The streaming construction indexes every stride-aligned window."""
        rng = np.random.default_rng(11)
        stream = rng.integers(0, 50, size=200).astype(float)
        index = SubsequenceIndex.from_stream_builder(
            stream, 32, num_buckets=4, epsilon=0.2, stride=8
        )
        assert len(index) == len(range(0, 169, 8))
        # Each stored representation approximates its window within (1+eps).
        from repro.core.optimal import optimal_error

        for slot in range(0, len(index), 5):
            offset = slot * 8
            window = stream[offset : offset + 32]
            representation = index._representations[slot]
            assert representation.sse(window) <= 1.2 * optimal_error(window, 4) + 1e-6
