"""Tests for the experiment harness (repro.bench): table machinery plus a
tiny-scale integration run of every experiment the benchmarks use."""

from __future__ import annotations

import math

import pytest

from repro.bench import (
    ResultTable,
    Stopwatch,
    agglomerative_vs_optimal,
    agglomerative_vs_wavelet,
    epsilon_ablation,
    fig6_accuracy,
    fig6_time,
    interval_growth_ablation,
    scaling_ablation,
    similarity_subsequence,
    similarity_whole,
    time_call,
)


class TestResultTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            ResultTable("t", [])

    def test_rejects_unknown_and_missing(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(a=1)
        with pytest.raises(ValueError):
            table.add_row(a=1, b=2, c=3)

    def test_round_trip(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=3, b=0.0001)
        assert len(table) == 2
        assert table.column("a") == [1, 3]
        assert table.rows()[0] == {"a": 1, "b": 2.5}
        with pytest.raises(KeyError):
            table.column("z")

    def test_render_contains_everything(self):
        table = ResultTable("My title", ["metric", "value"])
        table.add_row(metric="x", value=1.25)
        text = table.render()
        assert "My title" in text
        assert "metric" in text and "value" in text
        assert "1.25" in text

    def test_tsv(self):
        table = ResultTable("t", ["a"])
        table.add_row(a=7)
        assert table.to_tsv() == "a\n7"

    def test_str_is_render(self):
        table = ResultTable("t", ["a"])
        assert str(table) == table.render()


class TestTiming:
    def test_time_call(self):
        result, elapsed = time_call(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0.0

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            sum(range(1000))
        assert watch.elapsed >= first


class TestExperimentsTinyScale:
    """Every experiment must run end to end and produce sane shapes."""

    def test_fig6_accuracy(self):
        table = fig6_accuracy(
            0.5, window_sizes=(64,), bucket_counts=(4,), stream_extra=128,
            evaluations=2, queries_per_evaluation=8,
        )
        assert len(table) == 1
        row = table.rows()[0]
        assert row["exact"] == 0.0
        assert row["histogram"] >= 0.0
        assert row["wavelet"] >= 0.0

    def test_fig6_time(self):
        table = fig6_time(0.5, window_sizes=(64,), bucket_counts=(4,), arrivals=5)
        row = table.rows()[0]
        assert row["histogram_ms"] > 0.0
        assert row["wavelet_ms"] > 0.0
        assert row["herror_evals"] > 0

    def test_agglomerative_vs_wavelet(self):
        table = agglomerative_vs_wavelet(400, (4,), 0.5, queries=20)
        row = table.rows()[0]
        assert row["agg_err"] >= 0.0 and row["wav_err"] >= 0.0
        assert row["agg_seconds"] > 0.0

    def test_agglomerative_vs_optimal(self):
        table = agglomerative_vs_optimal(
            domains=(64,), rows_per_domain=2000, num_buckets=8, queries=10,
        )
        row = table.rows()[0]
        assert row["err_optimal"] >= 0.0
        assert row["err_approx"] >= 0.0
        assert row["speedup"] > 0.0

    def test_similarity_whole(self):
        table = similarity_whole(count=20, length=64, budget=8, num_queries=3, k=3)
        assert len(table) == 4
        for row in table:
            assert row["false_positives"] >= 0
            assert row["verified"] >= 3 * 3  # at least k per query

    def test_similarity_subsequence(self):
        table = similarity_subsequence(
            stream_length=512, window_length=64, budget=8, stride=32, num_queries=2,
        )
        assert len(table) == 3
        for row in table:
            assert row["verified"] >= row["matches"]

    def test_epsilon_ablation(self):
        table = epsilon_ablation(64, 4, (1.0, 0.25), arrivals=4)
        ratios = table.column("sse_ratio")
        assert all(r <= 2.0 + 1e-9 for r in ratios)
        assert all(r >= 1.0 - 1e-9 for r in ratios)

    def test_scaling_ablation(self):
        table = scaling_ablation((32, 64), 4, 0.5, arrivals=3, max_dp_window=32)
        rows = table.rows()
        assert rows[0]["dp_ms"] > 0.0
        assert math.isnan(rows[1]["dp_ms"])  # skipped above the DP cap
        assert all(row["fw_ms"] > 0.0 for row in rows)

    def test_interval_growth_ablation(self):
        table = interval_growth_ablation((64, 128), 4, (0.5,))
        counts = table.column("mean_intervals")
        assert all(count >= 1 for count in counts)

    def test_aggregate_variants(self):
        from repro.bench import aggregate_variants

        table = aggregate_variants(window=64, num_buckets=6, queries=20)
        assert sorted(table.column("aggregate")) == [
            "point", "range_avg", "range_sum",
        ]
        for row in table:
            assert row["histogram_rel_err"] >= 0.0

    def test_heuristic_quality(self):
        from repro.bench import heuristic_quality

        table = heuristic_quality((128,), 8)
        row = table.rows()[0]
        assert row["approx"] >= 1.0 - 1e-9
        assert row["maxdiff"] >= 1.0 - 1e-9

    def test_change_detection(self):
        from repro.bench import change_detection

        table = change_detection(
            window_sizes=(64,), num_changes=2, segment_length=500,
        )
        row = table.rows()[0]
        assert 0.0 <= row["recall"] <= 1.0
        assert row["spurious_per_1k"] >= 0.0

    def test_span_breakdown(self):
        from repro.bench import span_breakdown

        table = span_breakdown(
            window=64, num_buckets=6, queries_per_band=10,
            bands=((1, 8), (8, 32)),
        )
        assert len(table) == 2

    def test_space_accuracy_sweep(self):
        from repro.bench import space_accuracy_sweep

        table = space_accuracy_sweep(length=128, budgets=(4, 8))
        for row in table:
            assert row["approx"] >= 1.0 - 1e-9

    def test_maintenance_cadence(self):
        from repro.bench import maintenance_cadence

        table = maintenance_cadence(
            window=64, cadences=(1, 8), arrivals=64,
            queries_per_checkpoint=4,
        )
        rows = table.rows()
        assert rows[0]["ms_per_arrival"] > rows[1]["ms_per_arrival"]

    def test_workload_aware(self):
        from repro.bench import workload_aware

        table = workload_aware(window=128, num_buckets=6, queries=40)
        rows = {row["histogram"]: row for row in table}
        assert set(rows) == {"plain", "workload-aware"}
