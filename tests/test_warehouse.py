"""Tests for the warehouse AQP subsystem (repro.warehouse)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import warehouse_measure_column
from repro.warehouse import AttributeSummary, Relation


class TestRelation:
    def test_validates_columns(self):
        with pytest.raises(ValueError):
            Relation({})
        with pytest.raises(ValueError):
            Relation({"a": [1.0, 2.0], "b": [1.0]})

    def test_basic_accessors(self):
        relation = Relation({"x": [1.0, 2.0, 3.0]})
        assert len(relation) == 3
        assert relation.column_names == ["x"]
        assert list(relation.column("x")) == [1.0, 2.0, 3.0]
        with pytest.raises(KeyError):
            relation.column("y")

    def test_column_copies_are_isolated(self):
        source = np.asarray([1.0, 2.0])
        relation = Relation({"x": source})
        source[0] = 99.0
        assert relation.column("x")[0] == 1.0
        relation.column("x")[0] = 77.0
        assert relation.column("x")[0] == 1.0

    def test_exact_aggregates(self):
        relation = Relation({"x": [1.0, 5.0, 5.0, 9.0]})
        assert relation.count_range("x", 2, 6) == 2
        assert relation.sum_range("x", 2, 6) == 10.0
        assert relation.count_range("x", 100, 200) == 0

    def test_frequency_vector(self):
        relation = Relation({"x": [0.0, 2.0, 2.0, 5.0]})
        assert list(relation.frequency_vector("x")) == [1, 0, 2, 0, 0, 1]

    def test_frequency_vector_validation(self):
        with pytest.raises(ValueError):
            Relation({"x": [-1.0, 2.0]}).frequency_vector("x")
        with pytest.raises(ValueError):
            Relation({"x": [1.5, 2.0]}).frequency_vector("x")

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=100), st.data())
    @settings(max_examples=40)
    def test_frequency_vector_consistent_with_counts(self, values, data):
        relation = Relation({"x": [float(v) for v in values]})
        frequencies = relation.frequency_vector("x")
        low = data.draw(st.integers(0, 30))
        high = data.draw(st.integers(low, 31))
        expected = relation.count_range("x", low, high)
        clipped_high = min(high, frequencies.size - 1)
        total = frequencies[low : clipped_high + 1].sum() if low < frequencies.size else 0
        assert total == expected


class TestAttributeSummary:
    @pytest.fixture
    def relation(self) -> Relation:
        return Relation({"usage": warehouse_measure_column(20000, seed=3)})

    def test_unknown_method(self, relation):
        with pytest.raises(ValueError):
            AttributeSummary.build(relation, "usage", 8, method="magic")

    @pytest.mark.parametrize("method", ["optimal", "approximate", "equal_width", "maxdiff"])
    def test_build_methods(self, relation, method):
        summary = AttributeSummary.build(relation, "usage", 16, method=method)
        assert summary.histogram.num_buckets <= 16
        assert summary.rows == len(relation)
        assert summary.domain_size == relation.frequency_vector("usage").size

    def test_count_estimates_reasonable(self, relation):
        summary = AttributeSummary.build(relation, "usage", 32, method="optimal")
        total_estimate = summary.estimate_count(0, summary.domain_size)
        assert total_estimate == pytest.approx(len(relation), rel=1e-6)

    def test_count_empty_range(self, relation):
        summary = AttributeSummary.build(relation, "usage", 8)
        assert summary.estimate_count(5000, 6000) == 0.0
        assert summary.estimate_count(7.5, 7.2) == 0.0

    def test_selectivity_in_unit_interval(self, relation):
        summary = AttributeSummary.build(relation, "usage", 16)
        for low, high in [(0, 10), (100, 500), (0, 2000)]:
            selectivity = summary.estimate_selectivity(low, high)
            assert 0.0 <= selectivity <= 1.0 + 1e-9

    def test_sum_estimate_tracks_exact(self, relation):
        summary = AttributeSummary.build(relation, "usage", 64, method="optimal")
        exact = relation.sum_range("usage", 0, 1000)
        estimate = summary.estimate_sum(0, 1000)
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_average_estimate(self, relation):
        summary = AttributeSummary.build(relation, "usage", 64, method="optimal")
        exact_avg = relation.sum_range("usage", 0, 1000) / relation.count_range(
            "usage", 0, 1000
        )
        assert summary.estimate_average(0, 1000) == pytest.approx(exact_avg, rel=0.1)
        assert summary.estimate_average(5000, 6000) == 0.0

    def test_approximate_close_to_optimal(self, relation):
        """The paper's section 5.2 finding, at test scale."""
        rng = np.random.default_rng(4)
        optimal = AttributeSummary.build(relation, "usage", 24, method="optimal")
        approx = AttributeSummary.build(
            relation, "usage", 24, method="approximate", epsilon=0.1
        )
        errors = {"optimal": 0.0, "approx": 0.0}
        for _ in range(60):
            low = float(rng.integers(0, 900))
            high = low + float(rng.integers(1, 400))
            exact = relation.count_range("usage", low, high)
            errors["optimal"] += abs(optimal.estimate_count(low, high) - exact)
            errors["approx"] += abs(approx.estimate_count(low, high) - exact)
        assert errors["approx"] <= 1.5 * errors["optimal"] + 60.0

    def test_heuristics_worse_than_optimal_on_skew(self, relation):
        rng = np.random.default_rng(5)
        optimal = AttributeSummary.build(relation, "usage", 16, method="optimal")
        width = AttributeSummary.build(relation, "usage", 16, method="equal_width")
        optimal_error = 0.0
        width_error = 0.0
        for _ in range(60):
            low = float(rng.integers(0, 900))
            high = low + float(rng.integers(1, 400))
            exact = relation.count_range("usage", low, high)
            optimal_error += abs(optimal.estimate_count(low, high) - exact)
            width_error += abs(width.estimate_count(low, high) - exact)
        assert optimal_error < width_error
