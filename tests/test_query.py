"""Tests for the query layer (repro.query)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import Histogram
from repro.query import (
    ExactMaintainer,
    HistogramMaintainer,
    PointQuery,
    RandomPointWorkload,
    RandomRangeWorkload,
    RangeQuery,
    StreamQueryEngine,
    WaveletMaintainer,
    evaluate_exact,
    measure_accuracy,
)
from repro.datasets import att_utilization_stream

from .conftest import int_sequences


class TestQueries:
    def test_range_query_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(3, 2)
        with pytest.raises(ValueError):
            RangeQuery(-1, 2)
        with pytest.raises(ValueError):
            RangeQuery(0, 2, aggregate="median")

    def test_point_query_validation(self):
        with pytest.raises(ValueError):
            PointQuery(-1)

    def test_exact_evaluation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert evaluate_exact(RangeQuery(1, 3), values) == 9.0
        assert evaluate_exact(RangeQuery(1, 3, aggregate="avg"), values) == 3.0
        assert evaluate_exact(PointQuery(2), values) == 3.0

    def test_answer_against_histogram(self):
        histogram = Histogram.from_boundaries([2.0, 2.0, 8.0, 8.0], [1])
        assert RangeQuery(0, 3).answer(histogram) == 20.0
        assert RangeQuery(0, 3, aggregate="avg").answer(histogram) == 5.0
        assert PointQuery(3).answer(histogram) == 8.0

    def test_span(self):
        assert RangeQuery(2, 5).span == 4


class TestWorkloads:
    def test_range_workload_bounds(self):
        workload = RandomRangeWorkload(50, seed=1)
        for query in workload.sample(200):
            assert 0 <= query.start <= query.end < 50

    def test_range_workload_deterministic(self):
        first = RandomRangeWorkload(50, seed=2).sample(20)
        second = RandomRangeWorkload(50, seed=2).sample(20)
        assert first == second

    def test_range_workload_spans_vary(self):
        spans = {q.span for q in RandomRangeWorkload(100, seed=3).sample(100)}
        assert len(spans) > 10  # spans drawn uniformly, not constant

    def test_min_span(self):
        workload = RandomRangeWorkload(40, min_span=10, seed=4)
        # Spans are clipped at the window edge but never below min unless clipped.
        for query in workload.sample(100):
            assert query.end == 39 or query.span >= 10

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            RandomRangeWorkload(0)
        with pytest.raises(ValueError):
            RandomRangeWorkload(10, min_span=11)
        with pytest.raises(ValueError):
            RandomRangeWorkload(10).sample(-1)

    def test_point_workload(self):
        workload = RandomPointWorkload(30, seed=5)
        queries = workload.sample(50)
        assert all(0 <= q.position < 30 for q in queries)
        with pytest.raises(ValueError):
            RandomPointWorkload(0)


class TestPositionWeights:
    def test_validates(self):
        from repro.query import position_weights

        with pytest.raises(ValueError):
            position_weights([], 0)
        with pytest.raises(ValueError):
            position_weights([], 5, floor=0.0)

    def test_counts_touches(self):
        from repro.query import position_weights

        queries = [RangeQuery(1, 3), RangeQuery(2, 4), PointQuery(2)]
        weights = position_weights(queries, 6, floor=1.0)
        assert list(weights) == [1.0, 2.0, 4.0, 3.0, 2.0, 1.0]

    def test_out_of_range_queries_clipped(self):
        from repro.query import position_weights

        weights = position_weights([RangeQuery(3, 100), PointQuery(50)], 5)
        assert weights[3] == 2.0 and weights[4] == 2.0
        assert weights[0] == 1.0

    def test_feeds_weighted_metric(self):
        """End to end: hot workloads get better answers with weights."""
        from repro.core import WeightedSSEMetric, optimal_histogram
        from repro.query import position_weights

        values = np.concatenate(
            [np.tile([0.0, 1.0], 16), np.tile([100.0, 300.0], 16)]
        )
        hot = [RangeQuery(0, 7), RangeQuery(4, 12), RangeQuery(8, 15)] * 10
        weights = position_weights(hot, values.size)
        plain = optimal_histogram(values, 4)
        aware = optimal_histogram(
            values, 4, metric=WeightedSSEMetric(values, weights)
        )
        plain_error = measure_accuracy(plain, values, hot).mean_absolute_error
        aware_error = measure_accuracy(aware, values, hot).mean_absolute_error
        assert aware_error <= plain_error + 1e-9


class TestAccuracy:
    def test_requires_queries(self):
        with pytest.raises(ValueError):
            measure_accuracy(Histogram.from_boundaries([1.0], []), [1.0], [])

    def test_exact_synopsis_zero_error(self):
        values = np.asarray([1.0, 5.0, 2.0, 8.0])
        histogram = Histogram.from_boundaries(values, [0, 1, 2])
        queries = RandomRangeWorkload(4, seed=6).sample(50)
        accuracy = measure_accuracy(histogram, values, queries)
        assert accuracy.mean_absolute_error == 0.0
        assert accuracy.max_absolute_error == 0.0
        assert accuracy.root_mean_squared_error == 0.0
        assert accuracy.count == 50

    @given(int_sequences)
    @settings(max_examples=30, deadline=None)
    def test_coarser_synopsis_no_better_on_average(self, values):
        """One bucket can never beat the exact per-point representation."""
        if values.size < 4:
            return
        queries = RandomRangeWorkload(values.size, seed=7).sample(30)
        coarse = Histogram.from_boundaries(values, [])
        fine = Histogram.from_boundaries(values, list(range(values.size - 1)))
        coarse_accuracy = measure_accuracy(coarse, values, queries)
        fine_accuracy = measure_accuracy(fine, values, queries)
        assert fine_accuracy.mean_absolute_error <= 1e-9
        assert coarse_accuracy.mean_absolute_error >= 0.0

    def test_str_rendering(self):
        values = np.asarray([1.0, 2.0])
        histogram = Histogram.from_boundaries(values, [])
        accuracy = measure_accuracy(
            histogram, values, RandomRangeWorkload(2, seed=8).sample(5)
        )
        text = str(accuracy)
        assert "queries" in text and "avg abs" in text


class TestEngine:
    def test_engine_validation(self):
        with pytest.raises(ValueError):
            StreamQueryEngine(0)
        with pytest.raises(ValueError):
            StreamQueryEngine(10, maintain_every=0)

    def test_reports_cover_all_maintainers(self):
        stream = att_utilization_stream(300, seed=1)
        engine = StreamQueryEngine(
            window_size=64, maintain_every=32, evaluate_every=64,
            queries_per_evaluation=8,
        )
        maintainers = [
            ExactMaintainer(64),
            HistogramMaintainer(64, 4, 0.5),
            WaveletMaintainer(64, 4),
        ]
        reports = engine.run(stream, maintainers)
        assert [r.name for r in reports] == [m.name for m in maintainers]
        for report in reports:
            assert report.evaluations
            assert report.maintenance_seconds >= 0.0

    def test_exact_maintainer_is_exact(self):
        stream = att_utilization_stream(200, seed=2)
        engine = StreamQueryEngine(window_size=50, evaluate_every=50,
                                   queries_per_evaluation=10)
        (report,) = engine.run(stream, [ExactMaintainer(50)])
        assert report.mean_absolute_error == 0.0
        assert report.mean_relative_error == 0.0

    def test_histogram_beats_wavelet_at_equal_space(self):
        """The paper's headline accuracy result, at test scale."""
        stream = att_utilization_stream(700, seed=3)
        engine = StreamQueryEngine(window_size=128, maintain_every=128,
                                   evaluate_every=64, queries_per_evaluation=16)
        histogram, wavelet = engine.run(
            stream,
            [HistogramMaintainer(128, 8, 0.2), WaveletMaintainer(128, 8)],
        )
        assert histogram.mean_absolute_error < wavelet.mean_absolute_error

    def test_no_evaluation_before_window_full(self):
        stream = att_utilization_stream(40, seed=4)
        engine = StreamQueryEngine(window_size=64, evaluate_every=8,
                                   queries_per_evaluation=4)
        (report,) = engine.run(stream, [ExactMaintainer(64)])
        assert report.evaluations == []
        with pytest.raises(ValueError):
            _ = report.mean_absolute_error
