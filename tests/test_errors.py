"""Tests for error metrics (repro.core.errors)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import (
    SAEMetric,
    SSEMetric,
    naive_sae,
    naive_sse,
    sse_of_partition,
)

from .conftest import float_sequences, int_sequences


class TestNaiveMetrics:
    def test_empty_is_zero(self):
        assert naive_sse([]) == 0.0
        assert naive_sae([]) == 0.0

    def test_constant_is_zero(self):
        assert naive_sse([3.0, 3.0, 3.0]) == 0.0
        assert naive_sae([3.0, 3.0, 3.0]) == 0.0

    def test_known_sse(self):
        # values 0, 2 -> mean 1 -> SSE = 1 + 1.
        assert naive_sse([0.0, 2.0]) == 2.0

    def test_known_sae(self):
        # values 0, 2, 10 -> median 2 -> SAE = 2 + 0 + 8.
        assert naive_sae([0.0, 2.0, 10.0]) == 10.0

    @given(float_sequences)
    def test_sse_nonnegative(self, values):
        assert naive_sse(values) >= 0.0

    @given(float_sequences)
    def test_mean_minimizes_sse(self, values):
        """Any representative other than the mean does no better."""
        best = naive_sse(values)
        for shift in (-1.0, 0.5, 2.0):
            candidate = float(np.sum((values - (values.mean() + shift)) ** 2))
            assert candidate >= best - 1e-9

    @given(float_sequences)
    def test_median_minimizes_sae(self, values):
        best = naive_sae(values)
        for shift in (-1.0, 0.5, 2.0):
            candidate = float(np.sum(np.abs(values - (np.median(values) + shift))))
            assert candidate >= best - 1e-9


class TestSSEMetric:
    def test_bucket_error_matches_naive(self):
        values = [1.0, 5.0, 2.0, 8.0]
        metric = SSEMetric(values)
        assert metric.bucket_error(1, 3) == pytest.approx(naive_sse(values[1:4]))

    def test_representative_is_mean(self):
        metric = SSEMetric([2.0, 4.0])
        assert metric.representative(0, 1) == 3.0


class TestSAEMetric:
    def test_bucket_error_matches_naive(self):
        values = [1.0, 5.0, 2.0, 8.0]
        metric = SAEMetric(values)
        assert metric.bucket_error(0, 3) == pytest.approx(naive_sae(values))

    def test_representative_is_median(self):
        metric = SAEMetric([1.0, 9.0, 2.0])
        assert metric.representative(0, 2) == 2.0

    def test_out_of_bounds(self):
        metric = SAEMetric([1.0])
        with pytest.raises(IndexError):
            metric.bucket_error(0, 1)
        with pytest.raises(IndexError):
            metric.representative(1, 1)


class TestSSEOfPartition:
    def test_no_splits_is_whole_sse(self):
        values = [1.0, 2.0, 9.0]
        assert sse_of_partition(values, []) == pytest.approx(naive_sse(values))

    def test_full_split_is_zero(self):
        values = [1.0, 2.0, 9.0]
        assert sse_of_partition(values, [0, 1]) == 0.0

    def test_rejects_bad_splits(self):
        with pytest.raises(ValueError):
            sse_of_partition([1.0, 2.0], [1])  # split at last index invalid
        with pytest.raises(ValueError):
            sse_of_partition([1.0, 2.0, 3.0], [1, 0])  # not increasing
        with pytest.raises(ValueError):
            sse_of_partition([1.0, 2.0, 3.0], [0, 0])  # duplicate

    @given(int_sequences, st.data())
    def test_additivity(self, values, data):
        """Partition SSE equals the sum of per-bucket naive SSEs."""
        n = values.size
        if n < 2:
            splits = []
        else:
            splits = sorted(
                data.draw(
                    st.sets(st.integers(0, n - 2), max_size=min(4, n - 1))
                )
            )
        total = sse_of_partition(values, splits)
        expected = 0.0
        start = 0
        for split in splits + [n - 1]:
            expected += naive_sse(values[start : split + 1])
            start = split + 1
        assert total == pytest.approx(expected, abs=1e-9)

    @given(int_sequences, st.data())
    def test_refinement_never_increases_error(self, values, data):
        """Adding a split can only reduce total SSE."""
        n = values.size
        if n < 3:
            return
        split_set = data.draw(st.sets(st.integers(0, n - 2), min_size=1, max_size=4))
        splits = sorted(split_set)
        coarse = sse_of_partition(values, splits[:-1])
        fine = sse_of_partition(values, splits)
        assert fine <= coarse + 1e-9
