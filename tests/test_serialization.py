"""Round-trip tests for synopsis serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import Histogram
from repro.core.optimal import optimal_histogram
from repro.sketches import GKQuantileSummary, ReservoirSample
from repro.warehouse import StreamingEquiDepthSummary
from repro.wavelets import DynamicWaveletHistogram, WaveletSynopsis

from .conftest import int_sequences


class TestHistogramSerialization:
    @given(int_sequences, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, values, buckets):
        histogram = optimal_histogram(values, buckets)
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored == histogram

    def test_json_compatible(self):
        histogram = optimal_histogram([1.0, 1.0, 9.0, 9.0], 2)
        payload = json.loads(json.dumps(histogram.to_dict()))
        assert Histogram.from_dict(payload) == histogram

    def test_rejects_inconsistent_payload(self):
        histogram = optimal_histogram([1.0, 2.0, 3.0], 2)
        payload = histogram.to_dict()
        payload["length"] = 99
        with pytest.raises(ValueError):
            Histogram.from_dict(payload)
        bad = {"length": 2, "ends": [1], "values": [1.0, 2.0]}
        with pytest.raises(ValueError):
            Histogram.from_dict(bad)

    def test_queries_survive_round_trip(self):
        values = np.arange(32.0)
        histogram = optimal_histogram(values, 4)
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored.range_sum(3, 20) == histogram.range_sum(3, 20)
        assert restored.point_estimate(17) == histogram.point_estimate(17)


class TestWaveletSerialization:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        synopsis = WaveletSynopsis.from_values(values, 12)
        restored = WaveletSynopsis.from_dict(synopsis.to_dict())
        assert restored.coefficients == synopsis.coefficients
        assert len(restored) == len(synopsis)
        assert np.allclose(restored.to_array(), synopsis.to_array())

    def test_json_compatible(self):
        synopsis = WaveletSynopsis.from_values(np.arange(16.0), 4)
        payload = json.loads(json.dumps(synopsis.to_dict()))
        restored = WaveletSynopsis.from_dict(payload)
        assert restored.range_sum(2, 9) == pytest.approx(synopsis.range_sum(2, 9))

    def test_rejects_mismatched_payload(self):
        synopsis = WaveletSynopsis.from_values(np.arange(16.0), 4)
        payload = synopsis.to_dict()
        payload["values"] = payload["values"][:-1]
        with pytest.raises(ValueError):
            WaveletSynopsis.from_dict(payload)


class TestGKSerialization:
    @given(int_sequences)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_answers_identically(self, values):
        summary = GKQuantileSummary(0.1)
        summary.extend(values)
        restored = GKQuantileSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert len(restored) == len(summary)
        assert restored.summary_size == summary.summary_size
        for fraction in (0.1, 0.5, 0.9):
            assert restored.query(fraction) == summary.query(fraction)
        probe = float(values[len(values) // 2])
        assert restored.rank_bounds(probe) == summary.rank_bounds(probe)

    @given(int_sequences, int_sequences)
    @settings(max_examples=25, deadline=None)
    def test_resumed_summary_tracks_original(self, head, tail):
        summary = GKQuantileSummary(0.1)
        summary.extend(head)
        restored = GKQuantileSummary.from_dict(summary.to_dict())
        summary.extend(tail)
        restored.extend(tail)
        assert restored.to_dict() == summary.to_dict()

    def test_rejects_inconsistent_payload(self):
        summary = GKQuantileSummary(0.1)
        summary.extend([1.0, 2.0, 3.0])
        payload = summary.to_dict()
        payload["count"] = 1  # fewer points than the tuple gaps account for
        with pytest.raises(ValueError):
            GKQuantileSummary.from_dict(payload)
        unsorted = summary.to_dict()
        unsorted["tuples"] = list(reversed(unsorted["tuples"]))
        with pytest.raises(ValueError):
            GKQuantileSummary.from_dict(unsorted)

    def test_rejects_empty_summary_with_tuples(self):
        summary = GKQuantileSummary(0.1)
        summary.insert(5.0)
        payload = summary.to_dict()
        payload["count"] = 0
        with pytest.raises(ValueError):
            GKQuantileSummary.from_dict(payload)


class TestReservoirSerialization:
    @given(int_sequences, int_sequences)
    @settings(max_examples=25, deadline=None)
    def test_resumption_is_bit_exact(self, head, tail):
        reservoir = ReservoirSample(8, seed=3)
        reservoir.extend(head)
        restored = ReservoirSample.from_dict(
            json.loads(json.dumps(reservoir.to_dict()))
        )
        # The generator state travels with the snapshot: both make the
        # same replacement decisions on the remaining stream.
        reservoir.extend(tail)
        restored.extend(tail)
        assert list(restored.values()) == list(reservoir.values())
        assert len(restored) == len(reservoir)

    def test_rejects_inconsistent_payload(self):
        reservoir = ReservoirSample(4, seed=0)
        reservoir.extend([1.0, 2.0, 3.0])
        payload = reservoir.to_dict()
        payload["sample"] = payload["sample"][:-1]
        with pytest.raises(ValueError):
            ReservoirSample.from_dict(payload)


class TestEquiDepthSerialization:
    @given(int_sequences, int_sequences)
    @settings(max_examples=25, deadline=None)
    def test_resumed_summary_tracks_original(self, head, tail):
        summary = StreamingEquiDepthSummary(4, epsilon=0.1)
        summary.extend(head)
        restored = StreamingEquiDepthSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        summary.extend(tail)
        restored.extend(tail)
        assert restored.histogram() == summary.histogram()
        assert restored.estimate_count(0, 50) == summary.estimate_count(0, 50)

    def test_rejects_negative_max_value(self):
        summary = StreamingEquiDepthSummary(4)
        summary.extend([1.0, 2.0])
        payload = summary.to_dict()
        payload["max_value"] = -1
        with pytest.raises(ValueError):
            StreamingEquiDepthSummary.from_dict(payload)


class TestDynamicWaveletSerialization:
    @given(int_sequences)
    @settings(max_examples=25, deadline=None)
    def test_round_trip(self, values):
        histogram = DynamicWaveletHistogram(128)
        histogram.extend(values.astype(int).tolist())
        restored = DynamicWaveletHistogram.from_dict(
            json.loads(json.dumps(histogram.to_dict()))
        )
        assert len(restored) == len(histogram)
        assert np.allclose(restored.frequencies(), histogram.frequencies())
        assert restored.synopsis(8).to_dict() == histogram.synopsis(8).to_dict()

    def test_rejects_mismatched_coefficients(self):
        histogram = DynamicWaveletHistogram(16)
        histogram.insert(3)
        payload = histogram.to_dict()
        payload["coefficients"] = payload["coefficients"][:-1]
        with pytest.raises(ValueError):
            DynamicWaveletHistogram.from_dict(payload)
