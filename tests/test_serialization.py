"""Round-trip tests for synopsis serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import Histogram
from repro.core.optimal import optimal_histogram
from repro.wavelets import WaveletSynopsis

from .conftest import int_sequences


class TestHistogramSerialization:
    @given(int_sequences, st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, values, buckets):
        histogram = optimal_histogram(values, buckets)
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored == histogram

    def test_json_compatible(self):
        histogram = optimal_histogram([1.0, 1.0, 9.0, 9.0], 2)
        payload = json.loads(json.dumps(histogram.to_dict()))
        assert Histogram.from_dict(payload) == histogram

    def test_rejects_inconsistent_payload(self):
        histogram = optimal_histogram([1.0, 2.0, 3.0], 2)
        payload = histogram.to_dict()
        payload["length"] = 99
        with pytest.raises(ValueError):
            Histogram.from_dict(payload)
        bad = {"length": 2, "ends": [1], "values": [1.0, 2.0]}
        with pytest.raises(ValueError):
            Histogram.from_dict(bad)

    def test_queries_survive_round_trip(self):
        values = np.arange(32.0)
        histogram = optimal_histogram(values, 4)
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored.range_sum(3, 20) == histogram.range_sum(3, 20)
        assert restored.point_estimate(17) == histogram.point_estimate(17)


class TestWaveletSerialization:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        synopsis = WaveletSynopsis.from_values(values, 12)
        restored = WaveletSynopsis.from_dict(synopsis.to_dict())
        assert restored.coefficients == synopsis.coefficients
        assert len(restored) == len(synopsis)
        assert np.allclose(restored.to_array(), synopsis.to_array())

    def test_json_compatible(self):
        synopsis = WaveletSynopsis.from_values(np.arange(16.0), 4)
        payload = json.loads(json.dumps(synopsis.to_dict()))
        restored = WaveletSynopsis.from_dict(payload)
        assert restored.range_sum(2, 9) == pytest.approx(synopsis.range_sum(2, 9))

    def test_rejects_mismatched_payload(self):
        synopsis = WaveletSynopsis.from_values(np.arange(16.0), 4)
        payload = synopsis.to_dict()
        payload["values"] = payload["values"][:-1]
        with pytest.raises(ValueError):
            WaveletSynopsis.from_dict(payload)
