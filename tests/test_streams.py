"""Tests for the stream substrate (repro.streams)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import (
    ArraySource,
    SlidingWindow,
    batched,
    bursty_traffic,
    clickstream_bytes,
    diurnal_utilization,
    fault_sequence,
    gbm_prices,
    level_shifts,
    mixture_stream,
    random_walk,
    take,
    zipf_frequencies,
)

from .conftest import int_point_lists


class TestArraySource:
    def test_replays_values(self):
        source = ArraySource([1.0, 2.0, 3.0])
        assert list(source) == [1.0, 2.0, 3.0]
        assert len(source) == 3

    def test_repeat(self):
        source = ArraySource([1.0, 2.0], repeat=3)
        assert list(source) == [1.0, 2.0] * 3
        assert len(source) == 6

    def test_validates(self):
        with pytest.raises(ValueError):
            ArraySource(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            ArraySource([1.0], repeat=0)


class TestTakeAndBatched:
    def test_take(self):
        assert list(take(itertools.count(), 4)) == [0.0, 1.0, 2.0, 3.0]

    def test_take_validates(self):
        with pytest.raises(ValueError):
            take([1.0], -1)
        with pytest.raises(ValueError):
            take([1.0], 5)  # stream too short

    def test_batched(self):
        batches = list(batched([1, 2, 3, 4, 5], 2))
        assert [list(b) for b in batches] == [[1, 2], [3, 4], [5]]

    def test_batched_validates(self):
        with pytest.raises(ValueError):
            list(batched([1], 0))


class TestSlidingWindow:
    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_fill_then_slide(self):
        window = SlidingWindow(3)
        assert window.append(1.0) is None
        assert window.append(2.0) is None
        assert window.append(3.0) is None
        assert window.is_full
        assert window.append(4.0) == 1.0  # evicts the oldest
        assert list(window.values()) == [2.0, 3.0, 4.0]

    def test_getitem_relative(self):
        window = SlidingWindow(3)
        window.extend([1.0, 2.0, 3.0, 4.0])
        assert window[0] == 2.0
        assert window[-1] == 4.0
        with pytest.raises(IndexError):
            _ = window[3]

    def test_partial_window(self):
        window = SlidingWindow(5)
        window.extend([7.0, 8.0])
        assert len(window) == 2
        assert not window.is_full
        assert list(window.values()) == [7.0, 8.0]

    @given(st.integers(1, 10), int_point_lists)
    @settings(max_examples=50)
    def test_always_holds_last_k(self, capacity, points):
        window = SlidingWindow(capacity)
        for index, point in enumerate(points):
            window.append(float(point))
            expected = points[max(0, index + 1 - capacity) : index + 1]
            assert list(window.values()) == [float(p) for p in expected]
            assert window[0] == float(expected[0])


class TestSyntheticGenerators:
    GENERATORS = [
        random_walk,
        level_shifts,
        bursty_traffic,
        diurnal_utilization,
        zipf_frequencies,
        gbm_prices,
        fault_sequence,
        clickstream_bytes,
        mixture_stream,
    ]

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_deterministic_given_seed(self, generator):
        first = take(generator(seed=9), 64)
        second = take(generator(seed=9), 64)
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_different_seeds_differ(self, generator):
        first = take(generator(seed=1), 64)
        second = take(generator(seed=2), 64)
        assert not np.array_equal(first, second)

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_accepts_explicit_generator(self, generator):
        """``seed`` may be a Generator, used as-is: a fresh Generator with
        the same seed reproduces the stream, and driving two streams off
        one shared Generator advances it (the streams interleave)."""
        first = take(generator(seed=np.random.default_rng(9)), 64)
        second = take(generator(seed=np.random.default_rng(9)), 64)
        assert np.array_equal(first, second)
        assert np.array_equal(first, take(generator(seed=9), 64))
        shared = np.random.default_rng(9)
        take(generator(seed=shared), 16)
        continued = take(generator(seed=shared), 64)
        assert not np.array_equal(first, continued)

    @pytest.mark.parametrize(
        "generator",
        [random_walk, level_shifts, bursty_traffic, diurnal_utilization,
         zipf_frequencies, fault_sequence, clickstream_bytes, mixture_stream],
    )
    def test_integer_quantization(self, generator):
        values = take(generator(seed=3), 128)
        assert np.array_equal(values, np.round(values))
        assert np.all(values >= 0)

    def test_random_walk_bounded(self):
        values = take(random_walk(seed=4, low=0, high=50, start=25), 500)
        assert values.min() >= 0
        assert values.max() <= 50

    def test_level_shifts_has_plateaus(self):
        values = take(level_shifts(seed=5, noise=0.0), 400)
        # With zero noise the stream is piecewise constant: few distinct runs.
        runs = 1 + int(np.count_nonzero(np.diff(values)))
        assert runs < 40

    def test_bursty_traffic_has_bursts(self):
        values = take(bursty_traffic(seed=6), 2000)
        assert values.max() > 5 * np.median(values)

    def test_diurnal_period_visible(self):
        values = take(diurnal_utilization(seed=7, noise=0.0), 576)
        # Two full periods: correlation with a 288-shift is high.
        first, second = values[:288], values[288:]
        assert np.corrcoef(first, second)[0, 1] > 0.99

    def test_zipf_skew(self):
        values = take(zipf_frequencies(seed=8), 4000)
        # Heavy tail: the 99th percentile dwarfs the median.
        assert np.percentile(values, 99) > 10 * np.median(values)
        assert values.max() > 100

    def test_gbm_positive(self):
        values = take(gbm_prices(seed=9), 1000)
        assert np.all(values > 0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            take(level_shifts(dwell=0), 1)
        with pytest.raises(ValueError):
            take(diurnal_utilization(period=1), 1)
        with pytest.raises(ValueError):
            take(zipf_frequencies(alpha=1.0), 1)
        with pytest.raises(ValueError):
            take(fault_sequence(base_rate=-1.0), 1)
        with pytest.raises(ValueError):
            take(clickstream_bytes(session_rate=2.0), 1)

    def test_fault_sequence_is_sparse_with_storms(self):
        values = take(fault_sequence(seed=11), 6000)
        assert np.median(values) <= 2
        assert values.max() > 10  # at least one storm interval

    def test_clickstream_heavy_tailed(self):
        values = take(clickstream_bytes(seed=12), 2000)
        assert np.all(values >= 0)
        assert np.percentile(values, 99) > 5 * max(np.median(values), 1.0)
