"""Tests for interval covers and certificates (repro.core.intervals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.intervals import Certificate, StreamingIntervalQueue


class TestCertificate:
    def test_single_bucket(self):
        certificate = Certificate.single_bucket(4, 10.0, 2.5)
        assert certificate.num_buckets == 1
        assert certificate.splits == ()
        assert certificate.error == 2.5

    def test_singletons(self):
        certificate = Certificate.singletons([3.0, 7.0, 1.0])
        assert certificate.num_buckets == 3
        assert certificate.splits == (0, 1)
        assert certificate.error == 0.0
        histogram = certificate.to_histogram()
        assert list(histogram.to_array()) == [3.0, 7.0, 1.0]

    def test_singletons_rejects_empty(self):
        with pytest.raises(ValueError):
            Certificate.singletons([])

    def test_extend(self):
        base = Certificate.single_bucket(2, 6.0, 0.0)  # [0..2], sum 6
        extended = base.extend(5, 30.0, 4.0)  # bucket [3..5] of sum 30
        assert extended.splits == (2,)
        assert extended.bucket_sums == (6.0, 30.0)
        assert extended.error == 4.0
        assert extended.num_buckets == 2

    def test_extend_rejects_non_increasing_end(self):
        base = Certificate.single_bucket(3, 1.0, 0.0)
        with pytest.raises(ValueError):
            base.extend(3, 1.0, 0.0)

    def test_to_histogram_means(self):
        certificate = Certificate(3, (1,), (4.0, 10.0), 0.0)
        histogram = certificate.to_histogram()
        assert histogram.buckets[0].value == 2.0  # 4 over 2 positions
        assert histogram.buckets[1].value == 5.0  # 10 over 2 positions


class TestStreamingIntervalQueue:
    def _observe_sequence(self, queue, herrors):
        """Feed a synthetic HERROR sequence with dummy sums."""
        running = 0.0
        for index, herror in enumerate(herrors):
            running += 1.0
            queue.observe(
                index,
                herror,
                running,
                running,
                Certificate.single_bucket(index, running, herror),
            )

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            StreamingIntervalQueue(-0.1)

    def test_growth_rule_opens_intervals(self):
        queue = StreamingIntervalQueue(0.5)
        # herrors: 1 -> (1.5 boundary) 2 opens, 2.9 extends, 10 opens.
        self._observe_sequence(queue, [1.0, 2.0, 2.9, 10.0])
        assert len(queue) == 3
        assert queue.interval_bounds() == [(0, 0), (1, 2), (3, 3)]

    def test_zero_herror_run_stays_one_interval(self):
        queue = StreamingIntervalQueue(0.5)
        self._observe_sequence(queue, [0.0, 0.0, 0.0, 0.0])
        assert len(queue) == 1
        assert queue.interval_bounds() == [(0, 3)]

    def test_endpoints_track_extension(self):
        queue = StreamingIntervalQueue(1.0)
        self._observe_sequence(queue, [1.0, 1.5, 2.0])
        assert list(queue.endpoints()) == [2]

    def test_capacity_growth(self):
        queue = StreamingIntervalQueue(0.0)
        # delta == 0: every strictly increasing value opens an interval.
        self._observe_sequence(queue, [float(i) for i in range(1, 200)])
        assert len(queue) == 199

    def test_best_split_empty(self):
        queue = StreamingIntervalQueue(0.1)
        assert queue.best_split(5, 1.0, 1.0) is None

    def test_best_split_picks_minimum(self):
        queue = StreamingIntervalQueue(0.0)
        values = [5.0, 1.0, 1.0, 1.0]  # stream values
        prefix_sum = np.cumsum(values)
        prefix_sq = np.cumsum(np.square(values))
        # Observe endpoints 0..2 with HERROR = SSE of one bucket over prefix.
        for index in range(3):
            segment = np.asarray(values[: index + 1])
            herror = float(np.sum((segment - segment.mean()) ** 2))
            queue.observe(
                index,
                herror,
                float(prefix_sum[index]),
                float(prefix_sq[index]),
                Certificate.single_bucket(index, float(prefix_sum[index]), herror),
            )
        value, slot = queue.best_split(3, float(prefix_sum[3]), float(prefix_sq[3]))
        # Best 2-bucket split of [5,1,1,1] is after index 0: error 0.
        assert int(queue.endpoints()[slot]) == 0
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_split_candidate_pieces(self):
        queue = StreamingIntervalQueue(0.0)
        queue.observe(0, 0.0, 5.0, 25.0, Certificate.single_bucket(0, 5.0, 0.0))
        certificate, tail_sum, tail_error = queue.split_candidate(0, 2, 7.0, 27.0)
        assert certificate.end == 0
        assert tail_sum == 2.0  # values after index 0 sum to 7 - 5
        assert tail_error == pytest.approx(27.0 - 25.0 - 2.0 * 2.0 / 2)

    def test_split_candidate_bad_slot(self):
        queue = StreamingIntervalQueue(0.1)
        with pytest.raises(IndexError):
            queue.split_candidate(0, 1, 1.0, 1.0)
