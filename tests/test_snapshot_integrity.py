"""Snapshot integrity: checksums, generation fallback, typed corruption.

Pins the durability half of the fault-tolerance contract: every format-2
snapshot embeds a sha256 checksum over its canonical body; loads verify
it and fall back generation by generation when the newest file is
corrupt, truncated, missing, or mislabeled; corruption surfaces as the
typed :class:`SnapshotCorruptError`; and cleanup problems are counted
rather than silently swallowed.
"""

from __future__ import annotations

import json

import pytest

from repro.service import SnapshotCorruptError, SnapshotStore
from repro.service.snapshot import SNAPSHOT_FORMAT, _payload_checksum


def payload(arrivals, marker):
    return {"arrivals": arrivals, "state": {"marker": marker}, "pending": []}


class TestChecksums:
    def test_written_snapshot_embeds_verifiable_checksum(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.write("s", payload(10, "a"))
        on_disk = json.loads(path.read_text())
        assert on_disk["format"] == SNAPSHOT_FORMAT
        assert on_disk["checksum"].startswith("sha256:")
        assert on_disk["checksum"] == _payload_checksum(on_disk)
        assert store.load_latest("s")["state"] == {"marker": "a"}

    def test_bitflip_fails_checksum(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        path = store.write("s", payload(10, "a"))
        doctored = json.loads(path.read_text())
        doctored["arrivals"] = 99  # valid JSON, tampered body
        path.write_text(json.dumps(doctored))
        with pytest.raises(SnapshotCorruptError, match="checksum mismatch"):
            store.load_latest("s")

    def test_legacy_format1_snapshot_loads_without_checksum(self, tmp_path):
        store = SnapshotStore(tmp_path)
        legacy = {"format": 1, "stream": "s", "seq": 1, **payload(5, "old")}
        (tmp_path / "s-00000001.json").write_text(json.dumps(legacy))
        assert store.load_latest("s")["state"] == {"marker": "old"}

    def test_unknown_format_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        bad = {"format": 99, "stream": "s", "seq": 1, **payload(5, "x")}
        (tmp_path / "s-00000001.json").write_text(json.dumps(bad))
        with pytest.raises(SnapshotCorruptError, match="unsupported"):
            store.load_latest("s")


class TestGenerationFallback:
    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", payload(100, "gen1"))
        newest = store.write("s", payload(200, "gen2"))
        newest.write_text("not json at all")
        loaded = store.load_latest("s")
        assert loaded["state"] == {"marker": "gen1"}
        assert loaded["arrivals"] == 100
        assert store.counters["corrupt_snapshots"] == 1
        assert store.counters["fallback_loads"] == 1

    def test_truncated_newest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", payload(100, "gen1"))
        newest = store.write("s", payload(200, "gen2"))
        newest.write_text(newest.read_text()[: 40])
        assert store.load_latest("s")["state"] == {"marker": "gen1"}

    def test_missing_manifest_file_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", payload(100, "gen1"))
        newest = store.write("s", payload(200, "gen2"))
        newest.unlink()  # manifest now dangles
        assert store.load_latest("s")["state"] == {"marker": "gen1"}
        assert store.counters["fallback_loads"] == 1

    def test_wrong_stream_snapshot_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", payload(100, "mine"))
        newest = store.write("s", payload(200, "mine2"))
        foreign = json.loads(newest.read_text())
        foreign["stream"] = "other"
        foreign["checksum"] = _payload_checksum(foreign)
        newest.write_text(json.dumps(foreign))
        assert store.load_latest("s")["state"] == {"marker": "mine"}

    def test_all_generations_corrupt_raises_typed_error(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for marker in ("gen1", "gen2"):
            store.write("s", payload(100, marker))
        for path in store.generations("s"):
            path.write_text("garbage")
        with pytest.raises(SnapshotCorruptError, match="every snapshot"):
            store.load_latest("s")
        # Both generations were inspected and rejected.
        assert store.counters["corrupt_snapshots"] >= 2

    def test_missing_stream_is_keyerror_not_corruption(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(KeyError):
            store.load_latest("nope")


class TestRetentionAndHygiene:
    def test_keep_bounds_generations(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for generation in range(5):
            store.write("s", payload(generation * 10, f"g{generation}"))
        files = store.generations("s")
        assert len(files) == 2
        assert [p.name for p in files] == ["s-00000004.json", "s-00000005.json"]

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            SnapshotStore(tmp_path, keep=0)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("s", payload(10, "a"))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_cleanup_errors_counted_not_raised(self, tmp_path, monkeypatch):
        store = SnapshotStore(tmp_path, keep=1)
        store.write("s", payload(10, "a"))

        def refuse(self):
            raise OSError("simulated unlink failure")

        monkeypatch.setattr(type(tmp_path), "unlink", refuse)
        store.write("s", payload(20, "b"))  # prune must not raise
        monkeypatch.undo()
        assert store.counters["cleanup_errors"] == 1
        assert store.load_latest("s")["state"] == {"marker": "b"}
