"""Snapshot integrity: checksums, generation fallback, typed corruption.

Pins the durability half of the fault-tolerance contract across all
three on-disk kinds (format-2 JSON, format-3 binary fulls, format-3
deltas): every file is checksummed and verified on load; loads fall
back generation by generation when the newest file is corrupt,
truncated, missing, or mislabeled; a corrupt delta link truncates its
chain to the verified prefix; corruption surfaces as the typed
:class:`SnapshotCorruptError` (including unreadable manifests);
filenames isolate prefix-colliding stream names; and pruning never
strands a delta without its base.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import SnapshotCorruptError, SnapshotStore
from repro.service.faults import FaultInjector
from repro.service.snapshot import (
    BINARY_MAGIC,
    _encode_name,
    _payload_checksum,
)


def payload(arrivals, marker):
    return {"arrivals": arrivals, "state": {"marker": marker}, "pending": []}


def binary_payload(arrivals, values, tail=()):
    """A payload taking the format-3 fast path (carries state_arrays)."""
    skeleton = {"w": {"__nd__": 0, "dt": "f8"}, "scalar": 7}
    arrays = [np.asarray(values, dtype=np.float64)]
    return {
        "arrivals": arrivals,
        "spec": {"backend": "stub"},
        "state_arrays": (skeleton, arrays),
        "tail": [np.asarray(t, dtype=np.float64) for t in tail],
    }


class TestChecksums:
    def test_written_json_snapshot_embeds_verifiable_checksum(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.write("s", payload(10, "a"))
        on_disk = json.loads(path.read_text())
        # Payloads without a state_arrays fast path stay on the format-2
        # JSON layout for compatibility.
        assert on_disk["format"] == 2
        assert on_disk["checksum"].startswith("sha256:")
        assert on_disk["checksum"] == _payload_checksum(on_disk)
        assert store.load_latest("s")["state"] == {"marker": "a"}

    def test_bitflip_fails_checksum(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        path = store.write("s", payload(10, "a"))
        doctored = json.loads(path.read_text())
        doctored["arrivals"] = 99  # valid JSON, tampered body
        path.write_text(json.dumps(doctored))
        with pytest.raises(SnapshotCorruptError, match="checksum mismatch"):
            store.load_latest("s")

    def test_legacy_format1_snapshot_loads_without_checksum(self, tmp_path):
        store = SnapshotStore(tmp_path)
        legacy = {"format": 1, "stream": "s", "seq": 1, **payload(5, "old")}
        (tmp_path / "s-00000001.json").write_text(json.dumps(legacy))
        assert store.load_latest("s")["state"] == {"marker": "old"}

    def test_unknown_format_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        bad = {"format": 99, "stream": "s", "seq": 1, **payload(5, "x")}
        (tmp_path / "s-00000001.json").write_text(json.dumps(bad))
        with pytest.raises(SnapshotCorruptError, match="unsupported"):
            store.load_latest("s")


class TestBinaryFormat:
    def test_state_arrays_payload_writes_binary_snap(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.write("s", binary_payload(8, [1.5, 2.5, 3.5]))
        assert path.suffix == ".snap"
        assert path.read_bytes().startswith(BINARY_MAGIC)

    def test_binary_round_trip_is_bit_identical(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(
            "s", binary_payload(8, [1.5, 2.5, 3.5], tail=[[4.0, 5.0], [6.0]])
        )
        loaded = store.load_latest("s")
        skeleton, arrays = loaded["state_arrays"]
        assert skeleton == {"w": {"__nd__": 0, "dt": "f8"}, "scalar": 7}
        np.testing.assert_array_equal(arrays[0], [1.5, 2.5, 3.5])
        assert loaded["arrivals"] == 8
        assert loaded["spec"] == {"backend": "stub"}
        assert [t.tolist() for t in loaded["tail"]] == [[4.0, 5.0], [6.0]]

    def test_corrupt_section_byte_is_detected(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        path = store.write("s", binary_payload(8, [1.5, 2.5, 3.5]))
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip one bit in the last section
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError, match="checksum mismatch"):
            store.load_latest("s")

    def test_corrupt_header_is_detected(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        path = store.write("s", binary_payload(8, [1.5]))
        raw = bytearray(path.read_bytes())
        raw[len(BINARY_MAGIC) + 4 + 32] ^= 0xFF  # first header byte
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError, match="header checksum"):
            store.load_latest("s")

    def test_corrupt_binary_newest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", binary_payload(4, [1.0]))
        newest = store.write("s", binary_payload(8, [2.0]))
        newest.write_bytes(b"garbage")
        loaded = store.load_latest("s")
        assert loaded["arrivals"] == 4
        assert store.counters["fallback_loads"] == 1


class TestDeltaChains:
    def test_delta_chain_resolves_onto_base(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("s", binary_payload(4, [1.0], tail=[[9.0]]))
        store.write_delta(
            "s", arrivals=6, from_arrivals=4,
            batches=[(4, np.array([5.0, 6.0]))], tail=[np.array([7.0])],
        )
        store.write_delta(
            "s", arrivals=7, from_arrivals=6,
            batches=[(6, np.array([7.0]))], tail=[],
        )
        loaded = store.load_latest("s")
        # Base state + arrivals, with every delta batch folded into the
        # tail so a restore replays the chain through normal ingestion.
        assert loaded["arrivals"] == 4
        assert [t.tolist() for t in loaded["tail"]] == [[5.0, 6.0], [7.0]]

    def test_delta_chains_onto_legacy_json_base(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(
            "s", {"arrivals": 4, "state": {"marker": "v2"}, "tail": [[1.0]]}
        )
        store.write_delta(
            "s", arrivals=6, from_arrivals=4,
            batches=[(4, np.array([5.0, 6.0]))], tail=[],
        )
        loaded = store.load_latest("s")
        assert loaded["state"] == {"marker": "v2"}
        assert loaded["arrivals"] == 4
        assert [np.asarray(t).tolist() for t in loaded["tail"]] == [[5.0, 6.0]]

    def test_corrupt_middle_delta_truncates_chain(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("s", binary_payload(4, [1.0], tail=[[0.5]]))
        first = store.write_delta(
            "s", arrivals=6, from_arrivals=4,
            batches=[(4, np.array([5.0, 6.0]))], tail=[np.array([7.0])],
        )
        store.write_delta(
            "s", arrivals=8, from_arrivals=6,
            batches=[(6, np.array([7.0, 8.0]))], tail=[],
        )
        first.write_bytes(b"garbage")
        loaded = store.load_latest("s")
        # The chain is cut at the corrupt link: base state + base tail.
        assert loaded["arrivals"] == 4
        assert [t.tolist() for t in loaded["tail"]] == [[0.5]]
        assert store.counters["corrupt_snapshots"] >= 1
        assert store.counters["fallback_loads"] >= 1

    def test_delta_with_arrival_gap_truncates_chain(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("s", binary_payload(4, [1.0]))
        store.write_delta(
            "s", arrivals=9, from_arrivals=7,
            batches=[(7, np.array([8.0, 9.0]))], tail=[],  # gap: 4 -> 7
        )
        loaded = store.load_latest("s")
        assert loaded["arrivals"] == 4
        assert loaded["tail"] == []

    def test_delta_without_base_raises_value_error(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(ValueError, match="no base"):
            store.write_delta(
                "s", arrivals=2, from_arrivals=0,
                batches=[(0, np.array([1.0, 2.0]))], tail=[],
            )

    def test_prune_never_strands_a_delta(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        store.write("s", binary_payload(2, [1.0]))  # seq 1 (old base)
        store.write_delta(
            "s", arrivals=3, from_arrivals=2,
            batches=[(2, np.array([3.0]))], tail=[],
        )  # seq 2
        store.write("s", binary_payload(4, [2.0]))  # seq 3 (new base)
        store.write_delta(
            "s", arrivals=5, from_arrivals=4,
            batches=[(4, np.array([5.0]))], tail=[],
        )  # seq 4
        names = [p.name for p in store.generations("s")]
        # keep=1 counts *full* generations: the old base and its delta
        # are gone, the live base and its trailing delta both survive.
        assert names == ["s-00000003.snap", "s-00000004.delta"]
        loaded = store.load_latest("s")
        assert loaded["arrivals"] == 4
        assert [t.tolist() for t in loaded["tail"]] == [[5.0]]


class TestGenerationFallback:
    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", payload(100, "gen1"))
        newest = store.write("s", payload(200, "gen2"))
        newest.write_text("not json at all")
        loaded = store.load_latest("s")
        assert loaded["state"] == {"marker": "gen1"}
        assert loaded["arrivals"] == 100
        assert store.counters["corrupt_snapshots"] == 1
        assert store.counters["fallback_loads"] == 1

    def test_truncated_newest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", payload(100, "gen1"))
        newest = store.write("s", payload(200, "gen2"))
        newest.write_text(newest.read_text()[: 40])
        assert store.load_latest("s")["state"] == {"marker": "gen1"}

    def test_missing_manifest_file_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", payload(100, "gen1"))
        newest = store.write("s", payload(200, "gen2"))
        newest.unlink()  # manifest now dangles
        assert store.load_latest("s")["state"] == {"marker": "gen1"}
        assert store.counters["fallback_loads"] == 1

    def test_wrong_stream_snapshot_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("s", payload(100, "mine"))
        newest = store.write("s", payload(200, "mine2"))
        foreign = json.loads(newest.read_text())
        foreign["stream"] = "other"
        foreign["checksum"] = _payload_checksum(foreign)
        newest.write_text(json.dumps(foreign))
        assert store.load_latest("s")["state"] == {"marker": "mine"}

    def test_all_generations_corrupt_raises_typed_error(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for marker in ("gen1", "gen2"):
            store.write("s", payload(100, marker))
        for path in store.generations("s"):
            path.write_text("garbage")
        with pytest.raises(SnapshotCorruptError, match="every snapshot"):
            store.load_latest("s")
        # Both generations were inspected and rejected.
        assert store.counters["corrupt_snapshots"] >= 2

    def test_missing_stream_is_keyerror_not_corruption(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(KeyError):
            store.load_latest("nope")


class TestNameIsolation:
    """Prefix-colliding stream names must never see each other's files."""

    def test_prefix_colliding_generations_are_disjoint(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("a", payload(1, "mine"))
        store.write("a-b", payload(2, "theirs"))
        store.write("a-b", payload(3, "theirs2"))
        assert len(store.generations("a")) == 1
        assert len(store.generations("a-b")) == 2
        assert store.load_latest("a")["state"] == {"marker": "mine"}

    def test_prune_of_one_name_spares_its_prefix_sibling(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=1)
        store.write("a-b", payload(1, "sibling"))
        for generation in range(3):
            store.write("a", payload(generation, f"g{generation}"))
        # "a"'s pruning ran twice; "a-b"'s only generation must survive.
        assert len(store.generations("a")) == 1
        assert store.load_latest("a-b")["state"] == {"marker": "sibling"}

    def test_fallback_never_crosses_stream_names(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        store.write("a-b", payload(7, "theirs"))
        newest = store.write("a", payload(1, "mine"))
        newest.write_text("garbage")
        # The only fallback candidate for "a" is its own (corrupt) file;
        # the old glob would have fallen back onto "a-b"'s snapshot.
        with pytest.raises(SnapshotCorruptError):
            store.load_latest("a")

    def test_hostile_names_are_percent_encoded(self, tmp_path):
        store = SnapshotStore(tmp_path)
        name = "../evil stream/θ"
        path = store.write(name, payload(5, "x"))
        assert path.parent == tmp_path  # no directory traversal
        assert "/" not in path.name and " " not in path.name
        assert store.load_latest(name)["state"] == {"marker": "x"}
        assert store.streams() == [name]

    def test_encode_name_keeps_valid_names_verbatim(self):
        assert _encode_name("cpu_load.p99") == "cpu_load.p99"
        assert _encode_name("a-b") == "a%2Db"


class TestManifestHardening:
    def test_truncated_to_empty_manifest_is_typed_and_rebuilt(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("s", payload(10, "a"))
        (tmp_path / "manifest.json").write_text("")
        with pytest.raises(SnapshotCorruptError):
            store.manifest()
        # Internal paths rebuild from the files on disk instead.
        assert store.load_latest("s")["state"] == {"marker": "a"}
        assert store.streams() == ["s"]
        assert store.counters["corrupt_snapshots"] >= 1

    def test_unreadable_manifest_is_typed_not_oserror(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("s", payload(10, "a"))
        manifest = tmp_path / "manifest.json"
        manifest.unlink()
        manifest.mkdir()  # read_text now raises IsADirectoryError
        with pytest.raises(SnapshotCorruptError, match="unreadable"):
            store.manifest()
        assert store.load_latest("s")["state"] == {"marker": "a"}

    def test_structurally_invalid_manifest_is_typed(self, tmp_path):
        store = SnapshotStore(tmp_path)
        (tmp_path / "manifest.json").write_text(json.dumps(["not", "a", "dict"]))
        with pytest.raises(SnapshotCorruptError, match="manifest"):
            store.manifest()

    def test_rebuilt_manifest_continues_sequence_numbers(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("s", payload(10, "a"))
        store.write("s", payload(20, "b"))
        (tmp_path / "manifest.json").write_text("{broken")
        path = store.write("s", payload(30, "c"))
        # The replacement write scanned the disk: no collision with the
        # surviving generation files.
        assert path.name == "s-00000003.json"
        assert store.load_latest("s")["state"] == {"marker": "c"}


class TestDirFsync:
    def test_dropped_dir_fsync_is_audited(self, tmp_path):
        injector = FaultInjector().drop_dir_fsync(times=1)
        store = SnapshotStore(tmp_path, fault_injector=injector)
        store.write("s", payload(10, "a"))
        kinds = [event["kind"] for event in injector.events]
        assert "dir_fsync" in kinds
        assert injector.pending() == 0

    def test_torn_rename_after_dropped_fsync_is_survivable(self, tmp_path):
        # Simulate the failure window the dir fsync closes: the rename
        # of generation 2 (and the manifest pointing at it) happened,
        # but the directory update was lost on crash.  Recovery must
        # fall back to generation 1 instead of erroring.
        injector = FaultInjector().drop_dir_fsync(times=4)
        store = SnapshotStore(tmp_path, fault_injector=injector)
        store.write("s", payload(100, "gen1"))
        manifest_before = (tmp_path / "manifest.json").read_bytes()
        newest = store.write("s", payload(200, "gen2"))
        # the crash rolls the un-fsynced directory back:
        newest.unlink()
        (tmp_path / "manifest.json").write_bytes(manifest_before)
        recovered = SnapshotStore(tmp_path)
        assert recovered.load_latest("s")["state"] == {"marker": "gen1"}


class TestRetentionAndHygiene:
    def test_keep_bounds_generations(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for generation in range(5):
            store.write("s", payload(generation * 10, f"g{generation}"))
        files = store.generations("s")
        assert len(files) == 2
        assert [p.name for p in files] == ["s-00000004.json", "s-00000005.json"]

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            SnapshotStore(tmp_path, keep=0)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write("s", payload(10, "a"))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_cleanup_errors_counted_not_raised(self, tmp_path, monkeypatch):
        store = SnapshotStore(tmp_path, keep=1)
        store.write("s", payload(10, "a"))

        def refuse(self):
            raise OSError("simulated unlink failure")

        monkeypatch.setattr(type(tmp_path), "unlink", refuse)
        store.write("s", payload(20, "b"))  # prune must not raise
        monkeypatch.undo()
        assert store.counters["cleanup_errors"] == 1
        assert store.load_latest("s")["state"] == {"marker": "b"}
