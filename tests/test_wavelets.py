"""Tests for the Haar transform and wavelet synopses (repro.wavelets)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wavelets import (
    WaveletSynopsis,
    coefficient_support,
    haar_inverse,
    haar_transform,
    is_power_of_two,
    next_power_of_two,
)

power_of_two_sequences = st.integers(1, 6).flatmap(
    lambda k: st.lists(
        st.floats(-50, 50, allow_nan=False, allow_infinity=False),
        min_size=2**k,
        max_size=2**k,
    )
).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestHelpers:
    def test_is_power_of_two(self):
        assert [n for n in range(1, 20) if is_power_of_two(n)] == [1, 2, 4, 8, 16]
        assert not is_power_of_two(0)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_coefficient_support_layout(self):
        # n = 8: index 1 covers everything, split at 4.
        assert coefficient_support(1, 8) == (0, 4, 8)
        assert coefficient_support(2, 8) == (0, 2, 4)
        assert coefficient_support(3, 8) == (4, 6, 8)
        assert coefficient_support(7, 8) == (6, 7, 8)
        assert coefficient_support(0, 8) == (0, 8, 8)

    def test_coefficient_support_bounds(self):
        with pytest.raises(IndexError):
            coefficient_support(8, 8)
        with pytest.raises(ValueError):
            coefficient_support(0, 6)


class TestTransform:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            haar_transform([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            haar_inverse([1.0, 2.0, 3.0])

    def test_constant_signal_single_coefficient(self):
        coefficients = haar_transform([3.0] * 8)
        assert coefficients[0] == pytest.approx(3.0 * np.sqrt(8))
        assert np.allclose(coefficients[1:], 0.0)

    def test_scaling_coefficient_is_scaled_mean(self):
        values = np.asarray([1.0, 5.0, 3.0, 7.0])
        coefficients = haar_transform(values)
        assert coefficients[0] == pytest.approx(values.mean() * 2.0)

    @given(power_of_two_sequences)
    def test_roundtrip(self, values):
        assert np.allclose(haar_inverse(haar_transform(values)), values, atol=1e-8)

    @given(power_of_two_sequences)
    def test_parseval(self, values):
        """Orthonormality: energy is preserved."""
        coefficients = haar_transform(values)
        assert np.sum(coefficients**2) == pytest.approx(
            np.sum(values**2), rel=1e-9, abs=1e-6
        )

    @given(power_of_two_sequences)
    def test_linearity(self, values):
        assert np.allclose(
            haar_transform(2.0 * values), 2.0 * haar_transform(values), atol=1e-8
        )

    def test_matches_explicit_basis(self):
        """Reconstruction agrees with the documented coefficient layout."""
        rng = np.random.default_rng(5)
        values = rng.normal(size=8)
        coefficients = haar_transform(values)
        rebuilt = np.zeros(8)
        for index in range(8):
            start, mid, end = coefficient_support(index, 8)
            basis = np.zeros(8)
            if index == 0:
                basis[:] = 1.0 / np.sqrt(8)
            else:
                width = end - start
                basis[start:mid] = 1.0 / np.sqrt(width)
                basis[mid:end] = -1.0 / np.sqrt(width)
            rebuilt += coefficients[index] * basis
        assert np.allclose(rebuilt, values, atol=1e-8)


class TestWaveletSynopsis:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            WaveletSynopsis.from_values([], 4)
        with pytest.raises(ValueError):
            WaveletSynopsis.from_values([1.0], 0)
        with pytest.raises(ValueError):
            WaveletSynopsis({0: 1.0}, 3, 2)  # padded length not a power of two
        with pytest.raises(ValueError):
            WaveletSynopsis({9: 1.0}, 8, 8)  # coefficient out of range

    def test_full_budget_reconstructs_exactly(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=32)
        synopsis = WaveletSynopsis.from_values(values, 32)
        assert np.allclose(synopsis.to_array(), values, atol=1e-8)
        assert synopsis.sse(values) == pytest.approx(0.0, abs=1e-9)

    def test_budget_respected(self):
        synopsis = WaveletSynopsis.from_values(np.arange(64.0), 5)
        assert synopsis.budget == 5

    def test_thresholding_is_l2_optimal_among_coefficient_subsets(self):
        """Keeping the largest coefficients minimizes SSE (Parseval)."""
        rng = np.random.default_rng(8)
        values = rng.normal(size=16)
        coefficients = haar_transform(values)
        synopsis = WaveletSynopsis.from_values(values, 4)
        kept = set(synopsis.coefficients)
        dropped_energy = sum(
            coefficients[i] ** 2 for i in range(16) if i not in kept
        )
        assert synopsis.sse(values) == pytest.approx(dropped_energy, rel=1e-6)

    @given(power_of_two_sequences, st.integers(1, 16))
    @settings(max_examples=40)
    def test_point_estimates_match_reconstruction(self, values, budget):
        synopsis = WaveletSynopsis.from_values(values, budget)
        dense = synopsis.to_array()
        for position in range(0, values.size, max(1, values.size // 5)):
            assert synopsis.point_estimate(position) == pytest.approx(
                dense[position], abs=1e-8
            )

    @given(power_of_two_sequences, st.integers(1, 16), st.data())
    @settings(max_examples=40)
    def test_range_sum_matches_reconstruction(self, values, budget, data):
        synopsis = WaveletSynopsis.from_values(values, budget)
        dense = synopsis.to_array()
        i = data.draw(st.integers(0, values.size - 1))
        j = data.draw(st.integers(i, values.size - 1))
        assert synopsis.range_sum(i, j) == pytest.approx(
            float(dense[i : j + 1].sum()), abs=1e-6
        )

    def test_non_power_of_two_padding(self):
        values = np.arange(100.0)
        synopsis = WaveletSynopsis.from_values(values, 20)
        assert len(synopsis) == 100
        with pytest.raises(ValueError):
            synopsis.range_sum(0, 100)
        with pytest.raises(IndexError):
            synopsis.point_estimate(100)

    def test_sse_decreases_with_budget(self):
        rng = np.random.default_rng(11)
        values = rng.normal(size=64).cumsum()
        errors = [
            WaveletSynopsis.from_values(values, budget).sse(values)
            for budget in (2, 8, 32, 64)
        ]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] == pytest.approx(0.0, abs=1e-9)

    def test_sse_length_mismatch(self):
        synopsis = WaveletSynopsis.from_values(np.arange(8.0), 4)
        with pytest.raises(ValueError):
            synopsis.sse(np.arange(9.0))
