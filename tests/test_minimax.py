"""Tests for min-max histograms (repro.core.minimax)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SAEMetric, naive_sse
from repro.core.minimax import (
    greedy_threshold_partition,
    minimax_error,
    minimax_histogram,
)
from repro.core.prefix import PrefixSums

tiny_sequences = st.lists(st.integers(0, 20), min_size=1, max_size=12).map(
    lambda xs: np.asarray(xs, dtype=np.float64)
)


def brute_force_minimax(values, num_buckets: int) -> float:
    """Exhaustive min-max SSE over all partitions (test oracle)."""
    n = values.size
    prefix = PrefixSums(values)
    best = float("inf")
    for used in range(1, min(num_buckets, n) + 1):
        for splits in combinations(range(n - 1), used - 1):
            worst = 0.0
            start = 0
            for split in splits + (n - 1,):
                worst = max(worst, prefix.sqerror(start, split))
                start = split + 1
            best = min(best, worst)
    return best


class TestGreedyThresholdPartition:
    def test_validates(self):
        with pytest.raises(ValueError):
            greedy_threshold_partition([], 1.0)
        with pytest.raises(ValueError):
            greedy_threshold_partition([1.0], -1.0)

    def test_zero_threshold_splits_at_changes(self):
        splits = greedy_threshold_partition([1.0, 1.0, 5.0, 5.0, 2.0], 0.0)
        assert splits == [1, 3]

    def test_huge_threshold_single_bucket(self):
        assert greedy_threshold_partition([1.0, 9.0, 4.0], 1e9) == []

    def test_every_bucket_respects_threshold(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 30, size=60).astype(float)
        threshold = 40.0
        splits = greedy_threshold_partition(values, threshold)
        prefix = PrefixSums(values)
        start = 0
        for split in splits + [values.size - 1]:
            assert prefix.sqerror(start, split) <= threshold + 1e-9
            start = split + 1

    def test_greedy_is_maximal(self):
        """Each bucket cannot be extended by one more point."""
        rng = np.random.default_rng(2)
        values = rng.integers(0, 30, size=60).astype(float)
        threshold = 25.0
        splits = greedy_threshold_partition(values, threshold)
        prefix = PrefixSums(values)
        start = 0
        for split in splits:
            assert prefix.sqerror(start, split + 1) > threshold
            start = split + 1


class TestMinimaxHistogram:
    def test_validates(self):
        with pytest.raises(ValueError):
            minimax_histogram([], 2)
        with pytest.raises(ValueError):
            minimax_histogram([1.0], 0)

    def test_exact_when_enough_buckets(self, step_sequence):
        histogram = minimax_histogram(step_sequence, 3)
        assert histogram.sse(step_sequence) == pytest.approx(0.0, abs=1e-9)
        assert minimax_error(step_sequence, 3) == pytest.approx(0.0, abs=1e-9)

    def test_budget_respected(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 50, size=100).astype(float)
        for buckets in (1, 4, 10):
            histogram = minimax_histogram(values, buckets)
            assert histogram.num_buckets <= buckets

    @given(tiny_sequences, st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, values, buckets):
        measured = minimax_error(values, buckets)
        expected = brute_force_minimax(values, buckets)
        assert measured == pytest.approx(expected, rel=1e-6, abs=1e-6)

    @given(tiny_sequences)
    @settings(max_examples=30, deadline=None)
    def test_non_increasing_in_buckets(self, values):
        errors = [minimax_error(values, b) for b in range(1, 5)]
        for coarse, fine in zip(errors, errors[1:]):
            assert fine <= coarse + 1e-9

    def test_minimax_vs_summed_objective_differ(self):
        """Min-max spreads error evenly; V-optimal minimizes the total."""
        from repro.core.optimal import optimal_histogram

        values = np.asarray([0.0, 0.0, 0.0, 10.0, 0.0, 5.0, 5.0, 5.0, 5.0, 5.0])
        sse_total = optimal_histogram(values, 3).sse(values)
        prefix = PrefixSums(values)
        minimax = minimax_histogram(values, 3)
        worst = max(
            prefix.sqerror(b.start, b.end) for b in minimax.buckets
        )
        # The min-max histogram's worst bucket never exceeds V-optimal's total.
        assert worst <= sse_total + 1e-9

    def test_custom_metric(self):
        values = np.asarray([0.0, 0.0, 9.0, 9.0, 9.0])
        metric = SAEMetric(values)
        histogram = minimax_histogram(values, 2, metric=metric)
        assert histogram.num_buckets == 2
        assert histogram.boundaries() == [1]
        # Representatives come from the metric (medians).
        assert histogram.buckets[0].value == 0.0
        assert histogram.buckets[1].value == 9.0
