"""Tests for the agglomerative streaming builder (repro.core.agglomerative).

The headline property is the [GKS01] guarantee the paper restates: after
any prefix, the emitted B-bucket histogram's SSE is within ``(1 + eps)``
of the optimal B-bucket SSE of that prefix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agglomerative import AgglomerativeHistogramBuilder
from repro.core.optimal import optimal_error

from .conftest import bucket_counts, epsilons, longer_sequences


class TestConstruction:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AgglomerativeHistogramBuilder(0, 0.1)
        with pytest.raises(ValueError):
            AgglomerativeHistogramBuilder(4, 0.0)
        with pytest.raises(ValueError):
            AgglomerativeHistogramBuilder(4, -1.0)

    def test_delta_is_eps_over_2b(self):
        builder = AgglomerativeHistogramBuilder(5, 0.5)
        assert builder.delta == pytest.approx(0.05)

    def test_empty_builder_has_no_histogram(self):
        builder = AgglomerativeHistogramBuilder(4, 0.1)
        with pytest.raises(ValueError):
            builder.histogram()
        with pytest.raises(ValueError):
            _ = builder.error_estimate


class TestStreamingBehaviour:
    def test_single_point(self):
        builder = AgglomerativeHistogramBuilder(4, 0.1)
        builder.append(42.0)
        histogram = builder.histogram()
        assert len(histogram) == 1
        assert histogram.point_estimate(0) == 42.0
        assert builder.error_estimate == 0.0

    def test_fewer_points_than_buckets_is_exact(self):
        builder = AgglomerativeHistogramBuilder(8, 0.1)
        values = [5.0, 1.0, 9.0, 2.0]
        builder.extend(values)
        histogram = builder.histogram()
        assert histogram.sse(values) == 0.0
        assert list(histogram.to_array()) == values

    def test_histogram_length_tracks_prefix(self):
        builder = AgglomerativeHistogramBuilder(3, 0.2)
        for count in range(1, 30):
            builder.append(float(count % 7))
            assert len(builder.histogram()) == count
            assert len(builder) == count

    def test_plateaus_exact(self, step_sequence):
        builder = AgglomerativeHistogramBuilder(3, 0.1)
        builder.extend(step_sequence)
        assert builder.error_estimate == pytest.approx(0.0, abs=1e-9)
        assert builder.histogram().sse(step_sequence) == pytest.approx(0.0, abs=1e-9)

    def test_single_bucket_builder(self):
        values = [1.0, 3.0, 5.0]
        builder = AgglomerativeHistogramBuilder(1, 0.5)
        builder.extend(values)
        histogram = builder.histogram()
        assert histogram.num_buckets == 1
        assert histogram.buckets[0].value == 3.0

    def test_queue_sizes_bounded(self, utilization_1k):
        builder = AgglomerativeHistogramBuilder(6, 0.25)
        builder.extend(utilization_1k)
        sizes = builder.queue_sizes()
        assert len(sizes) == 5
        # Far below the stream length: the point of the interval cover.
        assert all(size < len(utilization_1k) // 2 for size in sizes)
        assert builder.memory_footprint() == sum(sizes)


class TestApproximationGuarantee:
    @given(longer_sequences, bucket_counts, epsilons)
    @settings(max_examples=60, deadline=None)
    def test_final_histogram_within_factor(self, values, buckets, epsilon):
        builder = AgglomerativeHistogramBuilder(buckets, epsilon)
        builder.extend(values)
        histogram = builder.histogram()
        optimum = optimal_error(values, buckets)
        sse = histogram.sse(values)
        assert sse <= (1.0 + epsilon) * optimum + 1e-6
        # The reported estimate is the true SSE of the emitted partition.
        assert builder.error_estimate == pytest.approx(sse, rel=1e-6, abs=1e-6)

    @given(longer_sequences)
    @settings(max_examples=25, deadline=None)
    def test_guarantee_holds_at_every_prefix(self, values):
        buckets, epsilon = 4, 0.25
        builder = AgglomerativeHistogramBuilder(buckets, epsilon)
        for index, value in enumerate(values):
            builder.append(value)
            prefix = values[: index + 1]
            sse = builder.histogram().sse(prefix)
            assert sse <= (1.0 + epsilon) * optimal_error(prefix, buckets) + 1e-6

    def test_tighter_epsilon_no_worse_on_real_data(self, utilization_1k):
        values = utilization_1k[:400]
        optimum = optimal_error(values, 8)
        errors = {}
        for epsilon in (1.0, 0.1):
            builder = AgglomerativeHistogramBuilder(8, epsilon)
            builder.extend(values)
            errors[epsilon] = builder.histogram().sse(values)
            assert errors[epsilon] <= (1.0 + epsilon) * optimum + 1e-6
        assert errors[0.1] <= errors[1.0] * 1.5  # loose sanity: not far worse
