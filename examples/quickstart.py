#!/usr/bin/env python3
"""Quickstart: maintain a histogram of the last n stream points.

Runs the paper's fixed-window algorithm over a synthetic utilization
stream, answers a few range-sum queries from the synopsis, and compares
the result against the optimal (quadratic-time) histogram of the same
window.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FixedWindowHistogramBuilder, optimal_error
from repro.datasets import att_utilization_stream

WINDOW = 512
BUCKETS = 12
EPSILON = 0.1


def main() -> None:
    stream = att_utilization_stream(2000, seed=1)

    # One pass over the stream; the builder keeps only the window and the
    # interval queues, never the full history.
    builder = FixedWindowHistogramBuilder(WINDOW, BUCKETS, EPSILON)
    for value in stream:
        builder.append(value)

    histogram = builder.histogram()
    window = builder.window_values()

    print(f"Synopsis of the last {WINDOW} points with {BUCKETS} buckets:")
    print(histogram.describe())
    print()

    for start, end in [(0, 127), (100, 299), (256, 511)]:
        exact = float(window[start : end + 1].sum())
        estimate = histogram.range_sum(start, end)
        relative = abs(estimate - exact) / max(exact, 1.0)
        print(
            f"range-sum [{start:>3}, {end:>3}]  exact={exact:>12.0f}  "
            f"estimate={estimate:>12.1f}  rel.err={relative:.4f}"
        )
    print()

    optimum = optimal_error(window, BUCKETS)
    achieved = builder.error_estimate
    ratio = achieved / optimum if optimum > 0 else 1.0
    print(f"SSE of synopsis : {achieved:,.0f}")
    print(f"Optimal SSE     : {optimum:,.0f}")
    print(f"Ratio           : {ratio:.4f}  (guarantee: <= {1 + EPSILON})")
    assert ratio <= 1 + EPSILON + 1e-9


if __name__ == "__main__":
    main()
