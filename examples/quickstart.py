#!/usr/bin/env python3
"""Quickstart: maintain a histogram of the last n stream points.

Builds the paper's fixed-window maintainer through the runtime registry,
streams a synthetic utilization trace into it in batches, answers a few
range-sum queries from the synopsis, and compares the result against the
optimal (quadratic-time) histogram of the same window.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import make_maintainer, optimal_error
from repro.datasets import att_utilization_stream

WINDOW = 512
BUCKETS = 12
EPSILON = 0.1


def main() -> None:
    stream = att_utilization_stream(2000, seed=1)

    # Any registered backend resolves by name ("fixed_window",
    # "agglomerative", "wavelet", "gk_quantiles", ...); the maintainer
    # keeps only the window and the interval queues, never the full
    # history.  Batched `extend` amortizes the per-point Python overhead.
    maintainer = make_maintainer(
        "fixed_window", window_size=WINDOW, num_buckets=BUCKETS, epsilon=EPSILON
    )
    for start in range(0, len(stream), 256):
        maintainer.extend(stream[start : start + 256])

    histogram = maintainer.synopsis()
    window = maintainer.window_values()

    print(f"Synopsis of the last {WINDOW} points with {BUCKETS} buckets:")
    print(histogram.describe())
    print()

    for start, end in [(0, 127), (100, 299), (256, 511)]:
        exact = float(window[start : end + 1].sum())
        estimate = histogram.range_sum(start, end)
        relative = abs(estimate - exact) / max(exact, 1.0)
        print(
            f"range-sum [{start:>3}, {end:>3}]  exact={exact:>12.0f}  "
            f"estimate={estimate:>12.1f}  rel.err={relative:.4f}"
        )
    print()

    optimum = optimal_error(window, BUCKETS)
    achieved = maintainer.builder.error_estimate
    ratio = achieved / optimum if optimum > 0 else 1.0
    print(f"SSE of synopsis : {achieved:,.0f}")
    print(f"Optimal SSE     : {optimum:,.0f}")
    print(f"Ratio           : {ratio:.4f}  (guarantee: <= {1 + EPSILON})")
    assert ratio <= 1 + EPSILON + 1e-9

    counters = maintainer.stats().counters()
    print()
    print(
        "Maintenance telemetry: "
        + ", ".join(f"{key}={value}" for key, value in sorted(counters.items()))
    )


if __name__ == "__main__":
    main()
