#!/usr/bin/env python3
"""Stream mining with histogram synopses (the paper's section 6 outlook).

Part 1 -- change detection: a service-utilization stream with injected
regime changes is monitored by two sliding fixed-window histograms; a
spike in the distance between their synopses flags each change.

Part 2 -- clustering: a collection of related series is grouped by the
shape of their V-optimal histogram features, recovering the generating
families.

Usage::

    python examples/stream_mining.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import timeseries_collection
from repro.mining import HistogramChangeDetector, cluster_series


def change_detection_demo() -> None:
    rng = np.random.default_rng(11)
    regimes = [(150.0, 1200), (520.0, 900), (230.0, 1100), (700.0, 800)]
    stream = np.concatenate(
        [rng.normal(level, 8.0, length) for level, length in regimes]
    ).round()
    true_changes = np.cumsum([length for _, length in regimes])[:-1]

    detector = HistogramChangeDetector(
        window_size=128, num_buckets=8, epsilon=0.25, check_every=16,
        cooldown=512,
    )
    events = detector.run(stream)

    print(f"stream of {stream.size} points, true changes at "
          f"{true_changes.tolist()}")
    for event in events:
        nearest = int(true_changes[np.argmin(np.abs(true_changes - event.position))])
        print(f"  detected at {event.position:>5d}  "
              f"(nearest true change {nearest}, delay {event.position - nearest}) "
              f"score {event.score:8.1f} > threshold {event.threshold:8.1f}")
    detected = {
        int(true_changes[np.argmin(np.abs(true_changes - e.position))])
        for e in events
    }
    print(f"  -> {len(detected)}/{len(true_changes)} changes caught\n")


def clustering_demo() -> None:
    collection, families = timeseries_collection(
        80, 128, families=4, seed=12, return_families=True
    )
    result = cluster_series(collection, 4, seed=2)
    correct = 0
    for cluster in range(result.num_clusters):
        members = families[result.labels == cluster]
        if members.size:
            correct += int(np.bincount(members).max())
    purity = correct / len(families)
    print(f"clustered {len(families)} series into 4 groups "
          f"via histogram features: purity {purity:.2f}")
    for cluster in range(result.num_clusters):
        members = families[result.labels == cluster]
        print(f"  cluster {cluster}: {len(members):2d} series, "
              f"family histogram {np.bincount(members, minlength=4).tolist()}")


def main() -> None:
    change_detection_demo()
    clustering_demo()


if __name__ == "__main__":
    main()
