#!/usr/bin/env python3
"""Approximate query answering in a warehouse (section 5.2).

Builds B-bucket summaries of a skewed measure column with four
construction algorithms -- the optimal DP, the paper's one-pass
(1 + eps)-approximation, equi-width and MaxDiff -- and compares
construction time plus the accuracy of range COUNT/SUM queries answered
from the summary alone.

Usage::

    python examples/warehouse_aqp.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import time_call
from repro.datasets import warehouse_measure_column
from repro.warehouse import AttributeSummary, Relation

ROWS = 100_000
DOMAIN = 2000
BUCKETS = 32
QUERIES = 200


def main() -> None:
    column = warehouse_measure_column(ROWS, seed=2, domain=DOMAIN)
    relation = Relation({"bytes": column})
    rng = np.random.default_rng(3)
    predicates = []
    for _ in range(QUERIES):
        low = float(rng.integers(0, DOMAIN))
        predicates.append((low, low + float(rng.integers(1, DOMAIN // 2))))

    print(f"{ROWS:,} rows, domain {DOMAIN}, {BUCKETS} buckets, "
          f"{QUERIES} random range predicates\n")
    print(f"{'method':12s} {'build (s)':>10s} {'avg |count err|':>16s} "
          f"{'count err %rows':>16s}")

    for method in ("optimal", "approximate", "equal_width", "maxdiff"):
        summary, build_seconds = time_call(
            lambda m=method: AttributeSummary.build(
                relation, "bytes", BUCKETS, method=m, epsilon=0.1
            )
        )
        count_error = 0.0
        for low, high in predicates:
            exact_count = relation.count_range("bytes", low, high)
            count_error += abs(summary.estimate_count(low, high) - exact_count)
        mean_error = count_error / QUERIES
        print(f"{method:12s} {build_seconds:>10.3f} {mean_error:>16.1f} "
              f"{100.0 * mean_error / ROWS:>15.3f}%")

    print("\nThe one-pass approximation matches the optimal DP's accuracy; "
          "its construction advantage grows with the attribute domain "
          "(see benchmarks/bench_vs_optimal.py).")


if __name__ == "__main__":
    main()
