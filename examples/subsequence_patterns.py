#!/usr/bin/env python3
"""Finding patterns inside a stream: subsequence matching (section 5.2).

Uses the fixed-window builder to derive, in one pass, a reduced
representation of every window of a long utilization stream, then asks
"where does this shape occur?" with lower-bound-filtered range searches.

Usage::

    python examples/subsequence_patterns.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import att_utilization_stream
from repro.similarity import SubsequenceIndex, euclidean

STREAM_LENGTH = 4096
WINDOW = 256
BUCKETS = 8
EPSILON = 0.1
STRIDE = 8


def main() -> None:
    stream = att_utilization_stream(STREAM_LENGTH, seed=9)

    # One pass: every stride-aligned window's histogram falls out of the
    # incremental maintenance.
    index = SubsequenceIndex.from_stream_builder(
        stream, WINDOW, num_buckets=BUCKETS, epsilon=EPSILON, stride=STRIDE
    )
    print(f"Indexed {len(index)} windows of length {WINDOW} "
          f"(stride {STRIDE}) from a {STREAM_LENGTH}-point stream.\n")

    rng = np.random.default_rng(10)
    for trial in range(3):
        offset = int(rng.integers(0, STREAM_LENGTH - WINDOW))
        pattern = stream[offset : offset + WINDOW] + rng.normal(0.0, 2.0, WINDOW)
        radius = 0.35 * float(np.std(stream)) * np.sqrt(WINDOW)
        outcome = index.range_search(pattern, radius)
        print(f"query {trial}: pattern drawn near offset {offset}, radius {radius:.0f}")
        print(f"  verified {outcome.candidates_verified} of {len(index)} windows "
              f"({outcome.false_positives} false positives, "
              f"{outcome.pruned} pruned by the lower bound)")
        for match in outcome.matches[:5]:
            print(f"  match at offset {match.offset:>5d}  distance {match.distance:8.1f}")
        if outcome.matches:
            nearest = outcome.matches[0]
            true_distance = euclidean(pattern, index.window(nearest.offset))
            assert abs(true_distance - nearest.distance) < 1e-6
        print()


if __name__ == "__main__":
    main()
