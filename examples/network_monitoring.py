#!/usr/bin/env python3
"""Network monitoring: approximate range queries over a live router stream.

The paper's motivating scenario (section 1): a router reports traffic
volumes continuously; operators ask for aggregate bytes over recent time
windows.  This example drives three synopses side by side over a bursty
traffic stream -- the paper's fixed-window histogram, an equal-space
wavelet synopsis, and the exact buffer -- and reports their accuracy and
maintenance cost, a miniature of the paper's Figure 6.

Usage::

    python examples/network_monitoring.py
"""

from __future__ import annotations

from repro.query import (
    ExactMaintainer,
    HistogramMaintainer,
    StreamQueryEngine,
    WaveletMaintainer,
)
from repro.streams import bursty_traffic, take

WINDOW = 256
BUCKETS = 12
EPSILON = 0.2
STREAM_LENGTH = 3000


def main() -> None:
    stream = take(bursty_traffic(seed=7), STREAM_LENGTH)
    engine = StreamQueryEngine(
        window_size=WINDOW,
        maintain_every=16,
        evaluate_every=256,
        queries_per_evaluation=32,
        seed=3,
    )
    maintainers = [
        HistogramMaintainer(WINDOW, BUCKETS, EPSILON),
        WaveletMaintainer(WINDOW, BUCKETS),
        ExactMaintainer(WINDOW),
    ]
    reports = engine.run(stream, maintainers)

    print(f"Bursty router stream, {STREAM_LENGTH} arrivals, window {WINDOW}:")
    print(f"{'method':30s} {'avg abs error':>14s} {'avg rel error':>14s} {'maint (s)':>10s}")
    for report in reports:
        print(
            f"{report.name:30s} {report.mean_absolute_error:>14.1f} "
            f"{report.mean_relative_error:>14.4f} "
            f"{report.maintenance_seconds:>10.3f}"
        )

    histogram, wavelet, exact = reports
    assert exact.mean_absolute_error == 0.0
    if histogram.mean_absolute_error < wavelet.mean_absolute_error:
        advantage = wavelet.mean_absolute_error / max(histogram.mean_absolute_error, 1e-9)
        print(f"\nHistogram beats wavelet at equal space by {advantage:.1f}x, "
              "matching the paper's Figure 6.")
    else:
        print("\nUnexpected: wavelet beat the histogram on this stream/seed.")


if __name__ == "__main__":
    main()
