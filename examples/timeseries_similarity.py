#!/usr/bin/env python3
"""Time-series similarity search with histogram features (section 5.2).

Indexes a collection of related series under three equal-space reduced
representations -- the paper's V-optimal features, Keogh et al.'s APCA,
and PAA -- then runs k-NN queries and reports false positives: raw series
the index had to fetch and verify that turned out not to be answers.
Fewer false positives = a tighter representation.

Usage::

    python examples/timeseries_similarity.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import timeseries_collection
from repro.similarity import APCAReducer, PAAReducer, SeriesIndex, VOptimalReducer

COUNT = 150
LENGTH = 256
BUDGET = 16  # numbers stored per series
QUERIES = 15
K = 10


def main() -> None:
    collection = timeseries_collection(COUNT, LENGTH, seed=5)
    rng = np.random.default_rng(6)
    queries = [
        collection[int(rng.integers(COUNT))]
        + rng.normal(0.0, 0.05, LENGTH)
        for _ in range(QUERIES)
    ]

    print(f"{COUNT} series of length {LENGTH}, budget {BUDGET} numbers each, "
          f"{QUERIES} {K}-NN queries\n")
    print(f"{'representation':26s} {'false positives':>16s} {'verified':>9s} {'pruned %':>9s}")
    for reducer in [
        VOptimalReducer(BUDGET),
        VOptimalReducer(BUDGET, epsilon=0.1),
        APCAReducer(BUDGET),
        PAAReducer(BUDGET),
    ]:
        index = SeriesIndex(reducer)
        index.add_all(collection)
        false_positives = 0
        verified = 0
        pruned = 0
        for query in queries:
            outcome = index.knn_search(query, K)
            false_positives += outcome.false_positives
            verified += outcome.candidates_verified
            pruned += outcome.pruned
        pruned_pct = 100.0 * pruned / (QUERIES * COUNT)
        print(f"{reducer.name:26s} {false_positives:>16d} {verified:>9d} "
              f"{pruned_pct:>8.1f}%")

    print("\nAll methods return the exact k nearest neighbours (the lower "
          "bound guarantees no false dismissals); they differ only in "
          "wasted verifications.")


if __name__ == "__main__":
    main()
