#!/usr/bin/env python3
"""Continuous monitoring with standing queries and threshold alerts.

The paper's motivating workload (section 1): operators keep aggregate
queries standing against the last window of a router's byte-count stream.
Here a burst-prone stream is watched by three standing queries -- total
window traffic, recent-quarter traffic, and recent average -- answered at
every arrival from the B-bucket synopsis alone, with edge-triggered
alerts on threshold crossings.

Usage::

    python examples/continuous_alerts.py
"""

from __future__ import annotations

import numpy as np

from repro.query import ContinuousQueryEngine, StandingQuery
from repro.streams import bursty_traffic, take

WINDOW = 256
STREAM_LENGTH = 6000


def main() -> None:
    stream = take(bursty_traffic(seed=4, burst_rate=0.004), STREAM_LENGTH)

    engine = ContinuousQueryEngine(
        window_size=WINDOW, num_buckets=12, epsilon=0.2, check_every=4,
    )
    quarter = WINDOW // 4
    engine.register(StandingQuery("window_total", 0, WINDOW - 1,
                                  threshold=90_000.0))
    engine.register(StandingQuery("recent_total", WINDOW - quarter, WINDOW - 1,
                                  threshold=40_000.0))
    engine.register(StandingQuery("recent_avg", WINDOW - quarter, WINDOW - 1,
                                  aggregate="avg", threshold=500.0))

    alerts = engine.run(stream)

    print(f"{STREAM_LENGTH} arrivals, window {WINDOW}, "
          f"{len(engine.query_names)} standing queries, "
          f"checkpoint every {engine.check_every} arrivals\n")
    print("final answers:")
    for name in engine.query_names:
        print(f"  {name:14s} = {engine.last_answer(name):>12.1f}")
    print(f"\n{len(alerts)} alerts fired:")
    for alert in alerts[:12]:
        print(f"  @{alert.position:>5d}  {alert.query_name:14s} "
              f"answer {alert.answer:>11.1f}  threshold {alert.threshold:>9.1f}")
    if len(alerts) > 12:
        print(f"  ... and {len(alerts) - 12} more")

    # Cross-check the last whole-window answer against the raw buffer.
    exact = float(stream[-WINDOW:].sum())
    approx = engine.last_answer("window_total")
    print(f"\nwhole-window sum: synopsis {approx:.1f} vs exact {exact:.1f} "
          f"(rel err {abs(approx - exact) / exact:.2%})")


if __name__ == "__main__":
    main()
