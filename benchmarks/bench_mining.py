"""Ablation A6: stream-mining extension (paper section 6).

Change detection backed by fixed-window histogram synopses: recall,
detection delay and spurious-event rate across window sizes.
"""

from __future__ import annotations

from repro.bench import change_detection


def test_change_detection_quality(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: change_detection(window_sizes=(64, 128, 256)),
        rounds=1,
        iterations=1,
    )
    record_table("a6_change_detection", table)
    for row in table:
        assert row["recall"] >= 0.8, row
        assert row["spurious_per_1k"] <= 1.0, row
