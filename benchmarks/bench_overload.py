"""Mixed-priority overload storm: goodput, shed mass and latency by class.

Drives the threaded service with QoS enabled into a deliberate 2x
overload: a bronze (priority 2, sheddable) stream is offered twice the
gold (priority 0) volume while its worker is slowed by a seeded
:class:`FaultInjector`, so the degradation ladder must escalate.
Recorded per priority class:

* offered vs admitted points and the shed mass (every dropped point is
  accounted -- the sum must reconcile);
* goodput (admitted points/second over the storm);
* p50 / p99 enqueue latency (gold must stay flat while bronze saturates);
* the stream's effective epsilon after the storm (bronze widens
  honestly, gold must stay within its configured bound).

Plus the storm itself: worst ladder level reached, level transition
counts, and the time from end-of-storm to the ladder walking back to
``healthy``.

This is a capacity characterization, not a regression gate: the section
merges into the committed ``BENCH_service.json`` under ``"overload"``
(like ``bench_counting.py``'s section) and CI uploads it without
comparing.

Standalone:  ``PYTHONPATH=src python benchmarks/bench_overload.py``
"""

from __future__ import annotations

import json
import platform
import sys
import threading
import time
from pathlib import Path

from repro.datasets import att_utilization_stream
from repro.service import FaultInjector, QoSConfig, QoSController, StreamService
from repro.service.qos import DEGRADATION_LEVELS, TRANSITIONS_METRIC

GOLD_POINTS = 20_000
BRONZE_POINTS = 40_000  # 2x the gold offer, into a slowed worker
CHUNK = 256
BACKEND = "gk_quantiles"
PARAMS = {"epsilon": 0.05}
ACCURACY = {"epsilon": 0.25, "window_size": 512, "check_every": 256}

#: Seeded slowdown of the bronze worker: deterministic overload.
SLOW_SECONDS = 0.004
SLOW_TIMES = 400

QOS = QoSConfig(
    evaluate_every=1,
    cooldown=2,
    shed_fraction=0.5,
    throttle_fill=0.2,
    shed_fill=0.35,
    stale_fill=0.99,
    throttle_latency=10.0,
    shed_latency=20.0,
    stale_latency=30.0,
)

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def _priority_row(service, snapshot, name: str, offered: int,
                  seconds: float) -> dict:
    stats = service.stats(name)
    stream = snapshot["streams"][name]
    accuracy = service.accuracy(name)
    admitted = int(stats["arrivals"])
    return {
        "stream": name,
        "priority": stream["priority"],
        "sheddable": stream["sheddable"],
        "offered_points": offered,
        "admitted_points": admitted,
        "shed_points": stream["shed_points"],
        "goodput_points_per_second": admitted / seconds,
        "enqueue_p50_seconds": stats["enqueue_p50_seconds"],
        "enqueue_p99_seconds": stats["enqueue_p99_seconds"],
        "effective_epsilon": accuracy["effective_epsilon"],
        "configured_epsilon": accuracy["configured_epsilon"],
        "accuracy_violations": accuracy["violations"],
    }


def run_storm() -> dict:
    gold = att_utilization_stream(GOLD_POINTS, seed=7)
    bronze = att_utilization_stream(BRONZE_POINTS, seed=8)
    ctrl = QoSController(QOS)
    injector = FaultInjector().slow_ingest_at(
        1, SLOW_SECONDS, stream="bronze", times=SLOW_TIMES
    )
    with StreamService(qos=ctrl, fault_injector=injector) as service:
        service.create_stream(
            "gold", backend=BACKEND, params=PARAMS, maintain_every=64,
            priority=0, accuracy=dict(ACCURACY),
        )
        service.create_stream(
            "bronze", backend=BACKEND, params=PARAMS, maintain_every=64,
            priority=2, queue_capacity=512, backpressure="drop_oldest",
            accuracy=dict(ACCURACY),
        )

        worst = [0]

        def produce_bronze() -> None:
            for start in range(0, BRONZE_POINTS, CHUNK):
                service.ingest("bronze", bronze[start : start + CHUNK])
                worst[0] = max(worst[0], ctrl.level)

        producer = threading.Thread(target=produce_bronze)
        started = time.perf_counter()
        producer.start()
        for start in range(0, GOLD_POINTS, CHUNK):
            service.ingest("gold", gold[start : start + CHUNK])
            worst[0] = max(worst[0], ctrl.level)
        producer.join()
        service.flush()
        storm_seconds = time.perf_counter() - started

        recovery_started = time.perf_counter()
        deadline = recovery_started + 30.0
        while time.perf_counter() < deadline:
            if service.qos()["level"] == "healthy":
                break
            time.sleep(0.01)
        recovery_seconds = time.perf_counter() - recovery_started

        snapshot = service.qos()
        transitions = {
            sample["labels"]["level"]: sample["value"]
            for sample in service.metrics()
            if sample["name"] == TRANSITIONS_METRIC
        }
        rows = {
            "gold": _priority_row(
                service, snapshot, "gold", GOLD_POINTS, storm_seconds
            ),
            "bronze": _priority_row(
                service, snapshot, "bronze", BRONZE_POINTS, storm_seconds
            ),
        }
        for row in rows.values():
            print(
                f"{row['stream']:>6} (priority {row['priority']}): "
                f"{row['goodput_points_per_second']:>11,.0f} points/s "
                f"goodput, shed {row['shed_points']:>6,} of "
                f"{row['offered_points']:,} offered, "
                f"p99 enqueue {row['enqueue_p99_seconds'] * 1e6:8.1f} us"
            )
        print(
            f"ladder peaked at {DEGRADATION_LEVELS[worst[0]]!r}, "
            f"back to healthy {recovery_seconds * 1e3:.0f} ms after the storm"
        )
        return {
            "storm_seconds": storm_seconds,
            "ladder_level_max": DEGRADATION_LEVELS[worst[0]],
            "ladder_transitions": transitions,
            "recovered_to_healthy_seconds": recovery_seconds,
            "final_level": snapshot["level"],
            "total_admitted_points": snapshot["admitted_points"],
            "total_shed_points": snapshot["shed_points"],
            "per_priority": rows,
        }


def main(output_path: str | Path = DEFAULT_OUTPUT) -> dict:
    section = {
        "backend": BACKEND,
        "params": PARAMS,
        "chunk": CHUNK,
        "slow_seconds": SLOW_SECONDS,
        "slow_times": SLOW_TIMES,
        "qos": QOS.to_dict(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        **run_storm(),
    }
    output_path = Path(output_path)
    payload = {}
    if output_path.exists():
        with open(output_path) as handle:
            payload = json.load(handle)
    payload["overload"] = section
    with open(output_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"merged overload section into {output_path}")
    return section


if __name__ == "__main__":
    main(*sys.argv[1:])
