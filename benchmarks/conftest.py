"""Shared machinery for the benchmark suite.

Each benchmark regenerates one paper artifact (figure panel, section 5.2
experiment, or ablation) via :mod:`repro.bench.experiments`, times it with
pytest-benchmark, and archives the rendered result table under
``benchmarks/results/`` so the series survive the run (pytest captures
stdout).  EXPERIMENTS.md is compiled from those archives.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Save a rendered ResultTable (and echo it for -s runs)."""

    def _record(name: str, table) -> None:
        text = table.render()
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
