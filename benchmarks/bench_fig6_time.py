"""Figure 6(c)/(d): histogram maintenance time vs subsequence length.

Paper observations to reproduce in shape: construction time grows only
mildly with the window length (the per-point cost is polylogarithmic in
n), grows as B increases or epsilon decreases, and the wavelet
recomputed-per-slide baseline is drastically more expensive in total
algorithmic work (the paper omits its curve for being up to an order of
magnitude worse).

Note on constants: the paper's C implementation makes the wavelet's O(n)
slide look slow next to polylog histogram maintenance; in this library
the wavelet's O(n) is one numpy FFT-like pass while the histogram logic
is interpreted Python, so *absolute* times favour the wavelet at small n.
``herror_evals`` is the hardware-independent work measure; the scaling
ablation (bench_ablation_scaling) carries the growth-rate comparison.
"""

from __future__ import annotations

from repro.bench import fig6_time

WINDOWS = (128, 256, 512, 1024)
BUCKETS = (8, 16)


def _run(epsilon: float):
    return fig6_time(
        epsilon, window_sizes=WINDOWS, bucket_counts=BUCKETS, arrivals=40
    )


def test_fig6c_time_loose_epsilon(benchmark, record_table):
    table = benchmark.pedantic(_run, args=(0.5,), rounds=1, iterations=1)
    record_table("fig6c_time_eps0.5", table)
    rows = table.rows()
    # Sublinear growth: 8x window -> well under 8x work per arrival.
    small = next(r for r in rows if r["window"] == 128 and r["buckets"] == 8)
    large = next(r for r in rows if r["window"] == 1024 and r["buckets"] == 8)
    assert large["herror_evals"] < 8 * small["herror_evals"]


def test_fig6d_time_tight_epsilon(benchmark, record_table):
    table = benchmark.pedantic(_run, args=(0.1,), rounds=1, iterations=1)
    record_table("fig6d_time_eps0.1", table)
    rows = table.rows()
    small = next(r for r in rows if r["window"] == 128 and r["buckets"] == 8)
    large = next(r for r in rows if r["window"] == 1024 and r["buckets"] == 8)
    assert large["herror_evals"] < 8 * small["herror_evals"]
