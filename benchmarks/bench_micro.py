"""Micro-benchmarks of the core primitives (multi-round timings).

Not tied to a paper figure; these watch for regressions in the building
blocks the experiments rest on: the optimal DP, one fixed-window rebuild,
agglomerative per-point cost, the Haar transform, and GK insertion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AgglomerativeHistogramBuilder,
    FixedWindowHistogramBuilder,
    optimal_histogram,
)
from repro.datasets import att_utilization_stream
from repro.sketches import GKQuantileSummary
from repro.wavelets import WaveletSynopsis, haar_transform

STREAM = att_utilization_stream(6000, seed=99)


def test_optimal_dp_n512_b8(benchmark):
    values = STREAM[:512]
    benchmark(optimal_histogram, values, 8)


def test_fixed_window_rebuild_n512_b8(benchmark):
    builder = FixedWindowHistogramBuilder(512, 8, 0.25)
    builder.extend(STREAM[:512])
    builder.update()
    cursor = {"position": 512}

    def slide_once():
        builder.append(STREAM[cursor["position"] % STREAM.size])
        cursor["position"] += 1
        builder.update()

    benchmark(slide_once)


def test_agglomerative_append_b8(benchmark):
    builder = AgglomerativeHistogramBuilder(8, 0.25)
    builder.extend(STREAM[:2000])
    cursor = {"position": 2000}

    def append_once():
        builder.append(STREAM[cursor["position"] % STREAM.size])
        cursor["position"] += 1

    benchmark(append_once)


def test_haar_transform_n1024(benchmark):
    values = STREAM[:1024]
    benchmark(haar_transform, values)


def test_wavelet_synopsis_n1024_b16(benchmark):
    values = STREAM[:1024]
    benchmark(WaveletSynopsis.from_values, values, 16)


def test_gk_insert_eps001(benchmark):
    summary = GKQuantileSummary(0.01)
    summary.extend(STREAM[:3000])
    cursor = {"position": 3000}

    def insert_once():
        summary.insert(float(STREAM[cursor["position"] % STREAM.size]))
        cursor["position"] += 1

    benchmark(insert_once)


def test_histogram_range_query_b32(benchmark):
    histogram = optimal_histogram(STREAM[:1024], 32)
    rng = np.random.default_rng(0)
    queries = [
        tuple(sorted((int(rng.integers(1024)), int(rng.integers(1024)))))
        for _ in range(64)
    ]
    queries = [(i, j) for i, j in queries if i <= j]

    def run_queries():
        total = 0.0
        for i, j in queries:
            total += histogram.range_sum(i, j)
        return total

    benchmark(run_queries)
