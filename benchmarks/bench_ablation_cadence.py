"""Ablation A9: maintenance cadence (cost vs staleness).

The paper's model rebuilds the synopsis after every arrival; relaxing the
cadence divides maintenance cost while queries pay a staleness penalty.
The sweep quantifies the dial so a deployment can pick a point on it.
"""

from __future__ import annotations

from repro.bench import maintenance_cadence


def test_maintenance_cadence(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: maintenance_cadence(window=512, arrivals=256),
        rounds=1,
        iterations=1,
    )
    record_table("a9_maintenance_cadence", table)
    rows = table.rows()
    # Cost falls monotonically with the cadence...
    costs = [row["ms_per_arrival"] for row in rows]
    assert costs == sorted(costs, reverse=True)
    # ...while per-arrival maintenance keeps queries the most accurate.
    assert rows[0]["stale_query_err"] <= rows[-1]["stale_query_err"]
