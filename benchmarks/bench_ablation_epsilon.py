"""Ablation A1: the epsilon accuracy/speed dial.

The paper's algorithms "trade accuracy for speed and allow for a graceful
tradeoff between the two".  Sweeping epsilon at fixed window and B shows
the dial: the SSE ratio to the optimal DP stays within (1 + epsilon)
while the per-arrival cost and the interval-cover size grow as epsilon
shrinks.
"""

from __future__ import annotations

from repro.bench import epsilon_ablation


def _run():
    return epsilon_ablation(
        window=512,
        num_buckets=8,
        epsilons=(1.0, 0.5, 0.2, 0.1, 0.05),
        arrivals=30,
    )


def test_epsilon_tradeoff(benchmark, record_table):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_table("a1_epsilon_ablation", table)
    rows = table.rows()
    for row in rows:
        assert row["sse_ratio"] <= 1.0 + row["epsilon"] + 1e-6, row
    # Tighter epsilon -> more intervals (monotone across the sweep ends).
    assert rows[-1]["intervals_per_level"] > rows[0]["intervals_per_level"]
