"""Service ingestion throughput and enqueue latency under concurrency.

Measures the serving layer (:mod:`repro.service`) end to end: one
producer thread per hosted stream pushes chunked points through the
bounded queues while the per-stream workers drain them, for fleets of
1 / 4 / 16 concurrent streams.  Reported per fleet size:

* aggregate ingest throughput (points/second, submit-to-drained);
* p50 / p99 enqueue latency (time a producer spent inside ``submit``).

Standalone:  ``PYTHONPATH=src python benchmarks/bench_service_throughput.py``
writes ``BENCH_service.json`` in the current directory.
"""

from __future__ import annotations

import json
import platform
import sys
import threading
import time

from repro.datasets import att_utilization_stream
from repro.service import StreamService

STREAM_COUNTS = (1, 4, 16)
POINTS_PER_STREAM = 40_000
CHUNK = 512
BACKEND = "gk_quantiles"
PARAMS = {"epsilon": 0.05}
MAINTAIN_EVERY = 64
QUEUE_CAPACITY = 8_192


def run_fleet(num_streams: int) -> dict:
    """Ingest POINTS_PER_STREAM into each of ``num_streams`` streams."""
    stream = att_utilization_stream(POINTS_PER_STREAM, seed=7)
    with StreamService() as service:
        names = [f"s{i}" for i in range(num_streams)]
        for name in names:
            service.create_stream(
                name,
                backend=BACKEND,
                params=PARAMS,
                maintain_every=MAINTAIN_EVERY,
                queue_capacity=QUEUE_CAPACITY,
            )

        def produce(name: str) -> None:
            for start in range(0, POINTS_PER_STREAM, CHUNK):
                service.ingest(name, stream[start : start + CHUNK])

        producers = [
            threading.Thread(target=produce, args=(name,)) for name in names
        ]
        started = time.perf_counter()
        for producer in producers:
            producer.start()
        for producer in producers:
            producer.join()
        service.flush()
        elapsed = time.perf_counter() - started

        stats = [service.stats(name) for name in names]
        total_points = sum(s["ingested_points"] for s in stats)
        assert total_points == num_streams * POINTS_PER_STREAM
        return {
            "streams": num_streams,
            "points_per_stream": POINTS_PER_STREAM,
            "total_points": total_points,
            "seconds": elapsed,
            "points_per_second": total_points / elapsed,
            "enqueue_p50_seconds": max(s["enqueue_p50_seconds"] for s in stats),
            "enqueue_p99_seconds": max(s["enqueue_p99_seconds"] for s in stats),
            "max_queue_depth": max(s["max_queue_depth"] for s in stats),
        }


def main(output_path: str = "BENCH_service.json") -> dict:
    results = []
    for num_streams in STREAM_COUNTS:
        result = run_fleet(num_streams)
        results.append(result)
        print(
            f"{result['streams']:>3} streams: "
            f"{result['points_per_second']:>12,.0f} points/s, "
            f"p99 enqueue {result['enqueue_p99_seconds'] * 1e6:8.1f} us"
        )
    payload = {
        "benchmark": "service_throughput",
        "backend": BACKEND,
        "params": PARAMS,
        "maintain_every": MAINTAIN_EVERY,
        "queue_capacity": QUEUE_CAPACITY,
        "chunk": CHUNK,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }
    with open(output_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output_path}")
    return payload


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BENCH_service.json")
