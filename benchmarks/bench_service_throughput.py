"""Service ingestion throughput and enqueue latency under concurrency.

Measures the serving layer (:mod:`repro.service`) end to end: one
producer thread per hosted stream pushes chunked points through the
bounded queues while the per-stream workers drain them, for fleets of
1 / 4 / 16 concurrent streams.  Reported per fleet size:

* aggregate ingest throughput (points/second, submit-to-drained);
* p50 / p99 enqueue latency (time a producer spent inside ``submit``);
* per-stage wall time (ingest / maintain / materialize) folded from the
  service's always-on ``repro_stage_seconds`` histograms -- which also
  makes this benchmark the regression guard for the observability
  layer's hot-path overhead;
* recovery time: a supervised stream is crashed mid-ingest with a seeded
  :class:`FaultInjector` and the crash-observed-to-healthy wall time is
  measured over several trials (the fault-tolerance subsystem's latency
  budget: backoff + snapshot load + replay);
* sharded scaling: the same 16-stream fleet pushed through a
  :class:`~repro.shard.ShardRouter` at each shard count in
  ``SHARD_COUNTS``, so the process tier's IPC overhead and scaling curve
  are recorded next to the threaded numbers they must beat.

Standalone:  ``PYTHONPATH=src python benchmarks/bench_service_throughput.py``
writes ``BENCH_service.json`` in the current directory.

Regression gate:  ``... bench_service_throughput.py --check`` re-runs the
gated fleets (threaded 1 / 16 streams, sharded 16 streams at the largest
shard count) and exits non-zero when any is more than
``REGRESSION_TOLERANCE`` slower than the committed ``BENCH_service.json``.
CI runs this as a non-blocking step and uploads both JSON files.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.datasets import att_utilization_stream
from repro.service import FaultInjector, RestartPolicy, StreamService
from repro.shard import ShardRouter

STREAM_COUNTS = (1, 4, 16)
POINTS_PER_STREAM = 40_000
CHUNK = 512
BACKEND = "gk_quantiles"
PARAMS = {"epsilon": 0.05}
MAINTAIN_EVERY = 64
QUEUE_CAPACITY = 8_192

#: Shard counts swept for the 16-stream sharded scaling rows.
SHARD_COUNTS = (1, 2, 4)
SHARDED_STREAMS = 16

#: ``--check`` fails on a throughput drop beyond this fraction.
REGRESSION_TOLERANCE = 0.15

#: The committed baseline the regression gate compares against.
DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def synopsis_cells(synopsis) -> int | None:
    """Stored cells of a served synopsis -- the space half of the
    space/throughput trade-off, recorded next to points/s.

    GK summaries report their tuple count, histograms their buckets,
    the counting backends their bucket/table cells; synopses without a
    recognizable footprint report ``None`` rather than a guess.
    """
    for attribute in ("bucket_cells", "table_cells"):
        probe = getattr(synopsis, attribute, None)
        if callable(probe):
            return int(probe())
    size = getattr(synopsis, "summary_size", None)
    if size is not None:
        return int(size)
    try:
        return len(synopsis)
    except TypeError:
        return None


def run_fleet(num_streams: int) -> dict:
    """Ingest POINTS_PER_STREAM into each of ``num_streams`` streams."""
    stream = att_utilization_stream(POINTS_PER_STREAM, seed=7)
    with StreamService() as service:
        names = [f"s{i}" for i in range(num_streams)]
        for name in names:
            service.create_stream(
                name,
                backend=BACKEND,
                params=PARAMS,
                maintain_every=MAINTAIN_EVERY,
                queue_capacity=QUEUE_CAPACITY,
            )

        def produce(name: str) -> None:
            for start in range(0, POINTS_PER_STREAM, CHUNK):
                service.ingest(name, stream[start : start + CHUNK])

        producers = [
            threading.Thread(target=produce, args=(name,)) for name in names
        ]
        started = time.perf_counter()
        for producer in producers:
            producer.start()
        for producer in producers:
            producer.join()
        service.flush()
        elapsed = time.perf_counter() - started

        stats = [service.stats(name) for name in names]
        total_points = sum(s["ingested_points"] for s in stats)
        assert total_points == num_streams * POINTS_PER_STREAM
        footprints = [synopsis_cells(service.synopsis(name)) for name in names]
        footprints = [cells for cells in footprints if cells is not None]
        return {
            "streams": num_streams,
            "points_per_stream": POINTS_PER_STREAM,
            "total_points": total_points,
            "seconds": elapsed,
            "points_per_second": total_points / elapsed,
            "enqueue_p50_seconds": max(s["enqueue_p50_seconds"] for s in stats),
            "enqueue_p99_seconds": max(s["enqueue_p99_seconds"] for s in stats),
            "max_queue_depth": max(s["max_queue_depth"] for s in stats),
            "synopsis_cells_max": max(footprints, default=None),
            "stage_seconds": stage_summary(service),
        }


def run_sharded_fleet(num_streams: int, num_shards: int) -> dict:
    """The ``run_fleet`` workload through a ShardRouter process fleet.

    Identical stream specs, chunking and producer-thread pattern; the
    only variable is the tier, so the row is directly comparable to the
    threaded result at the same stream count.  Enqueue percentiles are
    the shard-internal worker numbers (time inside ``submit`` after the
    frame crossed the socket), the same quantity the threaded rows
    report.
    """
    stream = att_utilization_stream(POINTS_PER_STREAM, seed=7)
    with ShardRouter(num_shards=num_shards) as service:
        names = [f"s{i}" for i in range(num_streams)]
        for name in names:
            service.create_stream(
                name,
                backend=BACKEND,
                params=PARAMS,
                maintain_every=MAINTAIN_EVERY,
                queue_capacity=QUEUE_CAPACITY,
            )

        def produce(name: str) -> None:
            for start in range(0, POINTS_PER_STREAM, CHUNK):
                service.ingest(name, stream[start : start + CHUNK])

        producers = [
            threading.Thread(target=produce, args=(name,)) for name in names
        ]
        started = time.perf_counter()
        for producer in producers:
            producer.start()
        for producer in producers:
            producer.join()
        service.flush()
        elapsed = time.perf_counter() - started

        stats = [service.stats(name) for name in names]
        total_points = sum(s["ingested_points"] for s in stats)
        assert total_points == num_streams * POINTS_PER_STREAM
        return {
            "streams": num_streams,
            "shards": num_shards,
            "points_per_stream": POINTS_PER_STREAM,
            "total_points": total_points,
            "seconds": elapsed,
            "points_per_second": total_points / elapsed,
            "enqueue_p50_seconds": max(s["enqueue_p50_seconds"] for s in stats),
            "enqueue_p99_seconds": max(s["enqueue_p99_seconds"] for s in stats),
            "max_queue_depth": max(s["max_queue_depth"] for s in stats),
            "stage_seconds": stage_summary(service),
        }


def run_sharded_suite() -> dict:
    """16-stream sharded scaling rows, one per shard count."""
    rows = []
    for num_shards in SHARD_COUNTS:
        row = run_sharded_fleet(SHARDED_STREAMS, num_shards)
        rows.append(row)
        print(
            f"{row['streams']:>3} streams / {row['shards']} shard(s): "
            f"{row['points_per_second']:>12,.0f} points/s, "
            f"p99 enqueue {row['enqueue_p99_seconds'] * 1e6:8.1f} us"
        )
    return {
        "streams": SHARDED_STREAMS,
        "shard_counts": list(SHARD_COUNTS),
        "results": rows,
    }


def stage_summary(service) -> dict:
    """Per-stage latency totals aggregated over the fleet's streams.

    The always-on tracer already recorded every ingest / maintain /
    materialize duration into ``repro_stage_seconds``; this just folds
    the per-stream histograms into one count/sum plus the worst
    per-stream p50/p99 (a fleet is only as fast as its slowest stream).
    """
    summary: dict[str, dict] = {}
    for sample in service.metrics():
        if sample["name"] != "repro_stage_seconds":
            continue
        stage = sample["labels"]["stage"]
        entry = summary.setdefault(
            stage,
            {"count": 0, "sum_seconds": 0.0, "p50_seconds": 0.0,
             "p99_seconds": 0.0},
        )
        entry["count"] += sample["count"]
        entry["sum_seconds"] += sample["sum"]
        entry["p50_seconds"] = max(
            entry["p50_seconds"], sample["quantiles"]["0.5"]
        )
        entry["p99_seconds"] = max(
            entry["p99_seconds"], sample["quantiles"]["0.99"]
        )
    return summary


RECOVERY_TRIALS = 5
RECOVERY_POLICY = RestartPolicy(
    max_restarts=3, backoff_initial=0.01, backoff_factor=2.0, backoff_max=0.05
)


def run_recovery(trials: int = RECOVERY_TRIALS) -> dict:
    """Crash a supervised stream mid-ingest; time crash -> healthy.

    Each trial ingests one stream with a seeded crash somewhere in the
    second half, then polls ``health()`` tightly: the clock starts at the
    first non-healthy observation and stops at the first healthy one
    after a completed restart.
    """
    stream = att_utilization_stream(POINTS_PER_STREAM, seed=7)
    durations = []
    for trial in range(trials):
        with tempfile.TemporaryDirectory() as snapshot_dir:
            injector = FaultInjector(seed=trial)
            crash = POINTS_PER_STREAM // 2 + injector.crash_points(
                POINTS_PER_STREAM // 4, count=1
            )[0]
            injector.crash_at(crash, stream="r")
            service = StreamService(
                snapshot_dir,
                supervise=True,
                restart_policy=RECOVERY_POLICY,
                fault_injector=injector,
            )
            try:
                service.create_stream(
                    "r",
                    backend=BACKEND,
                    params=PARAMS,
                    maintain_every=MAINTAIN_EVERY,
                    queue_capacity=QUEUE_CAPACITY,
                    checkpoint_every=POINTS_PER_STREAM // 8,
                )

                def produce() -> None:
                    for start in range(0, POINTS_PER_STREAM, CHUNK):
                        service.ingest("r", stream[start : start + CHUNK])
                    service.flush("r")

                producer = threading.Thread(target=produce)
                producer.start()
                crashed_at = healthy_at = None
                deadline = time.perf_counter() + 60.0
                while time.perf_counter() < deadline:
                    health = service.health("r")
                    now = time.perf_counter()
                    if health["state"] != "healthy" and crashed_at is None:
                        crashed_at = now
                    if (
                        crashed_at is not None
                        and health["state"] == "healthy"
                        and health["restarts"] >= 1
                    ):
                        healthy_at = now
                        break
                    time.sleep(0.0005)
                producer.join()
                if crashed_at is None or healthy_at is None:
                    raise RuntimeError(
                        f"recovery trial {trial}: crash at arrival {crash} "
                        "was never observed to complete"
                    )
                durations.append(healthy_at - crashed_at)
            finally:
                service.close(checkpoint=False)
    return {
        "trials": trials,
        "policy": {
            "max_restarts": RECOVERY_POLICY.max_restarts,
            "backoff_initial": RECOVERY_POLICY.backoff_initial,
            "backoff_factor": RECOVERY_POLICY.backoff_factor,
            "backoff_max": RECOVERY_POLICY.backoff_max,
        },
        "checkpoint_every": POINTS_PER_STREAM // 8,
        "recovery_seconds_median": statistics.median(durations),
        "recovery_seconds_min": min(durations),
        "recovery_seconds_max": max(durations),
    }


def _previous_pps(baseline: dict) -> dict:
    """``{(streams, shards-or-None): points_per_second}`` from a payload."""
    previous: dict = {}
    for row in baseline.get("results", []):
        previous[(row["streams"], None)] = row["points_per_second"]
    for row in baseline.get("sharded", {}).get("results", []):
        previous[(row["streams"], row["shards"])] = row["points_per_second"]
    return previous


def main(output_path: str = "BENCH_service.json") -> dict:
    previous = {}
    merged_sections = {}
    if Path(output_path).exists():
        with open(output_path) as handle:
            committed = json.load(handle)
        previous = _previous_pps(committed)
        # bench_counting.py / bench_overload.py merge their (non-gated)
        # sections into the same file; a fresh service run must not
        # silently drop them.
        merged_sections = {
            key: committed[key]
            for key in ("counting", "overload")
            if key in committed
        }
    results = []
    for num_streams in STREAM_COUNTS:
        result = run_fleet(num_streams)
        results.append(result)
        print(
            f"{result['streams']:>3} streams: "
            f"{result['points_per_second']:>12,.0f} points/s, "
            f"p99 enqueue {result['enqueue_p99_seconds'] * 1e6:8.1f} us"
        )
        for stage, entry in sorted(result["stage_seconds"].items()):
            print(
                f"    {stage:<11} {entry['count']:>7} spans, "
                f"total {entry['sum_seconds']:7.3f} s, "
                f"p99 {entry['p99_seconds'] * 1e6:8.1f} us"
            )
    sharded = run_sharded_suite()
    recovery = run_recovery()
    print(
        f"recovery (crash -> healthy): "
        f"median {recovery['recovery_seconds_median'] * 1e3:.1f} ms, "
        f"max {recovery['recovery_seconds_max'] * 1e3:.1f} ms "
        f"over {recovery['trials']} trials"
    )
    threaded_16 = next(
        r["points_per_second"] for r in results if r["streams"] == SHARDED_STREAMS
    )
    sharded_best = max(
        r["points_per_second"] for r in sharded["results"]
    )
    comparison = {
        "threaded_16_stream_pps": threaded_16,
        "sharded_16_stream_best_pps": sharded_best,
        "sharded_over_threaded": sharded_best / threaded_16,
    }
    prev_16 = previous.get((SHARDED_STREAMS, None))
    if prev_16:
        comparison["previous_committed_16_stream_pps"] = prev_16
        comparison["sharded_over_previous_committed"] = sharded_best / prev_16
        print(
            f"sharded best {sharded_best:,.0f} points/s = "
            f"{sharded_best / prev_16:.2f}x the previously committed "
            f"16-stream baseline ({prev_16:,.0f})"
        )
    payload = {
        "benchmark": "service_throughput",
        "backend": BACKEND,
        "params": PARAMS,
        "maintain_every": MAINTAIN_EVERY,
        "queue_capacity": QUEUE_CAPACITY,
        "chunk": CHUNK,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
        "sharded": sharded,
        "comparison": comparison,
        "recovery": recovery,
    }
    payload.update(merged_sections)
    with open(output_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output_path}")
    return payload


def check(baseline_path: str, output_path: str) -> int:
    """Re-run the gated fleets; non-zero on a >tolerance regression.

    Gated rows: threaded at 1 stream (single-stream latency path),
    threaded at 16 streams (aggregate), and -- once the committed
    baseline carries sharded rows -- the 16-stream sharded fleet at the
    largest shard count.  A fresh payload is always written to
    ``output_path`` so CI can upload the committed and fresh JSON side
    by side.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    previous = _previous_pps(baseline)
    fresh_rows = [run_fleet(1), run_fleet(SHARDED_STREAMS)]
    gate_shards = max(SHARD_COUNTS)
    if (SHARDED_STREAMS, gate_shards) in previous:
        fresh_rows.append(run_sharded_fleet(SHARDED_STREAMS, gate_shards))
    failures = []
    checks = []
    for row in fresh_rows:
        key = (row["streams"], row.get("shards"))
        base_pps = previous.get(key)
        label = f"{key[0]} streams" + (
            f" / {key[1]} shards" if key[1] else " (threaded)"
        )
        if base_pps is None:
            print(f"{label}: no committed baseline row, skipped")
            continue
        fresh_pps = row["points_per_second"]
        drop = (base_pps - fresh_pps) / base_pps
        verdict = "ok" if drop <= REGRESSION_TOLERANCE else "REGRESSION"
        checks.append(
            {
                "streams": key[0],
                "shards": key[1],
                "baseline_pps": base_pps,
                "fresh_pps": fresh_pps,
                "drop_fraction": drop,
                "verdict": verdict,
            }
        )
        print(
            f"{label}: {fresh_pps:>12,.0f} points/s vs committed "
            f"{base_pps:,.0f} ({-drop:+.1%}) -> {verdict}"
        )
        if verdict != "ok":
            failures.append(label)
    payload = {
        "benchmark": "service_throughput_check",
        "baseline": str(baseline_path),
        "tolerance": REGRESSION_TOLERANCE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "checks": checks,
        "passed": not failures,
    }
    with open(output_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output_path}")
    if failures:
        print(f"FAILED: throughput regression in {', '.join(failures)}")
        return 1
    print("all gated fleets within tolerance")
    return 0


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Service ingestion throughput benchmark and "
        "regression gate."
    )
    parser.add_argument(
        "output",
        nargs="?",
        default=None,
        help="result JSON path (default: BENCH_service.json, or "
        "BENCH_service_check.json with --check)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare the gated fleets against the committed baseline "
        "and exit non-zero on a regression",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline for --check "
        "(default: the repo's BENCH_service.json)",
    )
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args(sys.argv[1:])
    if args.check:
        raise SystemExit(
            check(args.baseline, args.output or "BENCH_service_check.json")
        )
    main(args.output or "BENCH_service.json")
