"""Service ingestion throughput and enqueue latency under concurrency.

Measures the serving layer (:mod:`repro.service`) end to end: one
producer thread per hosted stream pushes chunked points through the
bounded queues while the per-stream workers drain them, for fleets of
1 / 4 / 16 concurrent streams.  Reported per fleet size:

* aggregate ingest throughput (points/second, submit-to-drained);
* p50 / p99 enqueue latency (time a producer spent inside ``submit``);
* per-stage wall time (ingest / maintain / materialize) folded from the
  service's always-on ``repro_stage_seconds`` histograms -- which also
  makes this benchmark the regression guard for the observability
  layer's hot-path overhead;
* recovery time: a supervised stream is crashed mid-ingest with a seeded
  :class:`FaultInjector` and the crash-observed-to-healthy wall time is
  measured over several trials (the fault-tolerance subsystem's latency
  budget: backoff + snapshot load + replay);
* sharded scaling: the same 16-stream fleet pushed through a
  :class:`~repro.shard.ShardRouter` at each shard count in
  ``SHARD_COUNTS``, so the process tier's IPC overhead and scaling curve
  are recorded next to the threaded numbers they must beat;
* checkpoint cost: a 16-stream fleet of state-heavy sliding-window
  buffers is checkpointed under the binary delta cadence
  (``snapshot_base_every=CHECKPOINT_BASE_EVERY``) and against the
  format-2 JSON layout the store used to write, recording bytes per
  checkpoint (full, delta, amortized over a base cycle), checkpoint
  p50/p99 latency for both layouts, and cold-restore latency.

Standalone:  ``PYTHONPATH=src python benchmarks/bench_service_throughput.py``
writes ``BENCH_service.json`` in the current directory.

Regression gate:  ``... bench_service_throughput.py --check`` re-runs the
gated fleets (threaded 1 / 16 streams, sharded 16 streams at the largest
shard count) and exits non-zero when any is more than
``REGRESSION_TOLERANCE`` slower than the committed ``BENCH_service.json``.
It also re-runs the checkpoint suite and fails when the amortized binary
checkpoint stops being ``CHECKPOINT_BYTES_GATE`` times smaller than the
JSON equivalent, when its p99 stops beating JSON's, or when the
amortized bytes regress against the committed baseline.  CI runs this as
a non-blocking step and uploads both JSON files.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.datasets import att_utilization_stream
from repro.service import FaultInjector, RestartPolicy, StreamService
from repro.shard import ShardRouter

STREAM_COUNTS = (1, 4, 16)
POINTS_PER_STREAM = 40_000
CHUNK = 512
BACKEND = "gk_quantiles"
PARAMS = {"epsilon": 0.05}
MAINTAIN_EVERY = 64
QUEUE_CAPACITY = 8_192

#: Shard counts swept for the 16-stream sharded scaling rows.
SHARD_COUNTS = (1, 2, 4)
SHARDED_STREAMS = 16

#: ``--check`` fails on a throughput drop beyond this fraction.
REGRESSION_TOLERANCE = 0.15

#: Checkpoint-cost suite: a fleet of sliding-window buffers (the most
#: state-heavy backend, i.e. the workload delta checkpoints target).
CHECKPOINT_STREAMS = 16
CHECKPOINT_BACKEND = "exact"
CHECKPOINT_PARAMS = {"window_size": 4096}
CHECKPOINT_BASE_EVERY = 8
CHECKPOINT_INTERVAL = 512  # points per stream between barriers
CHECKPOINT_CYCLES = 2  # full delta cycles driven (base_every barriers each)
CHECKPOINT_JSON_TRIALS = 6  # timed format-2 JSON checkpoint passes

#: ``--check`` fails when amortized binary checkpoint bytes are not at
#: least this many times smaller than the JSON-equivalent checkpoint.
CHECKPOINT_BYTES_GATE = 5.0

#: The committed baseline the regression gate compares against.
DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def synopsis_cells(synopsis) -> int | None:
    """Stored cells of a served synopsis -- the space half of the
    space/throughput trade-off, recorded next to points/s.

    GK summaries report their tuple count, histograms their buckets,
    the counting backends their bucket/table cells; synopses without a
    recognizable footprint report ``None`` rather than a guess.
    """
    for attribute in ("bucket_cells", "table_cells"):
        probe = getattr(synopsis, attribute, None)
        if callable(probe):
            return int(probe())
    size = getattr(synopsis, "summary_size", None)
    if size is not None:
        return int(size)
    try:
        return len(synopsis)
    except TypeError:
        return None


def run_fleet(num_streams: int) -> dict:
    """Ingest POINTS_PER_STREAM into each of ``num_streams`` streams."""
    stream = att_utilization_stream(POINTS_PER_STREAM, seed=7)
    with StreamService() as service:
        names = [f"s{i}" for i in range(num_streams)]
        for name in names:
            service.create_stream(
                name,
                backend=BACKEND,
                params=PARAMS,
                maintain_every=MAINTAIN_EVERY,
                queue_capacity=QUEUE_CAPACITY,
            )

        def produce(name: str) -> None:
            for start in range(0, POINTS_PER_STREAM, CHUNK):
                service.ingest(name, stream[start : start + CHUNK])

        producers = [
            threading.Thread(target=produce, args=(name,)) for name in names
        ]
        started = time.perf_counter()
        for producer in producers:
            producer.start()
        for producer in producers:
            producer.join()
        service.flush()
        elapsed = time.perf_counter() - started

        stats = [service.stats(name) for name in names]
        total_points = sum(s["ingested_points"] for s in stats)
        assert total_points == num_streams * POINTS_PER_STREAM
        footprints = [synopsis_cells(service.synopsis(name)) for name in names]
        footprints = [cells for cells in footprints if cells is not None]
        return {
            "streams": num_streams,
            "points_per_stream": POINTS_PER_STREAM,
            "total_points": total_points,
            "seconds": elapsed,
            "points_per_second": total_points / elapsed,
            "enqueue_p50_seconds": max(s["enqueue_p50_seconds"] for s in stats),
            "enqueue_p99_seconds": max(s["enqueue_p99_seconds"] for s in stats),
            "max_queue_depth": max(s["max_queue_depth"] for s in stats),
            "synopsis_cells_max": max(footprints, default=None),
            "stage_seconds": stage_summary(service),
        }


def run_sharded_fleet(num_streams: int, num_shards: int) -> dict:
    """The ``run_fleet`` workload through a ShardRouter process fleet.

    Identical stream specs, chunking and producer-thread pattern; the
    only variable is the tier, so the row is directly comparable to the
    threaded result at the same stream count.  Enqueue percentiles are
    the shard-internal worker numbers (time inside ``submit`` after the
    frame crossed the socket), the same quantity the threaded rows
    report.
    """
    stream = att_utilization_stream(POINTS_PER_STREAM, seed=7)
    with ShardRouter(num_shards=num_shards) as service:
        names = [f"s{i}" for i in range(num_streams)]
        for name in names:
            service.create_stream(
                name,
                backend=BACKEND,
                params=PARAMS,
                maintain_every=MAINTAIN_EVERY,
                queue_capacity=QUEUE_CAPACITY,
            )

        def produce(name: str) -> None:
            for start in range(0, POINTS_PER_STREAM, CHUNK):
                service.ingest(name, stream[start : start + CHUNK])

        producers = [
            threading.Thread(target=produce, args=(name,)) for name in names
        ]
        started = time.perf_counter()
        for producer in producers:
            producer.start()
        for producer in producers:
            producer.join()
        service.flush()
        elapsed = time.perf_counter() - started

        stats = [service.stats(name) for name in names]
        total_points = sum(s["ingested_points"] for s in stats)
        assert total_points == num_streams * POINTS_PER_STREAM
        return {
            "streams": num_streams,
            "shards": num_shards,
            "points_per_stream": POINTS_PER_STREAM,
            "total_points": total_points,
            "seconds": elapsed,
            "points_per_second": total_points / elapsed,
            "enqueue_p50_seconds": max(s["enqueue_p50_seconds"] for s in stats),
            "enqueue_p99_seconds": max(s["enqueue_p99_seconds"] for s in stats),
            "max_queue_depth": max(s["max_queue_depth"] for s in stats),
            "stage_seconds": stage_summary(service),
        }


def run_sharded_suite() -> dict:
    """16-stream sharded scaling rows, one per shard count."""
    rows = []
    for num_shards in SHARD_COUNTS:
        row = run_sharded_fleet(SHARDED_STREAMS, num_shards)
        rows.append(row)
        print(
            f"{row['streams']:>3} streams / {row['shards']} shard(s): "
            f"{row['points_per_second']:>12,.0f} points/s, "
            f"p99 enqueue {row['enqueue_p99_seconds'] * 1e6:8.1f} us"
        )
    return {
        "streams": SHARDED_STREAMS,
        "shard_counts": list(SHARD_COUNTS),
        "results": rows,
    }


def stage_summary(service) -> dict:
    """Per-stage latency totals aggregated over the fleet's streams.

    The always-on tracer already recorded every ingest / maintain /
    materialize duration into ``repro_stage_seconds``; this just folds
    the per-stream histograms into one count/sum plus the worst
    per-stream p50/p99 (a fleet is only as fast as its slowest stream).
    """
    summary: dict[str, dict] = {}
    for sample in service.metrics():
        if sample["name"] != "repro_stage_seconds":
            continue
        stage = sample["labels"]["stage"]
        entry = summary.setdefault(
            stage,
            {"count": 0, "sum_seconds": 0.0, "p50_seconds": 0.0,
             "p99_seconds": 0.0},
        )
        entry["count"] += sample["count"]
        entry["sum_seconds"] += sample["sum"]
        entry["p50_seconds"] = max(
            entry["p50_seconds"], sample["quantiles"]["0.5"]
        )
        entry["p99_seconds"] = max(
            entry["p99_seconds"], sample["quantiles"]["0.99"]
        )
    return summary


def _percentiles(samples: list[float]) -> tuple[float, float]:
    ordered = sorted(samples)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


def run_checkpoint() -> dict:
    """Checkpoint bytes and latency: binary delta cadence vs JSON.

    A 16-stream fleet of ``CHECKPOINT_BACKEND`` streams is filled, then
    driven through ``CHECKPOINT_CYCLES`` base cycles of checkpoint
    barriers with ``CHECKPOINT_INTERVAL`` points per stream between
    them; every barrier's wall time and on-disk bytes are recorded.
    The JSON columns write the exact format-2 payload the store used to
    persist (full ``state_dict`` + listified tail, one file per stream)
    into a scratch store, so both layouts are measured on identical
    state in the same process.
    """
    from repro.service import SnapshotStore

    stream = att_utilization_stream(
        CHECKPOINT_PARAMS["window_size"]
        + CHECKPOINT_INTERVAL * CHECKPOINT_BASE_EVERY * CHECKPOINT_CYCLES,
        seed=7,
    )
    fill = CHECKPOINT_PARAMS["window_size"]
    names = [f"c{i}" for i in range(CHECKPOINT_STREAMS)]
    with tempfile.TemporaryDirectory() as snapshot_dir:
        service = StreamService(
            snapshot_dir, snapshot_base_every=CHECKPOINT_BASE_EVERY
        )
        try:
            for name in names:
                service.create_stream(
                    name,
                    backend=CHECKPOINT_BACKEND,
                    params=CHECKPOINT_PARAMS,
                    maintain_every=MAINTAIN_EVERY,
                    queue_capacity=QUEUE_CAPACITY,
                )
                service.ingest(name, stream[:fill])
            service.flush()

            # -- format-2 JSON baseline: what the store used to write.
            json_seconds = []
            json_bytes = 0
            with tempfile.TemporaryDirectory() as json_dir:
                json_store = SnapshotStore(json_dir, keep=1)
                for _ in range(CHECKPOINT_JSON_TRIALS):
                    started = time.perf_counter()
                    paths = []
                    for name in names:
                        worker = service._workers[name]
                        state, arrivals, tail = worker.checkpoint_state()
                        paths.append(
                            json_store.write(
                                name,
                                {
                                    "spec": service._specs[name].to_dict(),
                                    "arrivals": arrivals,
                                    "state": state,
                                    "tail": [b.tolist() for b in tail],
                                },
                            )
                        )
                    json_seconds.append(time.perf_counter() - started)
                    json_bytes = sum(p.stat().st_size for p in paths)

            # -- binary delta cadence: drive whole base cycles.
            barrier_seconds = []
            barrier_bytes = []
            full_bytes, delta_bytes = [], []
            position = fill
            for _ in range(CHECKPOINT_BASE_EVERY * CHECKPOINT_CYCLES):
                for name in names:
                    service.ingest(
                        name, stream[position : position + CHECKPOINT_INTERVAL]
                    )
                service.flush()
                position += CHECKPOINT_INTERVAL
                started = time.perf_counter()
                paths = service.checkpoint()
                barrier_seconds.append(time.perf_counter() - started)
                sizes = [Path(p).stat().st_size for p in paths]
                barrier_bytes.append(sum(sizes))
                for path, size in zip(paths, sizes):
                    (delta_bytes if path.endswith(".delta") else
                     full_bytes).append(size)
        finally:
            service.close(checkpoint=False)

        # Amortized over the last complete cycle (the first full is a
        # cold write, every later cycle is steady state).
        steady = barrier_bytes[-CHECKPOINT_BASE_EVERY:]
        amortized = sum(steady) / len(steady)

        restore_started = time.perf_counter()
        restored = StreamService.restore(
            snapshot_dir, snapshot_base_every=CHECKPOINT_BASE_EVERY
        )
        try:
            restored.flush()
            restore_seconds = time.perf_counter() - restore_started
            assert restored.stats(names[0])["arrivals"] == position
        finally:
            restored.close(checkpoint=False)

    json_p50, json_p99 = _percentiles(json_seconds)
    bin_p50, bin_p99 = _percentiles(barrier_seconds)
    return {
        "streams": CHECKPOINT_STREAMS,
        "backend": CHECKPOINT_BACKEND,
        "params": CHECKPOINT_PARAMS,
        "base_every": CHECKPOINT_BASE_EVERY,
        "interval_points": CHECKPOINT_INTERVAL,
        "json_bytes_per_checkpoint": json_bytes,
        "json_checkpoint_p50_seconds": json_p50,
        "json_checkpoint_p99_seconds": json_p99,
        "full_bytes_mean": sum(full_bytes) / len(full_bytes),
        "delta_bytes_mean": sum(delta_bytes) / len(delta_bytes),
        "amortized_bytes_per_checkpoint": amortized,
        "bytes_ratio_json_over_binary": json_bytes / amortized,
        "checkpoint_p50_seconds": bin_p50,
        "checkpoint_p99_seconds": bin_p99,
        "restore_seconds": restore_seconds,
    }


RECOVERY_TRIALS = 5
RECOVERY_POLICY = RestartPolicy(
    max_restarts=3, backoff_initial=0.01, backoff_factor=2.0, backoff_max=0.05
)


def run_recovery(trials: int = RECOVERY_TRIALS) -> dict:
    """Crash a supervised stream mid-ingest; time crash -> healthy.

    Each trial ingests one stream with a seeded crash somewhere in the
    second half, then polls ``health()`` tightly: the clock starts at the
    first non-healthy observation and stops at the first healthy one
    after a completed restart.
    """
    stream = att_utilization_stream(POINTS_PER_STREAM, seed=7)
    durations = []
    for trial in range(trials):
        with tempfile.TemporaryDirectory() as snapshot_dir:
            injector = FaultInjector(seed=trial)
            crash = POINTS_PER_STREAM // 2 + injector.crash_points(
                POINTS_PER_STREAM // 4, count=1
            )[0]
            injector.crash_at(crash, stream="r")
            service = StreamService(
                snapshot_dir,
                supervise=True,
                restart_policy=RECOVERY_POLICY,
                fault_injector=injector,
            )
            try:
                service.create_stream(
                    "r",
                    backend=BACKEND,
                    params=PARAMS,
                    maintain_every=MAINTAIN_EVERY,
                    queue_capacity=QUEUE_CAPACITY,
                    checkpoint_every=POINTS_PER_STREAM // 8,
                )

                def produce() -> None:
                    for start in range(0, POINTS_PER_STREAM, CHUNK):
                        service.ingest("r", stream[start : start + CHUNK])
                    service.flush("r")

                producer = threading.Thread(target=produce)
                producer.start()
                crashed_at = healthy_at = None
                deadline = time.perf_counter() + 60.0
                while time.perf_counter() < deadline:
                    health = service.health("r")
                    now = time.perf_counter()
                    if health["state"] != "healthy" and crashed_at is None:
                        crashed_at = now
                    if (
                        crashed_at is not None
                        and health["state"] == "healthy"
                        and health["restarts"] >= 1
                    ):
                        healthy_at = now
                        break
                    time.sleep(0.0005)
                producer.join()
                if crashed_at is None or healthy_at is None:
                    raise RuntimeError(
                        f"recovery trial {trial}: crash at arrival {crash} "
                        "was never observed to complete"
                    )
                durations.append(healthy_at - crashed_at)
            finally:
                service.close(checkpoint=False)
    return {
        "trials": trials,
        "policy": {
            "max_restarts": RECOVERY_POLICY.max_restarts,
            "backoff_initial": RECOVERY_POLICY.backoff_initial,
            "backoff_factor": RECOVERY_POLICY.backoff_factor,
            "backoff_max": RECOVERY_POLICY.backoff_max,
        },
        "checkpoint_every": POINTS_PER_STREAM // 8,
        "recovery_seconds_median": statistics.median(durations),
        "recovery_seconds_min": min(durations),
        "recovery_seconds_max": max(durations),
    }


def _previous_pps(baseline: dict) -> dict:
    """``{(streams, shards-or-None): points_per_second}`` from a payload."""
    previous: dict = {}
    for row in baseline.get("results", []):
        previous[(row["streams"], None)] = row["points_per_second"]
    for row in baseline.get("sharded", {}).get("results", []):
        previous[(row["streams"], row["shards"])] = row["points_per_second"]
    return previous


def main(output_path: str = "BENCH_service.json") -> dict:
    previous = {}
    merged_sections = {}
    if Path(output_path).exists():
        with open(output_path) as handle:
            committed = json.load(handle)
        previous = _previous_pps(committed)
        # bench_counting.py / bench_overload.py merge their (non-gated)
        # sections into the same file; a fresh service run must not
        # silently drop them.
        merged_sections = {
            key: committed[key]
            for key in ("counting", "overload")
            if key in committed
        }
    results = []
    for num_streams in STREAM_COUNTS:
        result = run_fleet(num_streams)
        results.append(result)
        print(
            f"{result['streams']:>3} streams: "
            f"{result['points_per_second']:>12,.0f} points/s, "
            f"p99 enqueue {result['enqueue_p99_seconds'] * 1e6:8.1f} us"
        )
        for stage, entry in sorted(result["stage_seconds"].items()):
            print(
                f"    {stage:<11} {entry['count']:>7} spans, "
                f"total {entry['sum_seconds']:7.3f} s, "
                f"p99 {entry['p99_seconds'] * 1e6:8.1f} us"
            )
    sharded = run_sharded_suite()
    recovery = run_recovery()
    print(
        f"recovery (crash -> healthy): "
        f"median {recovery['recovery_seconds_median'] * 1e3:.1f} ms, "
        f"max {recovery['recovery_seconds_max'] * 1e3:.1f} ms "
        f"over {recovery['trials']} trials"
    )
    checkpoint = run_checkpoint()
    print(
        f"checkpoint ({checkpoint['streams']} streams, "
        f"base every {checkpoint['base_every']}): "
        f"{checkpoint['amortized_bytes_per_checkpoint']:,.0f} B amortized "
        f"vs {checkpoint['json_bytes_per_checkpoint']:,} B JSON "
        f"({checkpoint['bytes_ratio_json_over_binary']:.1f}x smaller), "
        f"p99 {checkpoint['checkpoint_p99_seconds'] * 1e3:.1f} ms "
        f"vs JSON {checkpoint['json_checkpoint_p99_seconds'] * 1e3:.1f} ms, "
        f"restore {checkpoint['restore_seconds'] * 1e3:.1f} ms"
    )
    threaded_16 = next(
        r["points_per_second"] for r in results if r["streams"] == SHARDED_STREAMS
    )
    sharded_best = max(
        r["points_per_second"] for r in sharded["results"]
    )
    comparison = {
        "threaded_16_stream_pps": threaded_16,
        "sharded_16_stream_best_pps": sharded_best,
        "sharded_over_threaded": sharded_best / threaded_16,
    }
    prev_16 = previous.get((SHARDED_STREAMS, None))
    if prev_16:
        comparison["previous_committed_16_stream_pps"] = prev_16
        comparison["sharded_over_previous_committed"] = sharded_best / prev_16
        print(
            f"sharded best {sharded_best:,.0f} points/s = "
            f"{sharded_best / prev_16:.2f}x the previously committed "
            f"16-stream baseline ({prev_16:,.0f})"
        )
    payload = {
        "benchmark": "service_throughput",
        "backend": BACKEND,
        "params": PARAMS,
        "maintain_every": MAINTAIN_EVERY,
        "queue_capacity": QUEUE_CAPACITY,
        "chunk": CHUNK,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
        "sharded": sharded,
        "comparison": comparison,
        "recovery": recovery,
        "checkpoint": checkpoint,
    }
    payload.update(merged_sections)
    with open(output_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output_path}")
    return payload


def check(baseline_path: str, output_path: str) -> int:
    """Re-run the gated fleets; non-zero on a >tolerance regression.

    Gated rows: threaded at 1 stream (single-stream latency path),
    threaded at 16 streams (aggregate), and -- once the committed
    baseline carries sharded rows -- the 16-stream sharded fleet at the
    largest shard count.  A fresh payload is always written to
    ``output_path`` so CI can upload the committed and fresh JSON side
    by side.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    previous = _previous_pps(baseline)
    fresh_rows = [run_fleet(1), run_fleet(SHARDED_STREAMS)]
    gate_shards = max(SHARD_COUNTS)
    if (SHARDED_STREAMS, gate_shards) in previous:
        fresh_rows.append(run_sharded_fleet(SHARDED_STREAMS, gate_shards))
    failures = []
    checks = []
    for row in fresh_rows:
        key = (row["streams"], row.get("shards"))
        base_pps = previous.get(key)
        label = f"{key[0]} streams" + (
            f" / {key[1]} shards" if key[1] else " (threaded)"
        )
        if base_pps is None:
            print(f"{label}: no committed baseline row, skipped")
            continue
        fresh_pps = row["points_per_second"]
        drop = (base_pps - fresh_pps) / base_pps
        verdict = "ok" if drop <= REGRESSION_TOLERANCE else "REGRESSION"
        checks.append(
            {
                "streams": key[0],
                "shards": key[1],
                "baseline_pps": base_pps,
                "fresh_pps": fresh_pps,
                "drop_fraction": drop,
                "verdict": verdict,
            }
        )
        print(
            f"{label}: {fresh_pps:>12,.0f} points/s vs committed "
            f"{base_pps:,.0f} ({-drop:+.1%}) -> {verdict}"
        )
        if verdict != "ok":
            failures.append(label)
    checkpoint = run_checkpoint()
    ratio = checkpoint["bytes_ratio_json_over_binary"]
    latency_ok = (
        checkpoint["checkpoint_p99_seconds"]
        < checkpoint["json_checkpoint_p99_seconds"]
    )
    verdict = "ok" if ratio >= CHECKPOINT_BYTES_GATE and latency_ok else (
        "REGRESSION"
    )
    checkpoint_check = {
        "amortized_bytes_per_checkpoint": checkpoint[
            "amortized_bytes_per_checkpoint"
        ],
        "json_bytes_per_checkpoint": checkpoint["json_bytes_per_checkpoint"],
        "bytes_ratio_json_over_binary": ratio,
        "bytes_gate": CHECKPOINT_BYTES_GATE,
        "checkpoint_p99_seconds": checkpoint["checkpoint_p99_seconds"],
        "json_checkpoint_p99_seconds": checkpoint[
            "json_checkpoint_p99_seconds"
        ],
        "verdict": verdict,
    }
    base_amortized = baseline.get("checkpoint", {}).get(
        "amortized_bytes_per_checkpoint"
    )
    if base_amortized:
        growth = (
            checkpoint["amortized_bytes_per_checkpoint"] - base_amortized
        ) / base_amortized
        checkpoint_check["baseline_amortized_bytes"] = base_amortized
        checkpoint_check["bytes_growth_fraction"] = growth
        if growth > REGRESSION_TOLERANCE:
            checkpoint_check["verdict"] = verdict = "REGRESSION"
    print(
        f"checkpoint bytes: {ratio:.1f}x smaller than JSON "
        f"(gate {CHECKPOINT_BYTES_GATE:.0f}x), p99 "
        f"{checkpoint['checkpoint_p99_seconds'] * 1e3:.1f} ms vs JSON "
        f"{checkpoint['json_checkpoint_p99_seconds'] * 1e3:.1f} ms "
        f"-> {verdict}"
    )
    if verdict != "ok":
        failures.append("checkpoint bytes")
    payload = {
        "benchmark": "service_throughput_check",
        "baseline": str(baseline_path),
        "tolerance": REGRESSION_TOLERANCE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "checks": checks,
        "checkpoint": checkpoint_check,
        "passed": not failures,
    }
    with open(output_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output_path}")
    if failures:
        print(f"FAILED: throughput regression in {', '.join(failures)}")
        return 1
    print("all gated fleets within tolerance")
    return 0


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Service ingestion throughput benchmark and "
        "regression gate."
    )
    parser.add_argument(
        "output",
        nargs="?",
        default=None,
        help="result JSON path (default: BENCH_service.json, or "
        "BENCH_service_check.json with --check)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare the gated fleets against the committed baseline "
        "and exit non-zero on a regression",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline for --check "
        "(default: the repo's BENCH_service.json)",
    )
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args(sys.argv[1:])
    if args.check:
        raise SystemExit(
            check(args.baseline, args.output or "BENCH_service_check.json")
        )
    main(args.output or "BENCH_service.json")
