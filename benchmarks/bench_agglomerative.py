"""Section 5.2, experiment 1: agglomerative histograms vs wavelets.

Paper finding: over an entire stream prefix, the one-pass agglomerative
histogram is superior to a wavelet synopsis both in accuracy and -- in
their setting -- construction time.  Here accuracy is the average
absolute error of random range-sum queries over the prefix; the wavelet
is granted the materialized array (an offline luxury the streaming
algorithm does not get).
"""

from __future__ import annotations

from repro.bench import agglomerative_vs_wavelet


def _run():
    return agglomerative_vs_wavelet(
        stream_length=10_000,
        bucket_counts=(8, 16, 32),
        epsilon=0.25,
        queries=200,
    )


def test_agglomerative_vs_wavelet(benchmark, record_table):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_table("e2_agglomerative_vs_wavelet", table)
    for row in table:
        assert row["agg_err"] < row["wav_err"], row
    # More buckets -> better accuracy for the histogram.
    errors = table.column("agg_err")
    assert errors[-1] < errors[0]
