"""Ablation A2: Theorem 1's growth rate vs the alternatives.

Three ways to maintain a fixed-window histogram per arrival:

* the paper's algorithm -- O((B^3/eps^2) log^3 n) per point;
* the naive optimal DP re-run -- O(n^2 B) per point (section 3);
* restarting the agglomerative algorithm from scratch -- O(n log n)-ish
  per point (section 4.4's strawman).

The fixed-window algorithm must grow far slower with n than either
baseline; ``herror_evals`` gives the hardware-independent view.
"""

from __future__ import annotations

from repro.bench import scaling_ablation


def _run():
    return scaling_ablation(
        window_sizes=(128, 256, 512, 1024, 2048),
        num_buckets=8,
        epsilon=0.25,
        arrivals=10,
        max_dp_window=1024,
    )


def test_growth_rates(benchmark, record_table):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_table("a2_scaling_ablation", table)
    rows = table.rows()
    first, last = rows[0], rows[-1]
    window_ratio = last["window"] / first["window"]  # 16x
    # Operation count grows sublinearly in the window length.
    assert last["herror_evals"] / first["herror_evals"] < window_ratio
    # The DP loses to the fixed-window algorithm by the largest DP window.
    dp_rows = [r for r in rows if r["dp_ms"] == r["dp_ms"]]  # non-NaN
    assert dp_rows[-1]["dp_ms"] > dp_rows[-1]["fw_ms"]
    # And the restart strawman also loses at the largest window.
    assert last["restart_agg_ms"] > last["fw_ms"]
