"""Figure 6(a)/(b): range-sum accuracy vs subsequence length.

Paper setup: a 1M-point AT&T utilization stream, fixed-window histograms
vs wavelets recomputed per slide vs exact answers, random range-sum
queries with uniform start and span; accuracy improves with B and with
smaller epsilon, and histograms clearly beat wavelets at equal space.

Scaled-down reproduction (see EXPERIMENTS.md): synthetic utilization
stream, windows 128-1024, B in {8, 16}, epsilon pair (0.5, 0.1) standing
in for the paper's (0.1, 0.01) -- the tighter value of the pair plays the
same role relative to the scaled window sizes.
"""

from __future__ import annotations

from repro.bench import fig6_accuracy

WINDOWS = (128, 256, 512, 1024)
BUCKETS = (8, 16)


def _run(epsilon: float):
    return fig6_accuracy(
        epsilon,
        window_sizes=WINDOWS,
        bucket_counts=BUCKETS,
        stream_extra=1024,
        evaluations=8,
        queries_per_evaluation=32,
    )


def test_fig6a_accuracy_loose_epsilon(benchmark, record_table):
    table = benchmark.pedantic(_run, args=(0.5,), rounds=1, iterations=1)
    record_table("fig6a_accuracy_eps0.5", table)
    for row in table:
        assert row["histogram"] < row["wavelet"], row  # the paper's headline


def test_fig6b_accuracy_tight_epsilon(benchmark, record_table):
    table = benchmark.pedantic(_run, args=(0.1,), rounds=1, iterations=1)
    record_table("fig6b_accuracy_eps0.1", table)
    for row in table:
        assert row["histogram"] < row["wavelet"], row
