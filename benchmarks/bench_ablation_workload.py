"""Ablation A10: workload-aware histograms (WeightedSSEMetric extension).

When queries concentrate on a hot region, weighting the V-optimal
objective by access frequency moves buckets to where queries land; the
hot-workload error should drop substantially at a modest uniform-workload
cost.
"""

from __future__ import annotations

from repro.bench import workload_aware


def test_workload_aware(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: workload_aware(window=512, num_buckets=8),
        rounds=1,
        iterations=1,
    )
    record_table("a10_workload_aware", table)
    rows = {row["histogram"]: row for row in table}
    assert (
        rows["workload-aware"]["hot_workload_err"]
        < rows["plain"]["hot_workload_err"]
    )
