"""Section 5.2, experiment 3: similarity indexing vs APCA.

Paper finding: histogram approximations from the proposed algorithms are
"far superior" to APCA [KCMP01] for time-series similarity indexing --
fewer false positives during index filtering -- while remaining
competitive in approximation time.  Both whole-series matching and
subsequence matching are evaluated.
"""

from __future__ import annotations

from repro.bench import similarity_subsequence, similarity_whole


def test_whole_series_false_positives(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: similarity_whole(
            count=200, length=256, budget=16, epsilon=0.1, num_queries=20, k=10
        ),
        rounds=1,
        iterations=1,
    )
    record_table("e4_similarity_whole", table)
    rows = {row["method"]: row for row in table}
    vopt = next(v for k, v in rows.items() if k.startswith("vopt(M=8)"))
    apca = next(v for k, v in rows.items() if k.startswith("apca"))
    assert vopt["false_positives"] <= apca["false_positives"]


def test_subsequence_false_positives(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: similarity_subsequence(
            stream_length=8192,
            window_length=256,
            budget=16,
            epsilon=0.1,
            stride=16,
            num_queries=10,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("e4_similarity_subsequence", table)
    rows = {row["method"]: row for row in table}
    vopt = next(v for k, v in rows.items() if k.startswith("vopt"))
    apca = next(v for k, v in rows.items() if k.startswith("apca"))
    assert vopt["false_positives"] <= apca["false_positives"]
