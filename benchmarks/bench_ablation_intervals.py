"""Ablation A3: interval-cover size vs the O((1/delta) log n) bound.

Section 4.5's analysis bounds each level's interval count by
``1 + log_{1+delta}(HERROR[n, B])`` = O((1/delta) log(n R)).  The cover
sizes should grow roughly logarithmically with the window length and
linearly with 1/epsilon, and always stay below the analytic bound (and
below n, the degenerate cap).
"""

from __future__ import annotations

from repro.bench import interval_growth_ablation


def _run():
    return interval_growth_ablation(
        window_sizes=(128, 256, 512, 1024, 2048, 4096),
        num_buckets=8,
        epsilons=(0.5, 0.25, 0.1),
    )


def test_interval_bound_respected(benchmark, record_table):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_table("a3_interval_growth", table)
    rows = table.rows()
    for row in rows:
        assert row["bound_fraction"] <= 1.0 + 1e-9, row
    # Log-like growth in n: doubling the window adds far fewer intervals
    # than doubling would.
    by_eps = {}
    for row in rows:
        by_eps.setdefault(row["epsilon"], []).append(row["mean_intervals"])
    for counts in by_eps.values():
        assert counts[-1] < counts[0] * (4096 / 128)
