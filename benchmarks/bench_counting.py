"""Counting-backend microbenchmarks: throughput and space footprint.

Measures the two :mod:`repro.counting` backends standalone, away from
queue and socket overhead:

* ``eh_count`` -- batched ingest throughput of the exponential-histogram
  maintainer at several ``(window, epsilon)`` points, plus the bucket
  cells actually stored (the ``O((1/eps) log^2 n)`` space claim, in
  numbers);
* ``cr_precis`` -- bulk ``extend`` (decoded signed-unit batches) and
  per-call ``update`` throughput of the turnstile maintainer, plus its
  fixed ``sum(primes)`` table cells.

Standalone:  ``PYTHONPATH=src python benchmarks/bench_counting.py``
merges a ``"counting"`` section into the committed ``BENCH_service.json``
(creating the file if absent).  The section is a recorded baseline, not
a gate: the ``--check`` regression gate of
``bench_service_throughput.py`` reads only the fleet rows and ignores
this key, so slow CI hosts cannot fail the build on a microbenchmark.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.counting import CRPrecisMaintainer, EHCountMaintainer

#: Points fed to every throughput measurement.
POINTS = 50_000
CHUNK = 512

#: ``(window, epsilon)`` grid for the exponential-histogram rows.
EH_GRID = ((1_000, 0.1), (10_000, 0.1), (10_000, 0.01))

#: ``(rows, base, domain)`` grid for the CR-precis rows.
CR_GRID = ((5, 23, 131_072), (9, 101, 131_072))

#: Per-call ``update()`` invocations timed for the turnstile path.
UPDATE_CALLS = 20_000

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def bench_eh(window: int, epsilon: float) -> dict:
    """Time batched ingest of POINTS integers; report the cells kept."""
    rng = np.random.default_rng(17)
    stream = rng.integers(0, 256, POINTS).astype(np.float64)
    maintainer = EHCountMaintainer(window=window, epsilon=epsilon)
    started = time.perf_counter()
    for start in range(0, POINTS, CHUNK):
        maintainer.extend(stream[start : start + CHUNK])
    elapsed = time.perf_counter() - started
    synopsis = maintainer.synopsis()
    return {
        "window": window,
        "epsilon": epsilon,
        "points": POINTS,
        "seconds": elapsed,
        "points_per_second": POINTS / elapsed,
        "bucket_cells": synopsis.bucket_cells(),
        "sum_error_bound": synopsis.sum_error_bound(),
    }


def bench_cr(rows: int, base: int, domain: int) -> dict:
    """Time bulk extend and per-call update on a 40%-deletion stream."""
    rng = np.random.default_rng(23)
    keys = np.minimum(rng.zipf(1.4, POINTS), domain - 1).astype(np.float64)
    # ~40% deletions while staying a strict turnstile: odd positions may
    # delete the key the (always-insert) even position before them added.
    encoded = keys.copy()
    odd = np.arange(1, POINTS, 2)
    chosen = odd[rng.random(odd.size) < 0.8]
    encoded[chosen] = -(keys[chosen - 1] + 1.0)

    bulk = CRPrecisMaintainer(rows=rows, base=base, domain=domain)
    started = time.perf_counter()
    for start in range(0, POINTS, CHUNK):
        bulk.extend(encoded[start : start + CHUNK])
    bulk_elapsed = time.perf_counter() - started

    single = CRPrecisMaintainer(rows=rows, base=base, domain=domain)
    started = time.perf_counter()
    for index in range(UPDATE_CALLS):
        single.update(int(keys[index % POINTS]), 1)
    update_elapsed = time.perf_counter() - started

    return {
        "rows": rows,
        "base": base,
        "domain": domain,
        "points": POINTS,
        "extend_seconds": bulk_elapsed,
        "extend_points_per_second": POINTS / bulk_elapsed,
        "update_calls": UPDATE_CALLS,
        "update_calls_per_second": UPDATE_CALLS / update_elapsed,
        "table_cells": bulk.synopsis().table_cells(),
    }


def run() -> dict:
    eh_rows = []
    for window, epsilon in EH_GRID:
        row = bench_eh(window, epsilon)
        eh_rows.append(row)
        print(
            f"eh_count  n={window:>6} eps={epsilon:<5g} "
            f"{row['points_per_second']:>10,.0f} points/s, "
            f"{row['bucket_cells']:>5} bucket cells"
        )
    cr_rows = []
    for rows, base, domain in CR_GRID:
        row = bench_cr(rows, base, domain)
        cr_rows.append(row)
        print(
            f"cr_precis t={rows} base={base:>3} M={domain} "
            f"extend {row['extend_points_per_second']:>10,.0f} points/s, "
            f"update {row['update_calls_per_second']:>9,.0f} calls/s, "
            f"{row['table_cells']:>4} table cells"
        )
    return {
        "points": POINTS,
        "chunk": CHUNK,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "eh_count": eh_rows,
        "cr_precis": cr_rows,
    }


def main(output_path: str | Path = DEFAULT_OUTPUT) -> dict:
    section = run()
    output_path = Path(output_path)
    payload = {}
    if output_path.exists():
        with open(output_path) as handle:
            payload = json.load(handle)
    payload["counting"] = section
    with open(output_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"merged counting section into {output_path}")
    return section


if __name__ == "__main__":
    main(*sys.argv[1:])
