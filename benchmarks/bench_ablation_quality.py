"""Ablations A4/A5: query-aggregate variants and heuristic quality.

A4 backs the paper's section 5.1 aside that range-avg and point queries
behave like range-sums: the histogram's advantage over the wavelet holds
across all three query families.

A5 quantifies why V-optimality matters: the (1 + eps)-approximation sits
at ~1x the optimal SSE while the classic heuristics (MaxDiff, equi-width)
and APCA trail by integer factors on realistic utilization data.
"""

from __future__ import annotations

from repro.bench import aggregate_variants, heuristic_quality


def test_aggregate_variants(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: aggregate_variants(window=512, num_buckets=12, epsilon=0.2,
                                   queries=200),
        rounds=1,
        iterations=1,
    )
    record_table("a4_aggregate_variants", table)
    for row in table:
        assert row["histogram_rel_err"] <= row["wavelet_rel_err"], row


def test_heuristic_quality(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: heuristic_quality(lengths=(256, 1024, 4096), num_buckets=16),
        rounds=1,
        iterations=1,
    )
    record_table("a5_heuristic_quality", table)
    for row in table:
        assert row["approx"] <= 1.1 + 1e-9, row
        assert row["maxdiff"] >= row["approx"] - 1e-9
        assert row["equal_width"] >= row["approx"] - 1e-9
        assert row["apca"] >= row["approx"] - 1e-9


def test_span_breakdown(benchmark, record_table):
    from repro.bench import span_breakdown

    table = benchmark.pedantic(
        lambda: span_breakdown(window=512, queries_per_band=100),
        rounds=1,
        iterations=1,
    )
    record_table("a7_span_breakdown", table)
    for row in table:
        assert row["histogram_err"] <= row["wavelet_err"], row


def test_space_accuracy_sweep(benchmark, record_table):
    from repro.bench import space_accuracy_sweep

    table = benchmark.pedantic(
        lambda: space_accuracy_sweep(length=2048, budgets=(4, 8, 16, 32, 64)),
        rounds=1,
        iterations=1,
    )
    record_table("a8_space_accuracy", table)
    for row in table:
        # The guaranteed approximation hugs the optimum across the sweep;
        # histogram heuristics can never beat the optimal histogram.
        assert row["approx"] <= 1.1 + 1e-9, row
        assert row["maxdiff"] >= 1.0 - 1e-9
        assert row["equal_width"] >= 1.0 - 1e-9
        assert row["iterative"] >= 1.0 - 1e-9
        assert row["sampled"] >= 1.0 - 1e-9
