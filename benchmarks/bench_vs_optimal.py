"""Section 5.2, experiment 2: one-pass construction vs the optimal DP.

Paper finding: histograms from the agglomerative one-pass algorithm are
comparable in accuracy to [JKM+98]'s optimal histograms, with profound
construction-time savings that *grow with the size of the data set*.
Here "size" is the attribute domain (the frequency-vector length n the
construction algorithms process); the optimal DP is Theta(n^2 B) while
the one-pass algorithm is near-linear.
"""

from __future__ import annotations

from repro.bench import agglomerative_vs_optimal


def _run():
    return agglomerative_vs_optimal(
        domains=(512, 1024, 2048, 4096),
        rows_per_domain=50_000,
        num_buckets=32,
        epsilon=0.25,
        queries=100,
    )


def test_agglomerative_vs_optimal(benchmark, record_table):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_table("e3_agglomerative_vs_optimal", table)
    rows = table.rows()
    # Accuracy comparable: within a small factor of optimal everywhere.
    for row in rows:
        assert row["err_approx"] <= 2.0 * row["err_optimal"] + 50.0, row
    # Savings grow with the domain size (the paper's headline).
    assert rows[-1]["speedup"] > rows[0]["speedup"]
    assert rows[-1]["speedup"] > 1.0
