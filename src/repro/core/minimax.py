"""Min-max histograms: minimize the largest bucket error.

The paper's footnote 3 points out that besides the summed error
``E_X(H) = sum_i F(b_i)``, other combinations such as ``max_i F(b_i)``
are natural.  This module provides the max-error objective, which admits
a much faster algorithm than the summed DP: a greedy sweep is optimal
*for a fixed threshold* (extend the current bucket while its error stays
below the threshold -- bucket error is non-decreasing as the bucket
grows), so the optimal threshold is found by binary search.

``minimax_histogram`` runs in ``O(n log n log(range))`` time for the SSE
metric (each feasibility sweep places bucket ends by binary search over
prefix sums) and returns a histogram whose largest bucket error is within
a tiny relative tolerance of the optimum.
"""

from __future__ import annotations

import numpy as np

from .bucket import Bucket, Histogram
from .errors import BucketErrorMetric
from .prefix import PrefixSums

__all__ = ["minimax_histogram", "minimax_error", "greedy_threshold_partition"]

_RELATIVE_PRECISION = 1e-12
_MAX_ITERATIONS = 200


def greedy_threshold_partition(
    values, threshold: float, metric: BucketErrorMetric | None = None
) -> list[int]:
    """Fewest-buckets partition with every bucket error ``<= threshold``.

    Returns the bucket-split positions (last index of each non-final
    bucket).  Greedy longest-feasible-bucket is optimal because bucket
    error is non-decreasing in bucket length.  With the default SSE
    metric each bucket end is located by binary search over prefix sums.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot partition an empty sequence")
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    prefix = PrefixSums(array) if metric is None else None

    def bucket_error(i: int, j: int) -> float:
        if prefix is not None:
            return prefix.sqerror(i, j)
        return metric.bucket_error(i, j)

    splits: list[int] = []
    start = 0
    n = array.size
    while start < n:
        # Longest j >= start with error(start, j) <= threshold; error is
        # non-decreasing in j, so binary search applies.
        if bucket_error(start, n - 1) <= threshold:
            break
        lo, hi = start, n - 1  # invariant: error(start,lo) <= t < error(start,hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bucket_error(start, mid) <= threshold:
                lo = mid
            else:
                hi = mid
        splits.append(lo)
        start = lo + 1
    return splits


def minimax_error(
    values, num_buckets: int, metric: BucketErrorMetric | None = None
) -> float:
    """The smallest achievable maximum bucket error with ``num_buckets``."""
    histogram = minimax_histogram(values, num_buckets, metric)
    array = np.asarray(values, dtype=np.float64)
    prefix = PrefixSums(array) if metric is None else None
    worst = 0.0
    for bucket in histogram.buckets:
        if prefix is not None:
            error = prefix.sqerror(bucket.start, bucket.end)
        else:
            error = metric.bucket_error(bucket.start, bucket.end)
        worst = max(worst, error)
    return worst


def minimax_histogram(
    values, num_buckets: int, metric: BucketErrorMetric | None = None
) -> Histogram:
    """Histogram with at most ``num_buckets`` minimizing the max bucket error.

    Binary-searches the error threshold; each feasibility check is one
    greedy sweep.  The returned partition's max bucket error is within
    ``~1e-12`` relative precision of the optimum.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot build a histogram of an empty sequence")
    if num_buckets < 1:
        raise ValueError("need at least one bucket")

    def buckets_needed(threshold: float) -> int:
        return len(greedy_threshold_partition(array, threshold, metric)) + 1

    if metric is None:
        high = PrefixSums(array).sqerror(0, array.size - 1)
    else:
        high = metric.bucket_error(0, array.size - 1)
    if high == 0.0 or buckets_needed(0.0) <= num_buckets:
        splits = greedy_threshold_partition(array, 0.0, metric)
        return _materialize(array, splits, metric)

    low = 0.0  # infeasible (or we returned above); high is always feasible
    for _ in range(_MAX_ITERATIONS):
        mid = (low + high) / 2.0
        if buckets_needed(mid) <= num_buckets:
            high = mid
        else:
            low = mid
        if high - low <= _RELATIVE_PRECISION * max(1.0, high):
            break
    splits = greedy_threshold_partition(array, high, metric)
    return _materialize(array, splits, metric)


def _materialize(array, splits, metric: BucketErrorMetric | None) -> Histogram:
    if metric is None:
        return Histogram.from_boundaries(array, splits)
    buckets = []
    start = 0
    for split in list(splits) + [array.size - 1]:
        buckets.append(Bucket(start, split, metric.representative(start, split)))
        start = split + 1
    return Histogram(buckets)
