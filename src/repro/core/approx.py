"""One-shot epsilon-approximate histograms (paper Problem 2).

For a finite, fully available sequence the fastest path to an
epsilon-approximate V-optimal histogram is a single agglomerative pass
([GKS01], section 4.3): ``O((n B^2 / eps) log n)`` time instead of the
optimal DP's ``O(n^2 B)``, at the cost of a ``(1 + eps)`` factor on the
SSE.  This module packages that pass behind a plain function, which is the
entry point used by the warehouse experiments (paper section 5.2).
"""

from __future__ import annotations

import numpy as np

from .agglomerative import AgglomerativeHistogramBuilder
from .bucket import Histogram

__all__ = ["approximate_histogram", "approximate_error"]


def approximate_histogram(values, num_buckets: int, epsilon: float) -> Histogram:
    """Epsilon-approximate B-bucket histogram of a finite sequence.

    The result's SSE is at most ``(1 + epsilon)`` times the SSE of
    :func:`repro.core.optimal.optimal_histogram` on the same input.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot build a histogram of an empty sequence")
    builder = AgglomerativeHistogramBuilder(num_buckets, epsilon)
    builder.extend(array)
    return builder.histogram()


def approximate_error(values, num_buckets: int, epsilon: float) -> float:
    """SSE estimate of the approximate histogram, without materializing it."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot build a histogram of an empty sequence")
    builder = AgglomerativeHistogramBuilder(num_buckets, epsilon)
    builder.extend(array)
    return builder.error_estimate
