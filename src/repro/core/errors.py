"""Point-wise additive error metrics for histogram buckets.

The paper focuses on the Sum-Squared-Error (SSE) metric but notes (footnote
3) that its results hold for any point-wise additive error function.  This
module provides a small metric protocol plus the two metrics used by the
library: SSE (O(1) via prefix sums) and SAE (sum of absolute deviations from
the optimal representative, the median), the latter mainly exercised by
tests of metric-pluggability.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from .prefix import PrefixSums

__all__ = [
    "BucketErrorMetric",
    "SSEMetric",
    "SAEMetric",
    "WeightedSSEMetric",
    "naive_sse",
    "naive_sae",
    "sse_of_partition",
]


def naive_sse(values) -> float:
    """SSE of one bucket computed directly (reference implementation)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.sum((array - array.mean()) ** 2))


def naive_sae(values) -> float:
    """Sum of absolute deviations from the median (reference SAE)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.sum(np.abs(array - np.median(array))))


class BucketErrorMetric(Protocol):
    """Error of collapsing a contiguous range into one representative.

    Implementations are bound to a fixed sequence at construction time and
    answer range queries over it.  ``bucket_error`` must be point-wise
    additive and non-negative, and non-increasing as the range shrinks.
    """

    def bucket_error(self, i: int, j: int) -> float:
        """Error of the bucket covering ``values[i..j]`` (inclusive)."""
        ...

    def representative(self, i: int, j: int) -> float:
        """Optimal single representative for ``values[i..j]``."""
        ...


class SSEMetric:
    """SSE metric with O(1) bucket errors via prefix sums.

    The representative minimizing SSE is the bucket mean; this is the metric
    of the V-optimal histogram throughout the paper.
    """

    def __init__(self, values) -> None:
        self._prefix = PrefixSums(values)

    @property
    def prefix(self) -> PrefixSums:
        return self._prefix

    def bucket_error(self, i: int, j: int) -> float:
        return self._prefix.sqerror(i, j)

    def representative(self, i: int, j: int) -> float:
        return self._prefix.mean(i, j)


class WeightedSSEMetric:
    """Workload-weighted SSE: positions queried more often count more.

    ``error(i, j) = sum_k w_k (v_k - r)^2`` over the bucket, minimized by
    the weighted mean ``r = sum(w v) / sum(w)``.  With O(1) bucket errors
    via three prefix-sum arrays (``w``, ``w v``, ``w v^2``) the metric
    plugs straight into the generic DP, giving *workload-aware*
    V-optimal histograms: accuracy concentrates where the query workload
    actually lands.  Weights must be positive.
    """

    def __init__(self, values, weights) -> None:
        array = np.asarray(values, dtype=np.float64)
        weight_array = np.asarray(weights, dtype=np.float64)
        if array.shape != weight_array.shape or array.ndim != 1:
            raise ValueError("values and weights must be equal-length 1-D arrays")
        if np.any(weight_array <= 0):
            raise ValueError("weights must be strictly positive")
        self._weight = np.concatenate(([0.0], np.cumsum(weight_array)))
        self._weighted_sum = np.concatenate(([0.0], np.cumsum(weight_array * array)))
        self._weighted_sqsum = np.concatenate(
            ([0.0], np.cumsum(weight_array * array * array))
        )
        self._n = array.size

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i <= j < self._n):
            raise IndexError(f"range [{i}, {j}] out of bounds for length {self._n}")

    def bucket_error(self, i: int, j: int) -> float:
        self._check(i, j)
        mass = self._weight[j + 1] - self._weight[i]
        total = self._weighted_sum[j + 1] - self._weighted_sum[i]
        sq = self._weighted_sqsum[j + 1] - self._weighted_sqsum[i]
        return max(0.0, float(sq - total * total / mass))

    def representative(self, i: int, j: int) -> float:
        self._check(i, j)
        mass = self._weight[j + 1] - self._weight[i]
        total = self._weighted_sum[j + 1] - self._weighted_sum[i]
        return float(total / mass)


class SAEMetric:
    """Sum-of-absolute-errors metric (representative = median).

    Bucket errors take O(log n) time via precomputed sort-order prefix
    structures would be overkill here; this implementation recomputes from
    the stored values in O(j - i) and exists to demonstrate (and test) that
    the DP and the approximation machinery are metric-agnostic.
    """

    def __init__(self, values) -> None:
        self._values = np.asarray(values, dtype=np.float64)

    def bucket_error(self, i: int, j: int) -> float:
        if not (0 <= i <= j < self._values.size):
            raise IndexError(f"range [{i}, {j}] out of bounds")
        return naive_sae(self._values[i : j + 1])

    def representative(self, i: int, j: int) -> float:
        if not (0 <= i <= j < self._values.size):
            raise IndexError(f"range [{i}, {j}] out of bounds")
        return float(np.median(self._values[i : j + 1]))


def sse_of_partition(values, boundaries) -> float:
    """Total SSE of the histogram defined by bucket-split positions.

    ``boundaries`` are the *last indices* of all buckets except the final
    one, strictly increasing; the final bucket always ends at the last
    value.  This is the ground-truth evaluation used by tests.
    """
    array = np.asarray(values, dtype=np.float64)
    splits = list(boundaries)
    if any(b < 0 or b >= array.size - 1 for b in splits):
        raise ValueError(f"split positions {splits} invalid for length {array.size}")
    if sorted(set(splits)) != splits:
        raise ValueError("split positions must be strictly increasing")
    total = 0.0
    start = 0
    for split in splits + [array.size - 1]:
        total += naive_sse(array[start : split + 1])
        start = split + 1
    return total
