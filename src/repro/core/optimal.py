"""Optimal V-optimal histogram construction (paper section 4.1, [JKM+98]).

``optimal_histogram`` implements the classic O(n^2 B) dynamic program:
``HERROR[j, k] = min_i HERROR[i, k-1] + SQERROR[i+1, j]``, with bucket
errors answered in O(1) from prefix sums.  The inner minimization is
vectorized with numpy.  This is the ground truth every approximation
algorithm in the library is validated against.

``brute_force_histogram`` enumerates all partitions and exists only as a
test oracle for tiny inputs.

``optimal_error_table`` exposes the full DP table for analysis (it is, for
instance, how the monotonicity observations of section 4.2 are tested).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .bucket import Bucket, Histogram
from .errors import BucketErrorMetric, SSEMetric, sse_of_partition
from .prefix import PrefixSums

__all__ = [
    "optimal_histogram",
    "optimal_error",
    "optimal_error_table",
    "brute_force_histogram",
]


def _validate(n: int, num_buckets: int) -> None:
    if n < 1:
        raise ValueError("cannot build a histogram of an empty sequence")
    if num_buckets < 1:
        raise ValueError("need at least one bucket")


def _dp_tables(values, num_buckets: int, metric: BucketErrorMetric | None = None):
    """Run the DP; return (error table, back-pointer table).

    ``herror[j, k]`` is the optimal error of covering ``values[0..j]`` with
    ``k + 1`` buckets (0-based bucket count); ``back[j, k]`` is the last
    index of the penultimate bucket in that optimum.

    With no ``metric`` the SSE fast path runs (vectorized, O(1) bucket
    errors via prefix sums); any other point-wise additive
    :class:`BucketErrorMetric` uses a generic scalar inner loop.
    """
    array = np.asarray(values, dtype=np.float64)
    n = array.size
    _validate(n, num_buckets)
    effective = min(num_buckets, n)

    herror = np.empty((n, effective), dtype=np.float64)
    back = np.full((n, effective), -1, dtype=np.intp)

    if metric is None:
        prefix = PrefixSums(array)
        all_starts = np.arange(n, dtype=np.intp)
        for j in range(n):
            herror[j, 0] = prefix.sqerror(0, j)
        for k in range(1, effective):
            herror[: k, k] = 0.0
            back[: k, k] = np.arange(-1, k - 1)  # fewer points than buckets
            for j in range(k, n):
                # Last bucket is [i+1 .. j]; previous i in [k-1 .. j-1].
                starts = all_starts[k : j + 1]  # candidate i+1 values
                candidates = (
                    herror[k - 1 : j, k - 1] + prefix.sqerror_suffixes(starts, j)
                )
                best = int(np.argmin(candidates))
                herror[j, k] = candidates[best]
                back[j, k] = k - 1 + best
        return herror, back

    for j in range(n):
        herror[j, 0] = metric.bucket_error(0, j)
    for k in range(1, effective):
        herror[: k, k] = 0.0
        back[: k, k] = np.arange(-1, k - 1)
        for j in range(k, n):
            best_value = np.inf
            best_split = -1
            for i in range(k - 1, j):
                candidate = herror[i, k - 1] + metric.bucket_error(i + 1, j)
                if candidate < best_value:
                    best_value = candidate
                    best_split = i
            herror[j, k] = best_value
            back[j, k] = best_split
    return herror, back


def _boundaries_from_back(back: np.ndarray, j: int, k: int) -> list[int]:
    """Recover bucket-split positions by walking the back-pointer table."""
    splits: list[int] = []
    while k > 0:
        j = int(back[j, k])
        if j < 0:
            break
        splits.append(j)
        k -= 1
    splits.reverse()
    return splits


def optimal_histogram(
    values, num_buckets: int, metric: BucketErrorMetric | None = None
) -> Histogram:
    """The error-optimal histogram with at most ``num_buckets`` buckets.

    Runs in O(n^2 B) time and O(nB) space.  When the sequence has no more
    points than buckets the histogram is exact (zero error).  The default
    metric is SSE (the V-optimal histogram of the paper); pass any
    :class:`BucketErrorMetric` for other point-wise additive errors --
    bucket representatives then come from ``metric.representative``.
    """
    array = np.asarray(values, dtype=np.float64)
    herror, back = _dp_tables(array, num_buckets, metric)
    k = herror.shape[1] - 1
    splits = _boundaries_from_back(back, array.size - 1, k)
    if metric is None:
        return Histogram.from_boundaries(array, splits)
    buckets = []
    start = 0
    for split in splits + [array.size - 1]:
        buckets.append(Bucket(start, split, metric.representative(start, split)))
        start = split + 1
    return Histogram(buckets)


def optimal_error(
    values, num_buckets: int, metric: BucketErrorMetric | None = None
) -> float:
    """Just the optimal error, without materializing the histogram."""
    array = np.asarray(values, dtype=np.float64)
    herror, _ = _dp_tables(array, num_buckets, metric)
    return float(herror[array.size - 1, herror.shape[1] - 1])


def optimal_error_table(
    values, num_buckets: int, metric: BucketErrorMetric | None = None
) -> np.ndarray:
    """Full DP table: entry ``[j, k]`` is OPT error of ``values[0..j]``, k+1 buckets."""
    herror, _ = _dp_tables(values, num_buckets, metric)
    return herror


def brute_force_histogram(
    values, num_buckets: int, metric: BucketErrorMetric | None = None
) -> tuple[Histogram, float]:
    """Exhaustive-search oracle: try every partition into ≤ B buckets.

    Exponential; intended for sequences of at most ~16 points in tests.
    Accepts any :class:`BucketErrorMetric`; defaults to SSE.
    """
    array = np.asarray(values, dtype=np.float64)
    n = array.size
    _validate(n, num_buckets)
    metric = metric or SSEMetric(array)
    effective = min(num_buckets, n)

    best_error = float("inf")
    best_splits: tuple[int, ...] = ()
    for used in range(1, effective + 1):
        for splits in combinations(range(n - 1), used - 1):
            error = 0.0
            start = 0
            for split in splits + (n - 1,):
                error += metric.bucket_error(start, split)
                start = split + 1
            if error < best_error:
                best_error = error
                best_splits = splits
    histogram = Histogram.from_boundaries(array, list(best_splits))
    if isinstance(metric, SSEMetric):
        # Cross-check the enumerated total against the direct evaluation.
        assert abs(best_error - sse_of_partition(array, list(best_splits))) <= 1e-6 * (
            1.0 + abs(best_error)
        )
    return histogram, best_error
