"""Histogram data model: buckets, estimation, and exact error accounting.

A :class:`Histogram` is the synopsis produced by every construction
algorithm in this library.  It tiles positions ``[0, length)`` of the
approximated sequence with contiguous :class:`Bucket` ranges, each collapsed
to a single representative value (the bucket mean for the SSE metric, as in
the paper's section 3).  Point, range-sum and range-average queries are
answered from the synopsis alone.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Bucket", "Histogram"]


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket covering positions ``[start, end]`` inclusive."""

    start: int
    end: int
    value: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid bucket range [{self.start}, {self.end}]")

    @property
    def size(self) -> int:
        """Number of positions covered by the bucket."""
        return self.end - self.start + 1

    @property
    def total(self) -> float:
        """Estimated sum of the values inside the bucket."""
        return self.value * self.size

    def overlap_sum(self, i: int, j: int) -> float:
        """Estimated sum of positions in ``[i, j] ∩ [start, end]``."""
        lo = max(i, self.start)
        hi = min(j, self.end)
        if lo > hi:
            return 0.0
        return self.value * (hi - lo + 1)


class Histogram:
    """A piecewise-constant synopsis of a finite sequence.

    Buckets must be contiguous, start at position 0, and tile the whole
    sequence.  Instances are immutable once constructed.
    """

    def __init__(self, buckets: Iterable[Bucket]) -> None:
        self._buckets = tuple(buckets)
        if not self._buckets:
            raise ValueError("a histogram needs at least one bucket")
        if self._buckets[0].start != 0:
            raise ValueError("the first bucket must start at position 0")
        for previous, current in zip(self._buckets, self._buckets[1:]):
            if current.start != previous.end + 1:
                raise ValueError(
                    f"buckets must be contiguous: [{previous.start}, {previous.end}] "
                    f"followed by [{current.start}, {current.end}]"
                )
        self._starts = [bucket.start for bucket in self._buckets]

    @classmethod
    def from_boundaries(cls, values, boundaries: Sequence[int]) -> "Histogram":
        """Build a histogram from bucket-split positions.

        ``boundaries`` holds the last index of each bucket except the final
        one (strictly increasing); representatives are bucket means.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            raise ValueError("cannot build a histogram of an empty sequence")
        splits = list(boundaries) + [array.size - 1]
        buckets = []
        start = 0
        for split in splits:
            if split < start or split >= array.size:
                raise ValueError(f"invalid split {split} (bucket start {start})")
            segment = array[start : split + 1]
            buckets.append(Bucket(start, split, float(segment.mean())))
            start = split + 1
        return cls(buckets)

    @property
    def buckets(self) -> tuple[Bucket, ...]:
        return self._buckets

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def __len__(self) -> int:
        """Length of the approximated sequence."""
        return self._buckets[-1].end + 1

    def __iter__(self):
        return iter(self._buckets)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self._buckets == other._buckets

    def __hash__(self) -> int:
        return hash(self._buckets)

    def __repr__(self) -> str:
        return f"Histogram({self.num_buckets} buckets over {len(self)} points)"

    def boundaries(self) -> list[int]:
        """Bucket-split positions (last index of each non-final bucket)."""
        return [bucket.end for bucket in self._buckets[:-1]]

    def _bucket_index(self, position: int) -> int:
        if not (0 <= position < len(self)):
            raise IndexError(f"position {position} out of range for length {len(self)}")
        return bisect.bisect_right(self._starts, position) - 1

    def point_estimate(self, position: int) -> float:
        """Estimate the value at a single position."""
        return self._buckets[self._bucket_index(position)].value

    def range_sum(self, i: int, j: int) -> float:
        """Estimate the sum of values in positions ``[i, j]`` inclusive."""
        if i > j:
            raise ValueError(f"empty range [{i}, {j}]")
        first = self._bucket_index(i)
        last = self._bucket_index(j)
        return sum(self._buckets[k].overlap_sum(i, j) for k in range(first, last + 1))

    def range_average(self, i: int, j: int) -> float:
        """Estimate the average of values in positions ``[i, j]`` inclusive."""
        return self.range_sum(i, j) / (j - i + 1)

    def quantile(self, fraction: float) -> float:
        """Approximate ``fraction``-quantile of the summarized values.

        Each bucket contributes ``size`` copies of its representative, so
        the quantile is read off the value-sorted bucket list in
        O(B log B) without reconstructing the sequence.
        """
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        target = max(1, int(round(fraction * len(self))))
        covered = 0
        for bucket in sorted(self._buckets, key=lambda b: b.value):
            covered += bucket.size
            if covered >= target:
                return bucket.value
        return self._buckets[-1].value

    def to_array(self) -> np.ndarray:
        """Reconstruct the full approximate sequence."""
        out = np.empty(len(self), dtype=np.float64)
        for bucket in self._buckets:
            out[bucket.start : bucket.end + 1] = bucket.value
        return out

    def sse(self, values) -> float:
        """Exact SSE between this histogram and the true values."""
        array = np.asarray(values, dtype=np.float64)
        if array.size != len(self):
            raise ValueError(
                f"value length {array.size} does not match histogram length {len(self)}"
            )
        return float(np.sum((array - self.to_array()) ** 2))

    def rebucket_means(self, values) -> "Histogram":
        """Same boundaries, representatives recomputed as exact means."""
        return Histogram.from_boundaries(values, self.boundaries())

    def describe(self) -> str:
        """Human-readable one-line-per-bucket rendering."""
        lines = [
            f"[{bucket.start:>6}, {bucket.end:>6}] -> {bucket.value:.4f}"
            for bucket in self._buckets
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        return {
            "length": len(self),
            "ends": [bucket.end for bucket in self._buckets],
            "values": [bucket.value for bucket in self._buckets],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Inverse of :meth:`to_dict`."""
        ends = payload["ends"]
        values = payload["values"]
        if len(ends) != len(values):
            raise ValueError("ends and values must have equal length")
        buckets = []
        start = 0
        for end, value in zip(ends, values):
            buckets.append(Bucket(start, int(end), float(value)))
            start = int(end) + 1
        histogram = cls(buckets)
        if len(histogram) != payload.get("length", len(histogram)):
            raise ValueError("length field inconsistent with bucket ends")
        return histogram
