"""Prefix-sum machinery backing O(1) bucket-error computation.

The optimal-histogram DP and both streaming algorithms of the paper rely on
two arrays, ``SUM`` and ``SQSUM`` (paper eq. 3), that turn the squared error
of any bucket into an O(1) expression (paper eq. 2).  This module provides:

* :class:`PrefixSums` -- immutable prefix sums over a finite sequence.
* :class:`SlidingPrefixSums` -- the circular-buffer variant of section 4.5:
  absolute cumulative sums anchored at a point in the past, rebased every
  ``n`` arrivals so the amortized per-arrival cost is O(1).

All public indices are 0-based; ranges are inclusive ``[i, j]`` to mirror
the paper's ``SQERROR[i, j]`` notation.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["PrefixSums", "SlidingPrefixSums", "as_stream_batch"]


def _as_float_array(values) -> np.ndarray:
    if not isinstance(values, (np.ndarray, list, tuple)):
        values = list(values)  # materialize generators / iterators
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D sequence, got shape {array.shape}")
    if array.size and not np.isfinite(array).all():
        raise ValueError("values must be finite (no NaN or inf)")
    return array


def as_stream_batch(values) -> np.ndarray:
    """Coerce any iterable of stream points to a validated 1-D float array."""
    return _as_float_array(values)


class PrefixSums:
    """Prefix sums and sums of squares of a finite sequence.

    Supports O(1) range sums, range means, and the V-optimal bucket error
    ``SQERROR[i, j]`` of paper equation 2.
    """

    def __init__(self, values) -> None:
        array = _as_float_array(values)
        self._n = array.size
        self._sum = np.concatenate(([0.0], np.cumsum(array)))
        self._sqsum = np.concatenate(([0.0], np.cumsum(array * array)))

    def __len__(self) -> int:
        return self._n

    def _check_range(self, i: int, j: int) -> None:
        if not (0 <= i <= j < self._n):
            raise IndexError(f"range [{i}, {j}] out of bounds for length {self._n}")

    def sum_range(self, i: int, j: int) -> float:
        """Sum of ``values[i..j]`` (inclusive)."""
        self._check_range(i, j)
        return float(self._sum[j + 1] - self._sum[i])

    def sqsum_range(self, i: int, j: int) -> float:
        """Sum of squares of ``values[i..j]`` (inclusive)."""
        self._check_range(i, j)
        return float(self._sqsum[j + 1] - self._sqsum[i])

    def mean(self, i: int, j: int) -> float:
        """Mean of ``values[i..j]`` (inclusive)."""
        return self.sum_range(i, j) / (j - i + 1)

    def sqerror(self, i: int, j: int) -> float:
        """SSE of representing ``values[i..j]`` by its mean (paper eq. 2).

        Clamped at zero to absorb floating-point cancellation.
        """
        self._check_range(i, j)
        length = j - i + 1
        total = self._sum[j + 1] - self._sum[i]
        sq = self._sqsum[j + 1] - self._sqsum[i]
        return max(0.0, float(sq - total * total / length))

    def sqerror_suffixes(self, starts: np.ndarray, j: int) -> np.ndarray:
        """Vectorized ``SQERROR[start, j]`` for an array of start indices.

        This is the inner loop of the DP and of HERROR evaluation: buckets
        ``[start, j]`` for every ``start`` in ``starts`` at once.
        """
        starts = np.asarray(starts, dtype=np.intp)
        lengths = (j + 1) - starts
        totals = self._sum[j + 1] - self._sum[starts]
        sqs = self._sqsum[j + 1] - self._sqsum[starts]
        errors = sqs - totals * totals / lengths
        return np.maximum(errors, 0.0)

    def sqerror_prefixes(self, i: int, ends: np.ndarray) -> np.ndarray:
        """Vectorized ``SQERROR[i, end]`` for an array of end indices.

        The mirror image of :meth:`sqerror_suffixes`; used by local-search
        boundary refinement, which prices buckets with a fixed start and a
        moving end.
        """
        ends = np.asarray(ends, dtype=np.intp)
        lengths = ends - i + 1
        totals = self._sum[ends + 1] - self._sum[i]
        sqs = self._sqsum[ends + 1] - self._sqsum[i]
        errors = sqs - totals * totals / lengths
        return np.maximum(errors, 0.0)


class SlidingPrefixSums:
    """Prefix sums over a sliding window of the last ``capacity`` points.

    Implements the section-4.5 structure: absolute cumulative arrays
    ``SUM'``/``SQSUM'`` anchored at a point in the past.  Queries subtract
    two cumulative entries, so the anchor offset cancels; every ``capacity``
    arrivals the arrays are compacted (an O(n) rebase amortized over n
    arrivals).  Window-relative indices are 0-based with index 0 being the
    oldest retained point.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        # Cumulative arrays hold up to 2*capacity + 1 entries before rebase.
        self._cum_sum = np.zeros(2 * capacity + 1, dtype=np.float64)
        self._cum_sqsum = np.zeros(2 * capacity + 1, dtype=np.float64)
        # Raw ring of window values, for rebasing and for `values()`.
        self._ring = np.zeros(capacity, dtype=np.float64)
        self._total_seen = 0
        # Number of cumulative entries currently filled past index 0.
        self._filled = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total_seen(self) -> int:
        """Total number of points appended since construction."""
        return self._total_seen

    def __len__(self) -> int:
        """Current window length (≤ capacity)."""
        return min(self._total_seen, self._capacity)

    def append(self, value: float) -> None:
        """Slide the window forward by one point."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"stream values must be finite, got {value}")
        if self._filled == 2 * self._capacity:
            self._rebase()
        head = self._filled
        self._cum_sum[head + 1] = self._cum_sum[head] + value
        self._cum_sqsum[head + 1] = self._cum_sqsum[head] + value * value
        self._filled += 1
        self._ring[self._total_seen % self._capacity] = value
        self._total_seen += 1

    def extend(self, values) -> None:
        """Slide the window forward by a whole batch (vectorized).

        Equivalent to ``append`` per value, but the cumulative arrays are
        advanced with one ``cumsum`` per segment and the ring is written
        with one fancy-index assignment, so the per-point Python overhead
        is amortized across the batch.
        """
        unchecked = (
            isinstance(values, np.ndarray)
            and values.dtype == np.float64
            and values.ndim == 1
        )
        array = values if unchecked else _as_float_array(values)
        if array.size < 16:
            # Below this size the fixed cost of the vectorized path exceeds
            # the scalar loop.  Validate the whole batch *before* the loop:
            # extend must ingest all points or none (per-point validation
            # inside `append` would leave a partial prefix applied when a
            # later point is bad, breaking callers that attribute a failed
            # batch to exactly the un-ingested points).
            points = array.tolist()
            if unchecked:
                for value in points:
                    if not math.isfinite(value):
                        raise ValueError(
                            "values must be finite (no NaN or inf)"
                        )
            append = self.append
            for value in points:
                append(value)
            return
        if unchecked:
            # One reduction instead of an elementwise isfinite pass: any NaN
            # or +/-inf in the batch makes the sum non-finite.  +inf and -inf
            # together yield NaN inside the reduction, which numpy would warn
            # about even though rejection is exactly the point.
            with np.errstate(invalid="ignore"):
                total = float(np.sum(array))
            if not math.isfinite(total):
                raise ValueError("values must be finite (no NaN or inf)")
        capacity = self._capacity
        start = 0
        while start < array.size:
            if self._filled == 2 * capacity:
                self._rebase()
            room = 2 * capacity - self._filled
            chunk = array[start : start + room]
            head = self._filled
            count = chunk.size
            # Accumulate in place over [running total, chunk...] so the
            # rounding matches per-point `append` bit for bit (same
            # associativity), without allocating temporaries.
            seg = self._cum_sum[head : head + 1 + count]
            seg[1:] = chunk
            np.add.accumulate(seg, out=seg)
            seg = self._cum_sqsum[head : head + 1 + count]
            np.multiply(chunk, chunk, out=seg[1:])
            np.add.accumulate(seg, out=seg)
            # Ring update: only the last `capacity` chunk values can survive,
            # written as at most two contiguous slices.
            write = chunk if count <= capacity else chunk[count - capacity :]
            pos = (self._total_seen + count - write.size) % capacity
            first = min(write.size, capacity - pos)
            self._ring[pos : pos + first] = write[:first]
            if write.size > first:
                self._ring[: write.size - first] = write[first:]
            self._filled += count
            self._total_seen += count
            start += count

    def _rebase(self) -> None:
        """Drop cumulative entries that precede the current window."""
        window = self.values()
        self._cum_sum[0] = 0.0
        self._cum_sqsum[0] = 0.0
        self._cum_sum[1 : window.size + 1] = np.cumsum(window)
        self._cum_sqsum[1 : window.size + 1] = np.cumsum(window * window)
        self._filled = window.size

    def values(self) -> np.ndarray:
        """The current window contents, oldest first (a fresh array)."""
        length = len(self)
        if length < self._capacity:
            return self._ring[:length].copy()
        pivot = self._total_seen % self._capacity
        return np.concatenate((self._ring[pivot:], self._ring[:pivot]))

    @classmethod
    def restore(cls, capacity: int, window, total_seen: int) -> "SlidingPrefixSums":
        """Rebuild a structure holding ``window`` after ``total_seen`` points.

        O(len(window)) regardless of how long the original stream was; the
        dropped history never needs replaying because only the retained
        window affects any query.
        """
        values = _as_float_array(window)
        if values.size > capacity:
            raise ValueError("window longer than capacity")
        if total_seen < values.size:
            raise ValueError("total_seen cannot be below the window length")
        if total_seen > values.size and values.size < capacity:
            raise ValueError("a partial window implies total_seen == window length")
        sliding = cls(capacity)
        sliding._total_seen = total_seen - values.size
        # Align the ring pivot with the restored arrival counter.
        for value in values:
            sliding._ring[sliding._total_seen % capacity] = value
            sliding._total_seen += 1
        sliding._cum_sum[1 : values.size + 1] = np.cumsum(values)
        sliding._cum_sqsum[1 : values.size + 1] = np.cumsum(values * values)
        sliding._filled = values.size
        return sliding

    def value_at(self, i: int) -> float:
        """The window value at window-relative position ``i`` (0 = oldest)."""
        self._check_range(i, i)
        oldest = self._total_seen - len(self)
        return float(self._ring[(oldest + i) % self._capacity])

    def _base(self) -> int:
        """Cumulative-array index of the entry just before the window."""
        return self._filled - len(self)

    def sum_range(self, i: int, j: int) -> float:
        """Sum of window values ``[i..j]`` (inclusive, window-relative)."""
        self._check_range(i, j)
        base = self._base()
        return float(self._cum_sum[base + j + 1] - self._cum_sum[base + i])

    def sqsum_range(self, i: int, j: int) -> float:
        self._check_range(i, j)
        base = self._base()
        return float(self._cum_sqsum[base + j + 1] - self._cum_sqsum[base + i])

    def mean(self, i: int, j: int) -> float:
        return self.sum_range(i, j) / (j - i + 1)

    def sqerror(self, i: int, j: int) -> float:
        """SSE of representing window values ``[i..j]`` by their mean."""
        self._check_range(i, j)
        base = self._base()
        length = j - i + 1
        total = self._cum_sum[base + j + 1] - self._cum_sum[base + i]
        sq = self._cum_sqsum[base + j + 1] - self._cum_sqsum[base + i]
        return max(0.0, float(sq - total * total / length))

    def sqerror_suffixes(self, starts: np.ndarray, j: int) -> np.ndarray:
        """Vectorized ``SQERROR[start, j]`` for window-relative starts."""
        self._check_range(0, j)
        base = self._base()
        starts = np.asarray(starts, dtype=np.intp)
        lengths = (j + 1) - starts
        totals = self._cum_sum[base + j + 1] - self._cum_sum[base + starts]
        sqs = self._cum_sqsum[base + j + 1] - self._cum_sqsum[base + starts]
        return np.maximum(sqs - totals * totals / lengths, 0.0)

    def _check_range(self, i: int, j: int) -> None:
        if not (0 <= i <= j < len(self)):
            raise IndexError(
                f"window range [{i}, {j}] out of bounds for window length {len(self)}"
            )
