"""Interval covers of the ``HERROR`` curve (paper sections 4.2-4.3).

Both streaming algorithms approximate the non-decreasing function
``HERROR[., k]`` by a set of intervals whose endpoints carry function
values within a ``(1 + delta)`` factor of the interval start.  Minimizing
``HERROR[i, k-1] + SQERROR[i+1, j]`` over interval *endpoints* instead of
all ``i`` is what turns the quadratic DP into a streaming algorithm.

This module provides:

* :class:`Certificate` -- a self-contained description of one candidate
  partition (split positions, per-bucket sums and the SSE estimate), so a
  builder can emit a real :class:`~repro.core.bucket.Histogram` without
  access to the raw stream.
* :class:`StreamingIntervalQueue` -- one persistent queue of the
  agglomerative algorithm (paper Fig. 3), storing prefix sums at interval
  endpoints and supporting a vectorized candidate minimization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bucket import Bucket, Histogram

__all__ = ["Certificate", "StreamingIntervalQueue", "RELATIVE_TOLERANCE"]

#: Relative slack absorbed by floating-point comparisons throughout the
#: streaming algorithms.  The (1+delta) growth tests and binary searches all
#: allow this much extra relative error so that exact ties (very common with
#: integer-valued streams) are not broken by rounding.
RELATIVE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Certificate:
    """A candidate B-bucket partition of the prefix ``[0 .. end]``.

    ``splits`` are the last indices of all buckets except the final one;
    ``bucket_sums`` has one entry per bucket (``len(splits) + 1`` values);
    ``error`` is the SSE estimate accumulated while composing the partition
    level by level.  Because each bucket's error term is the exact
    ``SQERROR`` of that bucket, ``error`` equals the true SSE of the
    partition it describes.
    """

    end: int
    splits: tuple[int, ...]
    bucket_sums: tuple[float, ...]
    error: float

    @classmethod
    def single_bucket(cls, end: int, total: float, sqerror: float) -> "Certificate":
        """Partition of ``[0..end]`` into one bucket."""
        return cls(end, (), (total,), sqerror)

    @classmethod
    def singletons(cls, values) -> "Certificate":
        """Degenerate partition with every point its own bucket (zero error)."""
        sums = tuple(float(v) for v in values)
        if not sums:
            raise ValueError("cannot certify an empty prefix")
        return cls(len(sums) - 1, tuple(range(len(sums) - 1)), sums, 0.0)

    def extend(self, end: int, last_sum: float, last_sqerror: float) -> "Certificate":
        """Append a final bucket ``[self.end + 1 .. end]``."""
        if end <= self.end:
            raise ValueError(f"new end {end} must exceed current end {self.end}")
        return Certificate(
            end,
            self.splits + (self.end,),
            self.bucket_sums + (last_sum,),
            self.error + last_sqerror,
        )

    @property
    def num_buckets(self) -> int:
        return len(self.bucket_sums)

    def to_dict(self) -> dict:
        """JSON-serializable form (see :meth:`from_dict`)."""
        return {
            "end": self.end,
            "splits": list(self.splits),
            "bucket_sums": list(self.bucket_sums),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Certificate":
        return cls(
            int(payload["end"]),
            tuple(int(s) for s in payload["splits"]),
            tuple(float(s) for s in payload["bucket_sums"]),
            float(payload["error"]),
        )

    def to_histogram(self) -> Histogram:
        """Materialize the partition as a histogram with mean representatives."""
        bounds = self.splits + (self.end,)
        buckets = []
        start = 0
        for split, total in zip(bounds, self.bucket_sums):
            buckets.append(Bucket(start, split, total / (split - start + 1)))
            start = split + 1
        return Histogram(buckets)


class StreamingIntervalQueue:
    """Interval cover of ``HERROR[., k]`` maintained over an unbounded stream.

    Each interval ``(a, b)`` satisfies ``HERROR[b, k] <= (1+delta) *
    HERROR[a, k]``; a new interval opens when the incoming value breaks the
    bound (paper Fig. 3, lines 7-10).  Endpoint state (prefix sum, prefix
    sum of squares, the HERROR estimate and its certificate) lives in
    growable parallel arrays so candidate minimization is one vectorized
    pass.
    """

    _INITIAL_CAPACITY = 64

    def __init__(self, delta: float) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self._delta = delta
        self._size = 0
        capacity = self._INITIAL_CAPACITY
        self._ends = np.empty(capacity, dtype=np.intp)
        self._herror_end = np.empty(capacity, dtype=np.float64)
        self._sum_end = np.empty(capacity, dtype=np.float64)
        self._sqsum_end = np.empty(capacity, dtype=np.float64)
        self._starts: list[int] = []
        self._herror_start: list[float] = []
        self._certificates: list[Certificate] = []

    def __len__(self) -> int:
        """Number of intervals currently stored."""
        return self._size

    @property
    def delta(self) -> float:
        return self._delta

    def endpoints(self) -> np.ndarray:
        return self._ends[: self._size].copy()

    def interval_bounds(self) -> list[tuple[int, int]]:
        """The interval cover as (start, end) pairs, for analysis."""
        return [
            (self._starts[i], int(self._ends[i])) for i in range(self._size)
        ]

    def _grow(self) -> None:
        capacity = self._ends.size * 2
        for name in ("_ends", "_herror_end", "_sum_end", "_sqsum_end"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    def observe(
        self,
        index: int,
        herror: float,
        prefix_sum: float,
        prefix_sqsum: float,
        certificate: Certificate,
    ) -> None:
        """Record ``HERROR[index, k]`` after the point at ``index`` arrived.

        Either extends the last interval (overwriting its endpoint state)
        or opens a new single-point interval, following the (1+delta)
        growth rule.
        """
        opens_new = (
            self._size == 0
            or herror
            > (1.0 + self._delta) * self._herror_start[-1] * (1.0 + RELATIVE_TOLERANCE)
            + RELATIVE_TOLERANCE
        )
        if opens_new:
            if self._size == self._ends.size:
                self._grow()
            slot = self._size
            self._size += 1
            self._starts.append(index)
            self._herror_start.append(herror)
            self._certificates.append(certificate)
        else:
            slot = self._size - 1
            self._certificates[slot] = certificate
        self._ends[slot] = index
        self._herror_end[slot] = herror
        self._sum_end[slot] = prefix_sum
        self._sqsum_end[slot] = prefix_sqsum

    def best_split(
        self, index: int, prefix_sum: float, prefix_sqsum: float
    ) -> tuple[float, int] | None:
        """Best ``HERROR[e, k] + SQERROR[e+1, index]`` over stored endpoints.

        All stored endpoints precede ``index`` (the caller minimizes before
        observing the new point), so every candidate split leaves the final
        bucket non-empty.  Returns ``(value, slot)`` or ``None`` if the
        queue is empty.
        """
        if self._size == 0:
            return None
        ends = self._ends[: self._size]
        lengths = index - ends
        totals = prefix_sum - self._sum_end[: self._size]
        sqs = prefix_sqsum - self._sqsum_end[: self._size]
        tail_errors = np.maximum(sqs - totals * totals / lengths, 0.0)
        candidates = self._herror_end[: self._size] + tail_errors
        slot = int(np.argmin(candidates))
        return float(candidates[slot]), slot

    def to_state(self) -> dict:
        """JSON-serializable snapshot of the queue (see :meth:`from_state`)."""
        size = self._size
        return {
            "delta": self._delta,
            "ends": self._ends[:size].tolist(),
            "herror_end": self._herror_end[:size].tolist(),
            "sum_end": self._sum_end[:size].tolist(),
            "sqsum_end": self._sqsum_end[:size].tolist(),
            "starts": list(self._starts),
            "herror_start": list(self._herror_start),
            "certificates": [c.to_dict() for c in self._certificates],
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingIntervalQueue":
        queue = cls(float(state["delta"]))
        size = len(state["ends"])
        if not (
            size
            == len(state["herror_end"])
            == len(state["sum_end"])
            == len(state["sqsum_end"])
            == len(state["starts"])
            == len(state["herror_start"])
            == len(state["certificates"])
        ):
            raise ValueError("inconsistent queue snapshot")
        while queue._ends.size < size:
            queue._grow()
        queue._size = size
        queue._ends[:size] = np.asarray(state["ends"], dtype=np.intp)
        queue._herror_end[:size] = state["herror_end"]
        queue._sum_end[:size] = state["sum_end"]
        queue._sqsum_end[:size] = state["sqsum_end"]
        queue._starts = [int(s) for s in state["starts"]]
        queue._herror_start = [float(h) for h in state["herror_start"]]
        queue._certificates = [
            Certificate.from_dict(c) for c in state["certificates"]
        ]
        return queue

    def split_candidate(
        self, slot: int, index: int, prefix_sum: float, prefix_sqsum: float
    ) -> tuple[Certificate, float, float]:
        """Certificate pieces for extending endpoint ``slot`` to ``index``.

        Returns the endpoint's certificate plus the final-bucket sum and
        SQERROR for the bucket ``[endpoint + 1 .. index]``.
        """
        if not (0 <= slot < self._size):
            raise IndexError(f"slot {slot} out of range")
        end = int(self._ends[slot])
        length = index - end
        total = prefix_sum - float(self._sum_end[slot])
        sq = prefix_sqsum - float(self._sqsum_end[slot])
        tail_error = max(0.0, sq - total * total / length)
        return self._certificates[slot], total, tail_error
