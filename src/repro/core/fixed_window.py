"""Fixed-window streaming histograms (paper section 4.5 -- the contribution).

The builder maintains an epsilon-approximate B-bucket V-optimal histogram
of the **last n points** of a stream.  Re-running the optimal DP per
arrival costs ``O(n^2 B)``; re-using the agglomerative queues is impossible
because shifting the window shifts the ``HERROR`` curve and invalidates the
interval cover (paper section 4.4, Fig. 4).  Instead, on demand the builder
rebuilds the interval cover of every level with the procedure
``CreateList[a, b, k]`` (paper Fig. 5):

* level-k ``HERROR`` values are evaluated *lazily* -- a value at position
  ``c`` is a minimization over the already-built level-(k-1) endpoint set
  (one vectorized pass) plus the virtual split ``c - 1``, whose level-(k-1)
  value is obtained by a memoized recursive evaluation (it covers the case
  where the optimal split lies strictly inside the cover interval that
  straddles ``c``);
* each interval's right end is located by a galloping (exponential +
  binary) search over the non-decreasing ``HERROR`` curve -- the paper's
  binary search, tightened so the cost per interval is logarithmic in the
  *interval length* rather than the window length.

Only ``O(intervals * log n)`` positions per level are ever touched, giving
Theorem 1's ``O((B^3 / eps^2) log^3 n)`` per-point cost.  The emitted
histogram is recovered by walking the minimizations back down the levels,
so its true SSE equals the computed estimate and genuinely satisfies
``SSE <= (1 + eps) * OPT``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bucket import Bucket, Histogram
from .intervals import RELATIVE_TOLERANCE
from .prefix import SlidingPrefixSums, as_stream_batch

__all__ = ["FixedWindowHistogramBuilder", "RebuildStats"]


@dataclass
class RebuildStats:
    """Operation counters for one rebuild (Theorem 1 ablations).

    ``herror_evaluations`` counts memo misses (distinct positions whose
    HERROR was computed), ``search_probes`` counts galloping/binary search
    probes, ``intervals_per_level`` records the interval-cover sizes.
    """

    herror_evaluations: int = 0
    search_probes: int = 0
    intervals_per_level: list[int] = field(default_factory=list)

    @property
    def total_intervals(self) -> int:
        return sum(self.intervals_per_level)


class _Level:
    """A freshly built interval cover of ``HERROR[., k]`` for one window.

    Stores, per interval endpoint: its position, its HERROR value, and the
    cumulative sum / sum-of-squares entries needed to price a final bucket
    starting right after it -- everything the level-above minimization
    touches, in parallel numpy arrays.
    """

    __slots__ = ("ends", "herror", "cum_sum", "cum_sqsum", "starts", "herror_start")

    def __init__(
        self,
        ends: list[int],
        herror: list[float],
        cum_sum: np.ndarray,
        cum_sqsum: np.ndarray,
        starts: list[int],
        herror_start: list[float],
    ) -> None:
        self.ends = np.asarray(ends, dtype=np.intp)
        self.herror = np.asarray(herror, dtype=np.float64)
        self.cum_sum = cum_sum
        self.cum_sqsum = cum_sqsum
        self.starts = starts
        self.herror_start = np.asarray(herror_start, dtype=np.float64)


class FixedWindowHistogramBuilder:
    """Epsilon-approximate B-bucket histogram of the last ``window_size`` points.

    Parameters
    ----------
    window_size:
        Sliding-window length n (the fixed buffer M of the paper).
    num_buckets:
        Histogram space budget B.
    epsilon:
        Approximation slack; the histogram's SSE is within ``(1 + epsilon)``
        of the optimal B-bucket SSE of the current window.  The interval
        machinery uses ``delta = epsilon / (2 B)``.
    engine:
        ``"lazy"`` (default) is the paper's algorithm -- galloping binary
        searches touch only ``O(intervals * log n)`` positions per level,
        the polylog bound of Theorem 1.  ``"dense"`` evaluates every
        position of every level in vectorized numpy passes: same interval
        cover and guarantee, O(n * intervals) work per level, but small
        constants that win on wall-clock for windows up to a few thousand
        points in this Python implementation.

    The interval cover is rebuilt lazily: :meth:`append` only slides the
    window; the rebuild happens on :meth:`update` / :meth:`histogram`.  A
    paper-faithful "maintain after every arrival" loop calls ``append``
    then ``update``.
    """

    def __init__(
        self,
        window_size: int,
        num_buckets: int,
        epsilon: float,
        engine: str = "lazy",
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if engine not in ("lazy", "dense"):
            raise ValueError(f"unknown engine {engine!r}; use 'lazy' or 'dense'")
        self.window_size = window_size
        self.num_buckets = num_buckets
        self.epsilon = epsilon
        self.engine = engine
        self.delta = epsilon / (2.0 * num_buckets)
        self._prefix = SlidingPrefixSums(window_size)
        self._levels: list[_Level] = []
        self._memos: list[dict[int, float]] = []
        self._splits_cache: list[int] | None = None
        self._final_error = 0.0
        self._dirty = True
        self.last_stats = RebuildStats()
        self.lifetime_stats = RebuildStats()
        self.rebuild_count = 0

    def __len__(self) -> int:
        """Current window length (≤ window_size)."""
        return len(self._prefix)

    @property
    def total_seen(self) -> int:
        return self._prefix.total_seen

    def window_values(self) -> np.ndarray:
        """The raw window contents (oldest first)."""
        return self._prefix.values()

    def append(self, value: float) -> None:
        """Slide the window forward by one point (O(1) amortized)."""
        self._prefix.append(value)
        self._dirty = True

    def extend(self, values) -> None:
        """Slide the window forward by a whole batch (vectorized).

        One rebuild amortizes over the batch: the prefix structure advances
        in bulk and the interval cover stays stale until the next
        :meth:`update` / :meth:`histogram`.
        """
        if (
            isinstance(values, np.ndarray)
            and values.dtype == np.float64
            and values.ndim == 1
        ):
            array = values  # validated downstream by the prefix structure
        else:
            array = as_stream_batch(values)
        if array.size == 0:
            return
        if array.size == 1:
            self.append(float(array[0]))
            return
        self._prefix.extend(array)
        self._dirty = True

    def update(self) -> None:
        """Rebuild the interval cover for the current window if stale."""
        if not self._dirty:
            return
        if len(self._prefix) == 0:
            raise ValueError("no points consumed yet")
        self._rebuild()
        self._dirty = False

    def splits(self) -> list[int]:
        """Bucket-split positions of the current histogram (cached)."""
        self.update()
        if self._splits_cache is None:
            self._splits_cache = self._recover_splits()
        return list(self._splits_cache)

    def histogram(self) -> Histogram:
        """The epsilon-approximate B-bucket histogram of the current window."""
        splits = self.splits()
        prefix = self._prefix
        buckets = []
        start = 0
        for split in splits + [len(prefix) - 1]:
            buckets.append(Bucket(start, split, prefix.mean(start, split)))
            start = split + 1
        return Histogram(buckets)

    @property
    def error_estimate(self) -> float:
        """Exact SSE of the current histogram, computed from prefix sums."""
        splits = self.splits()
        prefix = self._prefix
        total = 0.0
        start = 0
        for split in splits + [len(prefix) - 1]:
            total += prefix.sqerror(start, split)
            start = split + 1
        return total

    @property
    def herror_estimate(self) -> float:
        """The internal HERROR estimate (for analysis; >= 0, ~error_estimate)."""
        self.update()
        return self._final_error

    def interval_counts(self) -> list[int]:
        """Interval-cover sizes per level for the current window."""
        self.update()
        return [level.ends.size for level in self._levels]

    def interval_cover(self, level: int) -> list[tuple[int, int]]:
        """The interval cover of ``HERROR[., level]`` as (start, end) pairs.

        ``level`` is the bucket count k in ``[1, B-1]``; positions are
        window-relative.  Exposed for analysis and for tracing the
        paper's Example 1.
        """
        self.update()
        if not (1 <= level <= len(self._levels)):
            raise ValueError(f"level must be in [1, {len(self._levels)}]")
        chosen = self._levels[level - 1]
        return [
            (int(start), int(end))
            for start, end in zip(chosen.starts, chosen.ends)
        ]

    # ------------------------------------------------------------------
    # Snapshot / resume
    # ------------------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable snapshot sufficient to resume the stream.

        The builder's only durable state is its parameters and the raw
        window (interval covers are rebuilt per arrival anyway), so the
        snapshot is small and exact.
        """
        return {
            "window_size": self.window_size,
            "num_buckets": self.num_buckets,
            "epsilon": self.epsilon,
            "engine": self.engine,
            "total_seen": self._prefix.total_seen,
            "window": self._prefix.values().tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FixedWindowHistogramBuilder":
        """Inverse of :meth:`to_state`; the resumed builder answers every
        query identically to the original."""
        builder = cls(
            int(state["window_size"]),
            int(state["num_buckets"]),
            float(state["epsilon"]),
            engine=state.get("engine", "lazy"),
        )
        builder._prefix = SlidingPrefixSums.restore(
            builder.window_size, state["window"], int(state["total_seen"])
        )
        builder._dirty = True
        return builder

    # ------------------------------------------------------------------
    # Rebuild machinery (paper Fig. 5)
    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        self.last_stats = RebuildStats()
        prefix = self._prefix
        last = len(prefix) - 1
        # The cumulative arrays are stable for the whole rebuild; grab the
        # raw views once so HERROR evaluation avoids per-call indirection.
        base = prefix._base()
        self._cum_sum = prefix._cum_sum
        self._cum_sqsum = prefix._cum_sqsum
        self._base_index = base
        self._memos = [dict() for _ in range(self.num_buckets + 1)]
        self._splits_cache: list[int] | None = None
        self._levels = []
        if self.engine == "dense":
            self._rebuild_dense(last)
        else:
            for k in range(1, self.num_buckets):
                self._levels.append(self._create_list(last, k))
                self.last_stats.intervals_per_level.append(
                    self._levels[-1].ends.size
                )
            self._final_error = self._evaluate(last, self.num_buckets)
        self.lifetime_stats.herror_evaluations += self.last_stats.herror_evaluations
        self.lifetime_stats.search_probes += self.last_stats.search_probes
        self.rebuild_count += 1

    def _rebuild_dense(self, last: int) -> None:
        """Vectorized rebuild: evaluate every level at every position.

        Same interval-cover semantics as the lazy engine (level-(k) minima
        run over the level-(k-1) *cover endpoints*), but the whole HERROR
        array of a level is computed in one batch of numpy passes and the
        cover is read off by a linear scan -- no binary searches.  Does
        O(n * intervals) work per level, which beats the lazy engine's
        Python overhead for small windows; the virtual split uses the
        exact HERROR[c-1, k-1] value, so dense estimates are never looser
        than lazy ones.
        """
        m = last + 1
        base = self._base_index
        cum_sum = self._cum_sum[base : base + m + 1]
        cum_sqsum = self._cum_sqsum[base : base + m + 1]

        counts = np.arange(1, m + 1, dtype=np.float64)
        dense = np.maximum(
            (cum_sqsum[1:] - cum_sqsum[0])
            - (cum_sum[1:] - cum_sum[0]) ** 2 / counts,
            0.0,
        )
        positions = np.arange(m)
        for k in range(1, self.num_buckets + 1):
            if k > 1:
                # HERROR[., k] from the level-(k-1) cover plus the exact
                # virtual split (previous level shifted by one).
                level = self._levels[k - 2]
                nxt = np.full(m, np.inf)
                for slot in range(level.ends.size):
                    end = int(level.ends[slot])
                    if end + 1 >= m:
                        continue
                    c = positions[end + 1 :]
                    tails = (cum_sqsum[c + 1] - cum_sqsum[end + 1]) - (
                        cum_sum[c + 1] - cum_sum[end + 1]
                    ) ** 2 / (c - end)
                    np.minimum(
                        nxt[end + 1 :],
                        float(level.herror[slot]) + tails,
                        out=nxt[end + 1 :],
                    )
                np.minimum(nxt[1:], dense[:-1], out=nxt[1:])
                nxt[: min(k, m)] = 0.0  # fewer points than buckets: exact
                np.maximum(nxt, 0.0, out=nxt)
                dense = nxt
            self.last_stats.herror_evaluations += m
            self._memos[k] = dict(enumerate(dense.tolist()))
            if k < self.num_buckets:
                self._levels.append(self._cover_from_dense(dense))
                self.last_stats.intervals_per_level.append(
                    self._levels[-1].ends.size
                )
        self._final_error = float(dense[last])

    def _cover_from_dense(self, dense: np.ndarray) -> _Level:
        """Interval cover of a fully evaluated HERROR array (linear scan)."""
        scale = (1.0 + self.delta) * (1.0 + RELATIVE_TOLERANCE)
        ends: list[int] = []
        herrors: list[float] = []
        starts: list[int] = []
        herror_starts: list[float] = []
        m = dense.size
        a = 0
        while a < m:
            threshold = scale * float(dense[a]) + RELATIVE_TOLERANCE
            c = a
            while c + 1 < m and dense[c + 1] <= threshold:
                c += 1
            starts.append(a)
            herror_starts.append(float(dense[a]))
            ends.append(c)
            herrors.append(float(dense[c]))
            a = c + 1
        base = self._base_index
        end_array = np.asarray(ends, dtype=np.intp)
        return _Level(
            ends,
            herrors,
            self._cum_sum[base + end_array + 1],
            self._cum_sqsum[base + end_array + 1],
            starts,
            herror_starts,
        )

    def _create_list(self, last: int, k: int) -> _Level:
        """Build the level-k interval cover of ``[0 .. last]``.

        Iterative form of the paper's recursive ``CreateList``: starting at
        ``a``, search for the maximal ``c`` with ``HERROR[c, k] <=
        (1 + delta) * HERROR[a, k]``, record the endpoint, continue from
        ``c + 1``.
        """
        ends: list[int] = []
        herrors: list[float] = []
        starts: list[int] = []
        herror_starts: list[float] = []
        scale = (1.0 + self.delta) * (1.0 + RELATIVE_TOLERANCE)
        a = 0
        while a <= last:
            start_value = self._evaluate(a, k)
            threshold = scale * start_value + RELATIVE_TOLERANCE
            c = self._search_interval_end(a, last, k, threshold)
            starts.append(a)
            herror_starts.append(start_value)
            ends.append(c)
            herrors.append(self._evaluate(c, k))
            a = c + 1
        base = self._base_index
        end_array = np.asarray(ends, dtype=np.intp)
        return _Level(
            ends,
            herrors,
            self._cum_sum[base + end_array + 1],
            self._cum_sqsum[base + end_array + 1],
            starts,
            herror_starts,
        )

    def _search_interval_end(self, a: int, last: int, k: int, threshold: float) -> int:
        """Maximal ``c`` in ``[a, last]`` with ``HERROR[c, k] <= threshold``.

        Galloping search: double the step while below the threshold, then
        binary-search the bracket.  ``HERROR[a, k]`` is below the threshold
        by construction.
        """
        probes = 0
        lo = a
        step = 1
        hi = -1
        while lo < last:
            probe = min(a + step, last)
            probes += 1
            if self._evaluate(probe, k) <= threshold:
                lo = probe
                step *= 2
            else:
                hi = probe
                break
        if hi < 0:
            self.last_stats.search_probes += probes
            return last
        while hi - lo > 1:
            mid = (lo + hi) // 2
            probes += 1
            if self._evaluate(mid, k) <= threshold:
                lo = mid
            else:
                hi = mid
        self.last_stats.search_probes += probes
        return lo

    def _evaluate(self, c: int, k: int) -> float:
        """Lazy ``HERROR[c, k]`` over the current window, memoized.

        For ``k >= 2`` the minimization runs over (i) the endpoints of the
        already-built level-(k-1) cover that precede ``c`` (one vectorized
        pass) and (ii) the virtual split ``c - 1``, which covers the case
        where the optimal split lies strictly inside the cover interval
        that straddles ``c``.  The virtual candidate is priced in O(1) by
        the interval-cover property: ``HERROR[c-1, k-1] <= (1 + delta) *
        HERROR[start, k-1]`` for the interval containing ``c - 1``, which
        costs one extra ``(1 + delta)`` factor per level -- exactly the
        second factor the paper's ``delta = eps / (2B)`` budget reserves.
        """
        memo = self._memos[k]
        cached = memo.get(c)
        if cached is not None:
            return cached
        self.last_stats.herror_evaluations += 1

        if c + 1 <= k:
            # Fewer points than buckets: exact, zero error.
            memo[c] = 0.0
            return 0.0

        base = self._base_index
        cum_sum = self._cum_sum
        cum_sqsum = self._cum_sqsum
        sum_c = cum_sum[base + c + 1]
        sqsum_c = cum_sqsum[base + c + 1]

        if k == 1:
            total = sum_c - cum_sum[base]
            value = sqsum_c - cum_sqsum[base] - total * total / (c + 1)
            value = value if value > 0.0 else 0.0
            memo[c] = value
            return value

        level = self._levels[k - 2]
        ends = level.ends
        # Interval of the level-(k-1) cover containing c - 1, and the count
        # of endpoints strictly before c (ends are strictly increasing).
        straddle = int(ends.searchsorted(c - 1))
        cutoff = straddle + 1 if ends[straddle] == c - 1 else straddle
        # Virtual split at c - 1: final bucket is the single point c (zero
        # error); HERROR[c-1, k-1] is bounded via the interval start.
        value = (1.0 + self.delta) * float(level.herror_start[straddle])
        if cutoff > 0:
            totals = sum_c - level.cum_sum[:cutoff]
            lengths = c - ends[:cutoff]
            tails = (sqsum_c - level.cum_sqsum[:cutoff]) - totals * totals / lengths
            best = float((level.herror[:cutoff] + tails).min())
            if best < value:
                value = best
        value = value if value > 0.0 else 0.0
        memo[c] = value
        return value

    def _best_split(self, c: int, k: int) -> int:
        """A split index whose cost is within ``_evaluate(c, k)`` (``k >= 2``).

        Recomputes the endpoint minimization with warm memos and compares
        it against the *exact* cost of the virtual split ``c - 1`` (its
        interval-based price in :meth:`_evaluate` only over-estimates, so
        picking the smaller of the two realizable costs keeps the walked
        partition within the reported estimate).
        """
        virtual = self._evaluate(c - 1, k - 1)
        level = self._levels[k - 2]
        cutoff = int(level.ends.searchsorted(c))
        if cutoff == 0:
            return c - 1
        base = self._base_index
        sum_c = self._cum_sum[base + c + 1]
        sqsum_c = self._cum_sqsum[base + c + 1]
        totals = sum_c - level.cum_sum[:cutoff]
        lengths = c - level.ends[:cutoff]
        tails = (sqsum_c - level.cum_sqsum[:cutoff]) - totals * totals / lengths
        candidates = level.herror[:cutoff] + tails
        slot = int(candidates.argmin())
        if candidates[slot] <= virtual:
            return int(level.ends[slot])
        return c - 1

    def _recover_splits(self) -> list[int]:
        """Walk the minimizations down the levels to actual bucket splits."""
        splits: list[int] = []
        c = len(self._prefix) - 1
        k = self.num_buckets
        while k > 1:
            if c + 1 <= k:
                # Degenerate tail: every remaining point its own bucket.
                splits.extend(range(c))
                return sorted(splits)
            split = self._best_split(c, k)
            splits.append(split)
            c, k = split, k - 1
        return sorted(splits)
