"""Agglomerative streaming histogram construction (paper section 4.3, [GKS01]).

One pass over the stream, ``B - 1`` interval queues, per-point cost
``O((B^2 / eps) log n)``: on each arrival the algorithm evaluates
``HERROR[j, k]`` for every level by minimizing over the endpoints of the
level-below queue, then feeds the new values back into the queues under the
``(1 + delta)`` growth rule with ``delta = eps / (2B)``.

The resulting histogram covers the *entire prefix seen so far* (the
agglomerative data-stream model, paper Fig. 1a) and its SSE is within a
``(1 + eps)`` factor of the optimal B-bucket histogram.  The builder keeps
no per-point state beyond the queues, so memory stays polylogarithmic in
the stream length.
"""

from __future__ import annotations

import math

from .bucket import Histogram
from .intervals import Certificate, StreamingIntervalQueue

__all__ = ["AgglomerativeHistogramBuilder"]


class AgglomerativeHistogramBuilder:
    """One-pass epsilon-approximate V-optimal histogram of a growing prefix.

    Parameters
    ----------
    num_buckets:
        The space budget B of the histogram.
    epsilon:
        Approximation slack: the emitted histogram's SSE is at most
        ``(1 + epsilon)`` times the optimal B-bucket SSE of the prefix.
        Smaller values buy accuracy with more intervals per queue (and
        therefore more time and memory per point).
    """

    def __init__(self, num_buckets: int, epsilon: float) -> None:
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.num_buckets = num_buckets
        self.epsilon = epsilon
        self.delta = epsilon / (2.0 * num_buckets)
        # Queue index q maintains intervals of HERROR[., q + 1].
        self._queues = [
            StreamingIntervalQueue(self.delta) for _ in range(num_buckets - 1)
        ]
        self._count = 0
        self._running_sum = 0.0
        self._running_sqsum = 0.0
        # Raw head of the stream, needed only for the degenerate
        # fewer-points-than-buckets certificates.
        self._head: list[float] = []
        self._final: Certificate | None = None

    def __len__(self) -> int:
        """Number of stream points consumed so far."""
        return self._count

    @property
    def queues(self) -> list[StreamingIntervalQueue]:
        """The interval queues (exposed for analysis and benchmarks)."""
        return self._queues

    def queue_sizes(self) -> list[int]:
        return [len(queue) for queue in self._queues]

    def append(self, value: float) -> None:
        """Consume one stream point (paper Fig. 3 body)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"stream values must be finite, got {value}")
        index = self._count
        self._count += 1
        self._running_sum += value
        self._running_sqsum += value * value
        if len(self._head) < self.num_buckets:
            self._head.append(value)

        certificates = self._level_certificates(index)
        # Feed HERROR[index, k] into queue k for k = 1 .. B-1.
        for level in range(self.num_buckets - 1):
            certificate = certificates[level]
            self._queues[level].observe(
                index,
                certificate.error,
                self._running_sum,
                self._running_sqsum,
                certificate,
            )
        self._final = certificates[-1]

    def extend(self, values) -> None:
        # Validate the whole batch before mutating anything: a bad point
        # mid-batch must not leave the prefix ingested (all-or-nothing,
        # the contract batch callers roll back against).
        batch = [float(value) for value in values]
        for value in batch:
            if not math.isfinite(value):
                raise ValueError(f"stream values must be finite, got {value}")
        for value in batch:
            self.append(value)

    def _level_certificates(self, index: int) -> list[Certificate]:
        """HERROR certificates for the prefix ``[0..index]`` at levels 1..B."""
        points = index + 1
        one_bucket_error = max(
            0.0, self._running_sqsum - self._running_sum**2 / points
        )
        certificates = [
            Certificate.single_bucket(index, self._running_sum, one_bucket_error)
        ]
        for k in range(2, self.num_buckets + 1):
            if points <= k:
                certificates.append(Certificate.singletons(self._head[:points]))
                continue
            queue = self._queues[k - 2]
            best = queue.best_split(index, self._running_sum, self._running_sqsum)
            if best is None:
                # No endpoints yet (only possible on the very first point,
                # already handled by the degenerate branch above).
                certificates.append(certificates[-1])
                continue
            _, slot = best
            base, last_sum, last_error = queue.split_candidate(
                slot, index, self._running_sum, self._running_sqsum
            )
            certificates.append(base.extend(index, last_sum, last_error))
        return certificates

    @property
    def error_estimate(self) -> float:
        """Current SSE estimate of the emitted B-bucket histogram."""
        if self._final is None:
            raise ValueError("no points consumed yet")
        return self._final.error

    def histogram(self) -> Histogram:
        """The epsilon-approximate B-bucket histogram of the prefix so far."""
        if self._final is None:
            raise ValueError("no points consumed yet")
        return self._final.to_histogram()

    def memory_footprint(self) -> int:
        """Total interval-queue entries (the dominant state), for analysis."""
        return sum(len(queue) for queue in self._queues)

    def to_state(self) -> dict:
        """JSON-serializable snapshot of the whole builder.

        Unlike the fixed-window builder, the agglomerative state is the
        queues themselves (the stream cannot be replayed), so the snapshot
        serializes every interval endpoint and certificate -- still
        polylogarithmic in the stream length.
        """
        return {
            "num_buckets": self.num_buckets,
            "epsilon": self.epsilon,
            "count": self._count,
            "running_sum": self._running_sum,
            "running_sqsum": self._running_sqsum,
            "head": list(self._head),
            "queues": [queue.to_state() for queue in self._queues],
            "final": self._final.to_dict() if self._final is not None else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "AgglomerativeHistogramBuilder":
        """Inverse of :meth:`to_state`; the resumed builder continues the
        stream exactly where the original left off."""
        builder = cls(int(state["num_buckets"]), float(state["epsilon"]))
        if len(state["queues"]) != builder.num_buckets - 1:
            raise ValueError("inconsistent snapshot: wrong queue count")
        builder._count = int(state["count"])
        builder._running_sum = float(state["running_sum"])
        builder._running_sqsum = float(state["running_sqsum"])
        builder._head = [float(v) for v in state["head"]]
        builder._queues = [
            StreamingIntervalQueue.from_state(queue_state)
            for queue_state in state["queues"]
        ]
        final = state["final"]
        builder._final = Certificate.from_dict(final) if final is not None else None
        return builder
