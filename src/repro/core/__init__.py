"""Core histogram algorithms: the paper's contribution and its substrates.

Public surface:

* :class:`Bucket`, :class:`Histogram` -- the synopsis data model.
* :func:`optimal_histogram` -- the exact O(n^2 B) V-optimal DP ([JKM+98]).
* :func:`approximate_histogram` -- one-shot (1 + eps)-approximation
  (paper Problem 2).
* :class:`AgglomerativeHistogramBuilder` -- one-pass whole-prefix
  histograms ([GKS01], paper section 4.3).
* :class:`FixedWindowHistogramBuilder` -- the paper's fixed-window
  streaming algorithm (section 4.5, Theorem 1).
"""

from .agglomerative import AgglomerativeHistogramBuilder
from .approx import approximate_error, approximate_histogram
from .bucket import Bucket, Histogram
from .errors import (
    SAEMetric,
    SSEMetric,
    WeightedSSEMetric,
    naive_sae,
    naive_sse,
    sse_of_partition,
)
from .fixed_window import FixedWindowHistogramBuilder, RebuildStats
from .intervals import Certificate, StreamingIntervalQueue
from .minimax import greedy_threshold_partition, minimax_error, minimax_histogram
from .optimal import (
    brute_force_histogram,
    optimal_error,
    optimal_error_table,
    optimal_histogram,
)
from .prefix import PrefixSums, SlidingPrefixSums

__all__ = [
    "AgglomerativeHistogramBuilder",
    "Bucket",
    "Certificate",
    "FixedWindowHistogramBuilder",
    "Histogram",
    "PrefixSums",
    "RebuildStats",
    "SAEMetric",
    "SSEMetric",
    "WeightedSSEMetric",
    "SlidingPrefixSums",
    "StreamingIntervalQueue",
    "approximate_error",
    "greedy_threshold_partition",
    "minimax_error",
    "minimax_histogram",
    "approximate_histogram",
    "brute_force_histogram",
    "naive_sae",
    "naive_sse",
    "optimal_error",
    "optimal_error_table",
    "optimal_histogram",
    "sse_of_partition",
]
