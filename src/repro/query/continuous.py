"""Continuous queries over a stream (the paper's motivating workload).

Section 1: "network operators commonly pose queries, requesting the
aggregate number of bytes over network interfaces for time windows of
interest" -- standing queries, re-evaluated as the stream advances.  A
:class:`ContinuousQueryEngine` owns one fixed-window histogram maintainer
(resolved through the :mod:`repro.runtime` registry) and a set of
registered :class:`StandingQuery` objects; each checkpoint answers every
query from the synopsis alone (never the raw buffer) and fires
:class:`Alert` records when a threshold predicate flips.  The stream is
consumed by a :class:`~repro.runtime.pipeline.StreamPipeline` whose
checkpoint callback does the evaluation.

The synopsis is what makes this cheap: k standing queries cost
``O(k * B)`` per checkpoint regardless of the window length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.fixed_window import FixedWindowHistogramBuilder
from ..runtime import StreamPipeline, make_maintainer
from .queries import RangeQuery

__all__ = ["StandingQuery", "Alert", "ContinuousQueryEngine"]


@dataclass(frozen=True)
class StandingQuery:
    """A registered window query with an optional alert predicate.

    ``start``/``end`` address window-relative positions (0 = oldest
    buffered point); ``aggregate`` is ``"sum"`` or ``"avg"``.  When
    ``threshold`` is set, an alert fires whenever the answer's relation
    to the threshold (``above=True`` means ``answer > threshold``)
    becomes true after being false -- edge-triggered, not level-triggered.
    """

    name: str
    start: int
    end: int
    aggregate: str = "sum"
    threshold: float | None = None
    above: bool = True

    def __post_init__(self) -> None:
        RangeQuery(self.start, self.end, self.aggregate)  # validates

    def to_query(self) -> RangeQuery:
        return RangeQuery(self.start, self.end, self.aggregate)

    def breaches(self, answer: float) -> bool:
        if self.threshold is None:
            return False
        return answer > self.threshold if self.above else answer < self.threshold


@dataclass(frozen=True)
class Alert:
    """One edge-triggered threshold crossing."""

    query_name: str
    position: int
    answer: float
    threshold: float


@dataclass
class _QueryState:
    query: StandingQuery
    breached: bool = False
    last_answer: float | None = None
    answers: list[tuple[int, float]] = field(default_factory=list)


class ContinuousQueryEngine:
    """Standing queries over a fixed-window histogram synopsis.

    Parameters mirror the builder; ``check_every`` sets the checkpoint
    cadence in arrivals and ``keep_history`` bounds the per-query answer
    log (0 disables logging).
    """

    def __init__(
        self,
        window_size: int,
        num_buckets: int = 16,
        epsilon: float = 0.1,
        check_every: int = 1,
        keep_history: int = 256,
        on_alert: Callable[[Alert], None] | None = None,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if keep_history < 0:
            raise ValueError("keep_history must be non-negative")
        self.window_size = window_size
        self.check_every = check_every
        self.keep_history = keep_history
        self.on_alert = on_alert
        self._maintainer = make_maintainer(
            "fixed_window",
            window_size=window_size,
            num_buckets=num_buckets,
            epsilon=epsilon,
        )
        self._pipeline = StreamPipeline(
            [self._maintainer],
            maintain_every=None,  # the lazy builder rebuilds at checkpoints
            checkpoint_every=check_every,
            warmup=window_size,
            on_checkpoint=self._checkpoint,
        )
        self._states: dict[str, _QueryState] = {}
        self.alerts: list[Alert] = []
        self._fired_now: list[Alert] = []

    @property
    def builder(self) -> FixedWindowHistogramBuilder:
        return self._maintainer.builder

    def register(self, query: StandingQuery) -> None:
        """Add a standing query (names must be unique)."""
        if query.name in self._states:
            raise ValueError(f"a query named {query.name!r} is already registered")
        if query.end >= self.window_size:
            raise ValueError(
                f"query range [{query.start}, {query.end}] exceeds the window "
                f"(length {self.window_size})"
            )
        self._states[query.name] = _QueryState(query)

    def deregister(self, name: str) -> None:
        if name not in self._states:
            raise KeyError(f"no query named {name!r}")
        del self._states[name]

    @property
    def query_names(self) -> list[str]:
        return list(self._states)

    def answers(self, name: str) -> list[tuple[int, float]]:
        """The (position, answer) history of one query."""
        if name not in self._states:
            raise KeyError(f"no query named {name!r}")
        return list(self._states[name].answers)

    def last_answer(self, name: str) -> float | None:
        if name not in self._states:
            raise KeyError(f"no query named {name!r}")
        return self._states[name].last_answer

    def _checkpoint(self, position: int, pipeline: StreamPipeline) -> None:
        histogram = self._maintainer.synopsis()
        for state in self._states.values():
            answer = state.query.to_query().answer(histogram)
            state.last_answer = answer
            if self.keep_history:
                state.answers.append((position, answer))
                if len(state.answers) > self.keep_history:
                    state.answers.pop(0)
            breached = state.query.breaches(answer)
            if breached and not state.breached:
                alert = Alert(
                    state.query.name, position, answer, state.query.threshold
                )
                self._fired_now.append(alert)
                self.alerts.append(alert)
                if self.on_alert is not None:
                    self.on_alert(alert)
            state.breached = breached

    def update(self, value: float) -> list[Alert]:
        """Consume one point; return alerts fired at this checkpoint."""
        self._fired_now = []
        self._pipeline.append(value)
        return self._fired_now

    def run(self, stream) -> list[Alert]:
        """Consume a whole stream (batched); return every alert fired."""
        self._fired_now = []
        self._pipeline.run(stream)
        return list(self.alerts)
