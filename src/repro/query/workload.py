"""Random query workloads.

Paper section 5.1: "the starting points as well as the span of the queries
(size of the requested aggregation range) is chosen uniformly and
independently."  :class:`RandomRangeWorkload` reproduces exactly that
sampling scheme; the generator is seeded so experiment runs are
repeatable.
"""

from __future__ import annotations

import numpy as np

from .queries import PointQuery, RangeQuery

__all__ = ["RandomRangeWorkload", "RandomPointWorkload", "position_weights"]


def position_weights(queries, length: int, floor: float = 1.0) -> np.ndarray:
    """Per-position access frequencies of a query workload.

    Counts how many queries touch each position (plus ``floor`` so every
    weight stays positive); feed the result to
    :class:`repro.core.errors.WeightedSSEMetric` to build a
    *workload-aware* V-optimal histogram whose accuracy concentrates
    where the workload actually lands.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if floor <= 0:
        raise ValueError("floor must be positive (weights must stay positive)")
    weights = np.full(length, floor, dtype=np.float64)
    for query in queries:
        if isinstance(query, PointQuery):
            if query.position < length:
                weights[query.position] += 1.0
            continue
        start = min(query.start, length - 1)
        end = min(query.end, length - 1)
        weights[start : end + 1] += 1.0
    return weights


class RandomRangeWorkload:
    """Uniform random range-aggregation queries over a window of length n."""

    def __init__(
        self,
        window_length: int,
        aggregate: str = "sum",
        min_span: int = 1,
        seed: int = 0,
    ) -> None:
        if window_length < 1:
            raise ValueError("window_length must be >= 1")
        if not (1 <= min_span <= window_length):
            raise ValueError("min_span must be in [1, window_length]")
        self.window_length = window_length
        self.aggregate = aggregate
        self.min_span = min_span
        self._rng = np.random.default_rng(seed)

    def sample(self, count: int) -> list[RangeQuery]:
        """Draw ``count`` queries: start uniform, span uniform, clipped."""
        if count < 0:
            raise ValueError("count must be non-negative")
        queries = []
        for _ in range(count):
            start = int(self._rng.integers(self.window_length))
            span = int(self._rng.integers(self.min_span, self.window_length + 1))
            end = min(start + span - 1, self.window_length - 1)
            queries.append(RangeQuery(start, end, self.aggregate))
        return queries


class RandomPointWorkload:
    """Uniform random point queries over a window of length n."""

    def __init__(self, window_length: int, seed: int = 0) -> None:
        if window_length < 1:
            raise ValueError("window_length must be >= 1")
        self.window_length = window_length
        self._rng = np.random.default_rng(seed)

    def sample(self, count: int) -> list[PointQuery]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [
            PointQuery(int(self._rng.integers(self.window_length)))
            for _ in range(count)
        ]
