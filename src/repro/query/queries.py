"""Query model for approximate stream querying (paper section 5.1).

The evaluation poses *range aggregation* queries against the sliding
window -- "the aggregate number of bytes over network interfaces for time
windows of interest".  A query addresses window-relative positions
(0 = oldest buffered point); synopses and the exact buffer answer the same
query objects so accuracy is directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "RangeQuery",
    "PointQuery",
    "Synopsis",
    "evaluate_exact",
    "synopsis_quantile",
]


class Synopsis(Protocol):
    """Anything that answers point and range-sum queries over positions."""

    def point_estimate(self, position: int) -> float: ...

    def range_sum(self, i: int, j: int) -> float: ...


@dataclass(frozen=True)
class RangeQuery:
    """Aggregate over window positions ``[start, end]`` inclusive."""

    start: int
    end: int
    aggregate: str = "sum"  # "sum" or "avg"

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid query range [{self.start}, {self.end}]")
        if self.aggregate not in ("sum", "avg"):
            raise ValueError(f"unsupported aggregate {self.aggregate!r}")

    @property
    def span(self) -> int:
        return self.end - self.start + 1

    def answer(self, synopsis: Synopsis) -> float:
        total = synopsis.range_sum(self.start, self.end)
        return total / self.span if self.aggregate == "avg" else total


@dataclass(frozen=True)
class PointQuery:
    """The value at one window position."""

    position: int

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError(f"invalid query position {self.position}")

    def answer(self, synopsis: Synopsis) -> float:
        return synopsis.point_estimate(self.position)


class _ExactSynopsis:
    """Adapter answering queries directly from a value array."""

    def __init__(self, values) -> None:
        self._values = np.asarray(values, dtype=np.float64)
        self._cumulative = np.concatenate(([0.0], np.cumsum(self._values)))

    def point_estimate(self, position: int) -> float:
        return float(self._values[position])

    def range_sum(self, i: int, j: int) -> float:
        if not (0 <= i <= j < self._values.size):
            raise ValueError(f"range [{i}, {j}] out of bounds")
        return float(self._cumulative[j + 1] - self._cumulative[i])


def evaluate_exact(query: RangeQuery | PointQuery, values) -> float:
    """Ground-truth answer of a query against raw values."""
    return query.answer(_ExactSynopsis(values))


def synopsis_quantile(synopsis, fraction: float) -> float:
    """Approximate quantile of the values a synopsis summarizes.

    Dispatches on the synopsis's own vocabulary: GK summaries answer rank
    queries natively (``query``), reservoirs estimate from the sample
    (``estimate_quantile``), histograms read the quantile off their
    buckets (``quantile``); anything else that can reconstruct its
    sequence (``to_array``) falls back to the empirical quantile of the
    reconstruction.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    for verb in ("query", "estimate_quantile", "quantile"):
        answer = getattr(synopsis, verb, None)
        if answer is not None:
            return float(answer(fraction))
    reconstruct = getattr(synopsis, "to_array", None)
    if reconstruct is not None:
        return float(np.quantile(reconstruct(), fraction))
    raise TypeError(
        f"{type(synopsis).__name__} answers neither rank nor value queries"
    )
