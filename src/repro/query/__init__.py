"""Approximate query processing over streams (paper section 5.1)."""

from .accuracy import QueryAccuracy, measure_accuracy
from .continuous import Alert, ContinuousQueryEngine, StandingQuery
from .engine import (
    EngineReport,
    ExactMaintainer,
    HistogramMaintainer,
    StreamQueryEngine,
    SynopsisMaintainer,
    WaveletMaintainer,
)
from .queries import (
    PointQuery,
    RangeQuery,
    Synopsis,
    evaluate_exact,
    synopsis_quantile,
)
from .workload import RandomPointWorkload, RandomRangeWorkload, position_weights

__all__ = [
    "Alert",
    "ContinuousQueryEngine",
    "EngineReport",
    "ExactMaintainer",
    "HistogramMaintainer",
    "PointQuery",
    "QueryAccuracy",
    "RandomPointWorkload",
    "RandomRangeWorkload",
    "RangeQuery",
    "StandingQuery",
    "StreamQueryEngine",
    "Synopsis",
    "SynopsisMaintainer",
    "WaveletMaintainer",
    "evaluate_exact",
    "measure_accuracy",
    "position_weights",
    "synopsis_quantile",
]
