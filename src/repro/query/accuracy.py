"""Accuracy metrics for approximate query answers.

Paper section 5.1 reports "the average result obtained by performing
random queries" -- the mean absolute deviation between approximate and
exact answers over a random workload.  This module computes that figure
plus companions (relative error, RMS) used by the extended analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .queries import PointQuery, RangeQuery, Synopsis, evaluate_exact

__all__ = ["QueryAccuracy", "measure_accuracy"]


@dataclass(frozen=True)
class QueryAccuracy:
    """Aggregate error statistics of a synopsis over a query workload."""

    count: int
    mean_absolute_error: float
    mean_relative_error: float
    root_mean_squared_error: float
    max_absolute_error: float

    def __str__(self) -> str:
        return (
            f"{self.count} queries | avg abs {self.mean_absolute_error:.3f} | "
            f"avg rel {self.mean_relative_error:.4f} | "
            f"rms {self.root_mean_squared_error:.3f} | "
            f"max abs {self.max_absolute_error:.3f}"
        )


def measure_accuracy(
    synopsis: Synopsis,
    values,
    queries: Sequence[RangeQuery | PointQuery],
    relative_floor: float = 1.0,
) -> QueryAccuracy:
    """Errors of ``synopsis`` against ground truth on ``queries``.

    ``relative_floor`` guards relative error against near-zero exact
    answers (a standard sanity bound for selectivity-style metrics).
    """
    if not queries:
        raise ValueError("need at least one query")
    absolute = np.empty(len(queries))
    relative = np.empty(len(queries))
    for i, query in enumerate(queries):
        exact = evaluate_exact(query, values)
        approx = query.answer(synopsis)
        absolute[i] = abs(approx - exact)
        relative[i] = absolute[i] / max(abs(exact), relative_floor)
    return QueryAccuracy(
        count=len(queries),
        mean_absolute_error=float(absolute.mean()),
        mean_relative_error=float(relative.mean()),
        root_mean_squared_error=float(np.sqrt(np.mean(absolute**2))),
        max_absolute_error=float(absolute.max()),
    )
