"""Streaming approximate-query engine (the paper's section 5.1 setting).

The engine's maintainers are :mod:`repro.runtime` adapters -- three cover
the compared methods of Figure 6:

* :class:`HistogramMaintainer` -- the paper's fixed-window histogram,
  maintained incrementally.
* :class:`WaveletMaintainer` -- a top-B Haar synopsis recomputed from the
  raw buffer (the paper recomputes it "from scratch every time a new
  point enters and the temporally oldest point leaves the buffer").
* :class:`ExactMaintainer` -- the raw buffer itself (zero error,
  reference answers).

:class:`StreamQueryEngine` measures query accuracy at a configurable
cadence; the driving loop itself is
:class:`~repro.runtime.pipeline.StreamPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

from ..runtime import (
    BufferSynopsis,
    ExactBufferMaintainer,
    FixedWindowMaintainer,
    StreamPipeline,
    WaveletWindowMaintainer,
)
from .accuracy import QueryAccuracy, measure_accuracy
from .queries import Synopsis
from .workload import RandomRangeWorkload

__all__ = [
    "SynopsisMaintainer",
    "HistogramMaintainer",
    "WaveletMaintainer",
    "ExactMaintainer",
    "EngineReport",
    "StreamQueryEngine",
]

# Back-compat alias: the engine's buffer synopsis now lives in the runtime
# layer.
_BufferSynopsis = BufferSynopsis


class SynopsisMaintainer(Protocol):
    """Incrementally maintained synopsis of a sliding window.

    The runtime :class:`~repro.runtime.maintainer.Maintainer` ABC
    satisfies this protocol; it is kept for structural typing of
    third-party maintainers passed to :class:`StreamQueryEngine`.
    """

    name: str

    def append(self, value: float) -> None: ...

    def extend(self, values) -> None: ...

    def maintain(self) -> None: ...

    def synopsis(self) -> Synopsis: ...

    def window_values(self): ...


class HistogramMaintainer(FixedWindowMaintainer):
    """Fixed-window epsilon-approximate V-optimal histogram maintainer."""

    def __init__(self, window_size: int, num_buckets: int, epsilon: float) -> None:
        super().__init__(
            window_size,
            num_buckets,
            epsilon,
            name=f"histogram(B={num_buckets}, eps={epsilon:g})",
        )


class WaveletMaintainer(WaveletWindowMaintainer):
    """Top-B wavelet synopsis recomputed from the buffered window."""

    def __init__(self, window_size: int, budget: int) -> None:
        super().__init__(window_size, budget, name=f"wavelet(B={budget})")


class ExactMaintainer(ExactBufferMaintainer):
    """The raw sliding buffer, answering queries exactly."""

    def __init__(self, window_size: int) -> None:
        super().__init__(window_size, name="exact")


@dataclass
class EngineReport:
    """Per-maintainer outcome of one engine run."""

    name: str
    maintenance_seconds: float
    evaluations: list[QueryAccuracy] = field(default_factory=list)

    @property
    def mean_absolute_error(self) -> float:
        if not self.evaluations:
            raise ValueError("no evaluations recorded")
        return sum(e.mean_absolute_error for e in self.evaluations) / len(
            self.evaluations
        )

    @property
    def mean_relative_error(self) -> float:
        if not self.evaluations:
            raise ValueError("no evaluations recorded")
        return sum(e.mean_relative_error for e in self.evaluations) / len(
            self.evaluations
        )


class StreamQueryEngine:
    """Drive synopsis maintainers over a stream, measuring accuracy and time.

    ``maintain_every`` controls how often each maintainer's synopsis is
    brought up to date (1 = after every arrival, the paper's model);
    ``evaluate_every`` controls how often a fresh random workload of
    ``queries_per_evaluation`` range-sum queries is scored against the
    exact window.  Evaluation only starts once the window is full.

    The stream is consumed by a :class:`StreamPipeline`: batches are
    split at maintenance/evaluation boundaries and fed through each
    maintainer's vectorized ``extend``, so cadence semantics match the
    per-point loop exactly while ingestion amortizes across batches.
    """

    def __init__(
        self,
        window_size: int,
        maintain_every: int = 1,
        evaluate_every: int = 64,
        queries_per_evaluation: int = 32,
        aggregate: str = "sum",
        seed: int = 0,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if maintain_every < 1 or evaluate_every < 1:
            raise ValueError("cadences must be >= 1")
        self.window_size = window_size
        self.maintain_every = maintain_every
        self.evaluate_every = evaluate_every
        self.queries_per_evaluation = queries_per_evaluation
        self.aggregate = aggregate
        self.seed = seed

    def run(
        self, stream: Iterable[float], maintainers: list[SynopsisMaintainer]
    ) -> list[EngineReport]:
        workload = RandomRangeWorkload(
            self.window_size, aggregate=self.aggregate, seed=self.seed
        )
        reports = [EngineReport(m.name, 0.0) for m in maintainers]

        def evaluate(arrivals: int, pipeline: StreamPipeline) -> None:
            queries = workload.sample(self.queries_per_evaluation)
            for maintainer, report in zip(maintainers, reports):
                truth = maintainer.window_values()
                report.evaluations.append(
                    measure_accuracy(maintainer.synopsis(), truth, queries)
                )

        pipeline = StreamPipeline(
            maintainers,
            maintain_every=self.maintain_every,
            checkpoint_every=self.evaluate_every,
            warmup=self.window_size,
            on_checkpoint=evaluate,
        )
        for pipeline_report, report in zip(pipeline.run(stream), reports):
            report.maintenance_seconds = pipeline_report.maintenance_seconds
        return reports
