"""Streaming approximate-query engine (the paper's section 5.1 setting).

A :class:`SynopsisMaintainer` consumes stream points and can produce, at
any time, a synopsis of the last ``window_size`` points.  Three
maintainers cover the compared methods of Figure 6:

* :class:`HistogramMaintainer` -- the paper's fixed-window histogram,
  maintained incrementally.
* :class:`WaveletMaintainer` -- a top-B Haar synopsis recomputed from the
  raw buffer (the paper recomputes it "from scratch every time a new
  point enters and the temporally oldest point leaves the buffer").
* :class:`ExactMaintainer` -- the raw buffer itself (zero error,
  reference answers).

:class:`StreamQueryEngine` drives maintainers over a stream and measures
query accuracy at a configurable cadence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Protocol

import numpy as np

from ..core.fixed_window import FixedWindowHistogramBuilder
from ..streams.window import SlidingWindow
from ..wavelets.synopsis import WaveletSynopsis
from .accuracy import QueryAccuracy, measure_accuracy
from .queries import Synopsis
from .workload import RandomRangeWorkload

__all__ = [
    "SynopsisMaintainer",
    "HistogramMaintainer",
    "WaveletMaintainer",
    "ExactMaintainer",
    "EngineReport",
    "StreamQueryEngine",
]


class SynopsisMaintainer(Protocol):
    """Incrementally maintained synopsis of a sliding window."""

    name: str

    def append(self, value: float) -> None: ...

    def synopsis(self) -> Synopsis: ...

    def window_values(self): ...


class HistogramMaintainer:
    """Fixed-window epsilon-approximate V-optimal histogram maintainer."""

    def __init__(self, window_size: int, num_buckets: int, epsilon: float) -> None:
        self.name = f"histogram(B={num_buckets}, eps={epsilon:g})"
        self._builder = FixedWindowHistogramBuilder(window_size, num_buckets, epsilon)

    @property
    def builder(self) -> FixedWindowHistogramBuilder:
        return self._builder

    def append(self, value: float) -> None:
        self._builder.append(value)

    def maintain(self) -> None:
        """Force the per-arrival rebuild (paper-faithful maintenance)."""
        self._builder.update()

    def synopsis(self) -> Synopsis:
        return self._builder.histogram()

    def window_values(self):
        return self._builder.window_values()


class WaveletMaintainer:
    """Top-B wavelet synopsis recomputed from the buffered window."""

    def __init__(self, window_size: int, budget: int) -> None:
        self.name = f"wavelet(B={budget})"
        self.budget = budget
        self._window = SlidingWindow(window_size)

    def append(self, value: float) -> None:
        self._window.append(value)

    def maintain(self) -> None:
        """Per-slide recomputation, as the paper's baseline does."""
        self.synopsis()

    def synopsis(self) -> Synopsis:
        return WaveletSynopsis.from_values(self._window.values(), self.budget)

    def window_values(self):
        return self._window.values()


class ExactMaintainer:
    """The raw sliding buffer, answering queries exactly."""

    def __init__(self, window_size: int) -> None:
        self.name = "exact"
        self._window = SlidingWindow(window_size)

    def append(self, value: float) -> None:
        self._window.append(value)

    def maintain(self) -> None:
        return None

    def synopsis(self) -> Synopsis:
        return _BufferSynopsis(self._window.values())

    def window_values(self):
        return self._window.values()


class _BufferSynopsis:
    def __init__(self, values) -> None:
        self._values = np.asarray(values, dtype=np.float64)
        self._cumulative = np.concatenate(([0.0], np.cumsum(self._values)))

    def point_estimate(self, position: int) -> float:
        return float(self._values[position])

    def range_sum(self, i: int, j: int) -> float:
        return float(self._cumulative[j + 1] - self._cumulative[i])


@dataclass
class EngineReport:
    """Per-maintainer outcome of one engine run."""

    name: str
    maintenance_seconds: float
    evaluations: list[QueryAccuracy] = field(default_factory=list)

    @property
    def mean_absolute_error(self) -> float:
        if not self.evaluations:
            raise ValueError("no evaluations recorded")
        return sum(e.mean_absolute_error for e in self.evaluations) / len(
            self.evaluations
        )

    @property
    def mean_relative_error(self) -> float:
        if not self.evaluations:
            raise ValueError("no evaluations recorded")
        return sum(e.mean_relative_error for e in self.evaluations) / len(
            self.evaluations
        )


class StreamQueryEngine:
    """Drive synopsis maintainers over a stream, measuring accuracy and time.

    ``maintain_every`` controls how often each maintainer's synopsis is
    brought up to date (1 = after every arrival, the paper's model);
    ``evaluate_every`` controls how often a fresh random workload of
    ``queries_per_evaluation`` range-sum queries is scored against the
    exact window.  Evaluation only starts once the window is full.
    """

    def __init__(
        self,
        window_size: int,
        maintain_every: int = 1,
        evaluate_every: int = 64,
        queries_per_evaluation: int = 32,
        aggregate: str = "sum",
        seed: int = 0,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if maintain_every < 1 or evaluate_every < 1:
            raise ValueError("cadences must be >= 1")
        self.window_size = window_size
        self.maintain_every = maintain_every
        self.evaluate_every = evaluate_every
        self.queries_per_evaluation = queries_per_evaluation
        self.aggregate = aggregate
        self.seed = seed

    def run(
        self, stream: Iterable[float], maintainers: list[SynopsisMaintainer]
    ) -> list[EngineReport]:
        workload = RandomRangeWorkload(
            self.window_size, aggregate=self.aggregate, seed=self.seed
        )
        reports = [EngineReport(m.name, 0.0) for m in maintainers]
        arrivals = 0
        for value in stream:
            arrivals += 1
            for maintainer, report in zip(maintainers, reports):
                started = time.perf_counter()
                maintainer.append(value)
                if arrivals % self.maintain_every == 0:
                    maintainer.maintain()
                report.maintenance_seconds += time.perf_counter() - started

            full = arrivals >= self.window_size
            if full and arrivals % self.evaluate_every == 0:
                queries = workload.sample(self.queries_per_evaluation)
                for maintainer, report in zip(maintainers, reports):
                    truth = maintainer.window_values()
                    report.evaluations.append(
                        measure_accuracy(maintainer.synopsis(), truth, queries)
                    )
        return reports
