"""Multi-tenant QoS: admission control and the graceful-degradation ladder.

The serving tiers host streams for many *tenants* with different
*priorities*; under overload the right behavior is not binary
(block/reject/drop) but graded -- shed where it costs least, and account
every shed point so reported accuracy stays honest.  This module is
that policy layer, shared by :class:`~repro.service.service.
StreamService` and :class:`~repro.shard.router.ShardRouter`:

* **Admission control** -- each tenant owns a token bucket
  (:class:`TenantQuota`: ``rate`` points/second refill, ``burst``
  capacity).  A batch that does not fit raises
  :class:`QuotaExceededError` carrying ``retry_after`` seconds, so
  producers can back off instead of spinning.  An oversize batch
  (larger than ``burst``) is admitted against a *full* bucket, the same
  always-make-progress rule the worker queue applies to oversize
  batches.
* **Priority classes** -- ``priority`` is a small integer, ``0`` the
  most critical.  Streams at or above ``shed_priority_floor`` are
  *sheddable*: they are throttled and shed first; streams below the
  floor are only ever refused by their own tenant quota.
* **The degradation ladder** -- four levels driven by queue-fill and
  enqueue-latency signals from the owning tier::

      healthy -> throttle -> shed -> stale_serve

  ``throttle`` clamps sheddable admissions to a fraction of their
  quota (token cost is inflated by ``1/throttle_factor``).  ``shed``
  drops a deterministic, seeded sample of sheddable ingest
  (``shed_fraction``); every shed point is counted and reported to the
  stream's :class:`~repro.obs.accuracy.AccuracyMonitor` so the
  observed epsilon widens honestly instead of silently narrowing over
  a thinned stream.  ``stale_serve`` sheds *all* sheddable ingest and
  the owning service marks their served views stale -- queries answer
  from the last :class:`~repro.service.queries.MaterializedView`.

  Escalation is immediate; demotion is hysteretic: the fill signal
  must sit below the current level for ``cooldown`` consecutive
  evaluations, stepping down one level at a time, and stepping out of
  ``stale_serve`` additionally requires the drained-check (the tier
  wires ``caught_up()`` here) so a still-replaying backlog cannot flap
  the ladder.  The latency signal only escalates -- it is a bounded
  reservoir of *recent* observations that does not decay in quiet
  periods, so queue fill is the live signal on the way down (see
  ``docs/DESIGN.md``).

Shedding is position-deterministic: point ``i`` of a stream's offered
sequence is shed iff ``frac((i+1) * phi + phase) < fraction`` (a golden
-ratio Weyl sequence, ``phase`` seeded per stream), so the same
schedule over the same traffic sheds the same points -- chaos runs stay
reproducible, exactly like :class:`~repro.service.faults.FaultInjector`
schedules.

Every decision lands on the registry:
``repro_qos_admitted_total`` / ``repro_qos_shed_total`` /
``repro_qos_throttled_total`` (points, labeled ``tenant`` and
``priority``) and the ``repro_qos_degradation_level`` gauge (0..3).
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import MetricsRegistry

__all__ = [
    "DEGRADATION_LEVELS",
    "QoSConfig",
    "QoSController",
    "QuotaExceededError",
    "TenantQuota",
]

#: Ladder levels, index == severity.
DEGRADATION_LEVELS = ("healthy", "throttle", "shed", "stale_serve")

LEVEL_HEALTHY = 0
LEVEL_THROTTLE = 1
LEVEL_SHED = 2
LEVEL_STALE = 3

ADMITTED_METRIC = "repro_qos_admitted_total"
SHED_METRIC = "repro_qos_shed_total"
THROTTLED_METRIC = "repro_qos_throttled_total"
LEVEL_METRIC = "repro_qos_degradation_level"
TRANSITIONS_METRIC = "repro_qos_transitions_total"

#: Fractional part of the golden ratio -- the Weyl-sequence increment.
_GOLDEN = 0.6180339887498949

#: retry_after reported when a sheddable stream is refused by the ladder
#: itself (no token arithmetic to derive a horizon from).
_LADDER_RETRY_AFTER = 1.0


class QuotaExceededError(RuntimeError):
    """Admission control refused the batch; retry after ``retry_after`` s.

    Raised by :meth:`QoSController.admit` when the tenant's token
    bucket cannot cover the batch, and by the dead-letter retry path
    when a sheddable stream tries to re-feed quarantined records while
    the ladder is at ``shed`` or above.  Carries ``tenant``, ``stream``
    and ``retry_after`` (seconds until the bucket can fit the batch).
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float,
        tenant: str,
        stream: str | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.tenant = tenant
        self.stream = stream


@dataclass(frozen=True)
class TenantQuota:
    """Token-bucket ingest quota of one tenant (points/s + burst)."""

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("quota rate must be > 0 points/second")
        if self.burst < 1:
            raise ValueError("quota burst must be >= 1 point")

    def to_dict(self) -> dict:
        return {"rate": self.rate, "burst": self.burst}

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantQuota":
        extra = sorted(set(payload) - {"rate", "burst"})
        if extra:
            raise ValueError(f"unknown quota keys: {', '.join(extra)}")
        if "rate" not in payload or "burst" not in payload:
            raise ValueError("a quota needs both 'rate' and 'burst'")
        return cls(rate=float(payload["rate"]), burst=float(payload["burst"]))


class _TokenBucket:
    """One tenant's bucket; all methods run under the controller lock."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, quota: TenantQuota, now: float) -> None:
        self.rate = float(quota.rate)
        self.burst = float(quota.burst)
        self.tokens = self.burst
        self.stamp = now

    def try_take(self, cost: float, now: float) -> float:
        """Take ``cost`` tokens; returns 0.0 or the retry-after in seconds.

        An oversize cost (> burst) is admitted against a full bucket --
        the bucket just drains to zero -- mirroring the worker queue's
        oversize-batch rule so a single huge batch can always progress.
        """
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        need = min(cost, self.burst)
        if self.tokens >= need:
            self.tokens = max(0.0, self.tokens - cost)
            return 0.0
        return (need - self.tokens) / self.rate


@dataclass(frozen=True)
class QoSConfig:
    """Declarative QoS policy: tenant quotas plus ladder thresholds.

    ``tenants`` maps tenant names to :class:`TenantQuota`;
    ``default_quota`` covers tenants without an entry (``None`` leaves
    them unmetered -- admitted, but still counted and sheddable).
    ``*_fill`` thresholds are queue-fill fractions (0..1) and
    ``*_latency`` are p99 enqueue-latency seconds; crossing either
    escalates to that level.  ``shed_fraction`` is the deterministic
    sample dropped at ``shed``; ``throttle_factor`` scales sheddable
    tenants' effective rate at ``throttle`` and above; ``cooldown`` is
    the consecutive calm evaluations required per demotion step;
    ``evaluate_every`` is the admission-count cadence of ladder
    evaluation.
    """

    tenants: tuple[tuple[str, TenantQuota], ...] = field(default_factory=tuple)
    default_quota: TenantQuota | None = None
    shed_priority_floor: int = 1
    shed_fraction: float = 0.5
    throttle_factor: float = 0.5
    throttle_fill: float = 0.5
    shed_fill: float = 0.75
    stale_fill: float = 0.95
    throttle_latency: float = 0.05
    shed_latency: float = 0.25
    stale_latency: float = 1.0
    cooldown: int = 2
    evaluate_every: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        names = [name for name, _ in self.tenants]
        if len(names) != len(set(names)):
            raise ValueError("duplicate tenant names in qos config")
        if self.shed_priority_floor < 0:
            raise ValueError("shed_priority_floor must be >= 0")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in (0, 1]")
        if not 0.0 < self.throttle_factor <= 1.0:
            raise ValueError("throttle_factor must be in (0, 1]")
        if not 0.0 < self.throttle_fill <= self.shed_fill <= self.stale_fill:
            raise ValueError(
                "fill thresholds must satisfy "
                "0 < throttle_fill <= shed_fill <= stale_fill"
            )
        if not 0.0 < self.throttle_latency <= self.shed_latency <= self.stale_latency:
            raise ValueError(
                "latency thresholds must satisfy "
                "0 < throttle_latency <= shed_latency <= stale_latency"
            )
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if self.evaluate_every < 1:
            raise ValueError("evaluate_every must be >= 1")

    def quota_for(self, tenant: str) -> TenantQuota | None:
        for name, quota in self.tenants:
            if name == tenant:
                return quota
        return self.default_quota

    def to_dict(self) -> dict:
        return {
            "tenants": {name: quota.to_dict() for name, quota in self.tenants},
            "default": (
                self.default_quota.to_dict() if self.default_quota else None
            ),
            "shed_priority_floor": self.shed_priority_floor,
            "shed_fraction": self.shed_fraction,
            "throttle_factor": self.throttle_factor,
            "throttle_fill": self.throttle_fill,
            "shed_fill": self.shed_fill,
            "stale_fill": self.stale_fill,
            "throttle_latency": self.throttle_latency,
            "shed_latency": self.shed_latency,
            "stale_latency": self.stale_latency,
            "cooldown": self.cooldown,
            "evaluate_every": self.evaluate_every,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QoSConfig":
        known = {
            "tenants",
            "default",
            "shed_priority_floor",
            "shed_fraction",
            "throttle_factor",
            "throttle_fill",
            "shed_fill",
            "stale_fill",
            "throttle_latency",
            "shed_latency",
            "stale_latency",
            "cooldown",
            "evaluate_every",
            "seed",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown qos keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        tenants = tuple(
            (name, TenantQuota.from_dict(quota))
            for name, quota in payload.get("tenants", {}).items()
        )
        default = payload.get("default")
        kwargs = {
            key: payload[key]
            for key in known - {"tenants", "default"}
            if key in payload
        }
        return cls(
            tenants=tenants,
            default_quota=(
                TenantQuota.from_dict(default) if default is not None else None
            ),
            **kwargs,
        )


@dataclass
class _StreamRecord:
    tenant: str
    priority: int
    shed_offset: int = 0
    shed_points: int = 0


class QoSController:
    """Runtime enforcement of a :class:`QoSConfig` for one service tier.

    The owning tier registers its streams (tenant + priority), wires a
    ``signal_source`` (queue fill + p99 enqueue latency) and a
    ``drained`` check (the ``caught_up()`` hysteresis used to step out
    of ``stale_serve``), and calls :meth:`admit` on every ingest.
    ``clock`` is injectable for deterministic tests; ``force_level``
    pins the ladder for tests and operational overrides.
    """

    def __init__(
        self,
        config: QoSConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else QoSConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._lock = threading.Lock()
        # note_shed() must stay off the main lock: it is called from
        # worker threads holding their queue condition (drop_oldest
        # evictions) while evaluate() may hold the main lock and call
        # back into those workers for signals.
        self._count_lock = threading.Lock()
        self._streams: dict[str, _StreamRecord] = {}
        self._buckets: dict[str, _TokenBucket] = {}
        self._level = LEVEL_HEALTHY
        self._forced: int | None = None
        self._cool = 0
        # The latency reservoir holds *recent* observations and does
        # not decay while traffic is quiet; once fill has been calm for
        # a full cooldown we mute ("disarm") the latency signal so the
        # stale reservoir cannot re-escalate every demotion step.  It
        # re-arms as soon as latency reads healthy again.
        self._lat_armed = True
        self._admissions = 0
        self._signal_source = None
        self._drained = None
        self._admitted_points = 0
        self._shed_points = 0
        self._throttled_points = 0
        self._level_gauge = self.registry.gauge(LEVEL_METRIC)
        self._level_gauge.set(LEVEL_HEALTHY)

    # ------------------------------------------------------------------
    # Wiring (owning tier)
    # ------------------------------------------------------------------

    def set_signal_source(self, source) -> None:
        """``source()`` -> ``{"queue_fill": 0..1, "p99_latency": s}``."""
        self._signal_source = source

    def set_drained(self, drained) -> None:
        """``drained()`` gates the ``stale_serve`` -> ``shed`` demotion."""
        self._drained = drained

    def register_stream(self, name: str, tenant: str, priority: int) -> None:
        if not tenant or not isinstance(tenant, str):
            raise ValueError("tenant must be a non-empty string")
        if priority < 0:
            raise ValueError("priority must be >= 0 (0 is most critical)")
        with self._lock:
            self._streams[name] = _StreamRecord(tenant, int(priority))

    def forget_stream(self, name: str) -> None:
        with self._lock:
            self._streams.pop(name, None)

    # ------------------------------------------------------------------
    # Ladder
    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        return self._level

    def level_name(self) -> str:
        return DEGRADATION_LEVELS[self._level]

    def force_level(self, level: int | str | None) -> None:
        """Pin the ladder (int, name, or None to release the pin)."""
        if isinstance(level, str):
            level = DEGRADATION_LEVELS.index(level)
        with self._lock:
            self._forced = level
            if level is not None:
                self._set_level(level)
                self._cool = 0

    def sheddable(self, name: str) -> bool:
        """Is the stream's priority at or above the shed floor?"""
        with self._lock:
            record = self._streams.get(name)
            if record is None:
                return False
            return record.priority >= self.config.shed_priority_floor

    def serving_stale(self, name: str) -> bool:
        """Should the owning tier serve this stream's view marked stale?"""
        return self._level >= LEVEL_STALE and self.sheddable(name)

    def _fill_level(self, fill: float) -> int:
        if fill >= self.config.stale_fill:
            return LEVEL_STALE
        if fill >= self.config.shed_fill:
            return LEVEL_SHED
        if fill >= self.config.throttle_fill:
            return LEVEL_THROTTLE
        return LEVEL_HEALTHY

    def _latency_level(self, latency: float) -> int:
        if latency >= self.config.stale_latency:
            return LEVEL_STALE
        if latency >= self.config.shed_latency:
            return LEVEL_SHED
        if latency >= self.config.throttle_latency:
            return LEVEL_THROTTLE
        return LEVEL_HEALTHY

    def _set_level(self, level: int) -> None:
        # Caller holds self._lock.
        if level != self._level:
            self.registry.counter(
                TRANSITIONS_METRIC, level=DEGRADATION_LEVELS[level]
            ).inc()
            self._level = level
        self._level_gauge.set(level)

    def evaluate(self) -> int:
        """Re-read the signals and move the ladder; returns the level.

        Escalation follows the worst of both signals immediately;
        demotion is driven by queue fill alone, one level per
        ``cooldown`` consecutive calm evaluations, and leaving
        ``stale_serve`` additionally requires the drained check.  A
        latency reading that still justifies the level we are demoting
        *from* after a full calm cooldown is treated as a stale
        reservoir and muted until it reads healthy once (see the
        ``_lat_armed`` note in ``__init__`` and ``docs/DESIGN.md``).
        """
        # Signals and the drained check run OUTSIDE the controller lock:
        # both call back into the owning tier (worker queue state), and
        # those callbacks may themselves consult the controller.
        signals = self._signal_source() if self._signal_source else {}
        fill = float(signals.get("queue_fill", 0.0))
        latency = float(signals.get("p99_latency", 0.0))
        drained = self._drained() if self._drained is not None else True
        with self._lock:
            if self._forced is not None:
                self._set_level(self._forced)
                return self._level
            fill_level = self._fill_level(fill)
            lat_level = self._latency_level(latency)
            if lat_level == LEVEL_HEALTHY:
                self._lat_armed = True
            raw = max(
                fill_level, lat_level if self._lat_armed else LEVEL_HEALTHY
            )
            if raw > self._level:
                self._set_level(raw)
                self._cool = 0
            elif fill_level < self._level:
                self._cool += 1
                if self._cool >= self.config.cooldown:
                    if self._level == LEVEL_STALE and not drained:
                        return self._level
                    if self._lat_armed and lat_level >= self._level:
                        self._lat_armed = False
                    self._set_level(self._level - 1)
                    self._cool = 0
            else:
                self._cool = 0
            return self._level

    def _maybe_evaluate(self) -> None:
        with self._lock:
            self._admissions += 1
            due = self._admissions % self.config.evaluate_every == 0
        if due:
            self.evaluate()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _shed_phase(self, name: str) -> float:
        crc = zlib.crc32(name.encode("utf-8")) / 2**32
        return (crc + self.config.seed * _GOLDEN) % 1.0

    def _keep_mask(self, name: str, offset: int, size: int, fraction: float):
        positions = np.arange(offset + 1, offset + size + 1, dtype=np.float64)
        u = (positions * _GOLDEN + self._shed_phase(name)) % 1.0
        return u >= fraction

    def admit(self, name: str, batch) -> tuple[np.ndarray, int]:
        """Admit a batch for one stream: ``(kept_batch, shed_points)``.

        Applies the ladder (deterministic shedding of sheddable
        streams), then the tenant's token bucket on the kept points
        (with the throttle clamp inflating sheddable cost).  Raises
        :class:`QuotaExceededError` when the bucket refuses; nothing is
        counted or sampled on refusal, so a retried batch sheds the
        same positions.
        """
        batch = np.asarray(batch, dtype=np.float64)
        size = int(batch.size)
        if size == 0:
            return batch, 0
        self._maybe_evaluate()
        with self._lock:
            record = self._streams.get(name)
            if record is None:
                return batch, 0
            sheddable = record.priority >= self.config.shed_priority_floor
            level = self._level
            kept = batch
            shed = 0
            if sheddable and level >= LEVEL_SHED:
                fraction = (
                    1.0 if level >= LEVEL_STALE else self.config.shed_fraction
                )
                mask = self._keep_mask(name, record.shed_offset, size, fraction)
                kept = batch[mask]
                shed = size - int(kept.size)
            cost = float(kept.size)
            if cost and sheddable and level >= LEVEL_THROTTLE:
                cost /= self.config.throttle_factor
            if cost:
                bucket = self._bucket(record.tenant)
                if bucket is not None:
                    retry_after = bucket.try_take(cost, self._clock())
                    if retry_after > 0.0:
                        self._count(
                            THROTTLED_METRIC, record, int(kept.size)
                        )
                        raise QuotaExceededError(
                            f"tenant {record.tenant!r} over quota on stream "
                            f"{name!r}: {int(kept.size)} points refused; "
                            f"retry in {retry_after:.3f}s",
                            retry_after=retry_after,
                            tenant=record.tenant,
                            stream=name,
                        )
            record.shed_offset += size
            if shed:
                with self._count_lock:
                    record.shed_points += shed
                self._count(SHED_METRIC, record, shed)
            if kept.size:
                self._count(ADMITTED_METRIC, record, int(kept.size))
        return kept, shed

    def admit_retry(self, name: str, points: int) -> None:
        """All-or-nothing admission for dead-letter retries.

        Retried poison records re-enter admission like fresh traffic:
        refused outright while the ladder sheds the stream, and charged
        to the tenant bucket otherwise.
        """
        if points <= 0:
            return
        with self._lock:
            record = self._streams.get(name)
            if record is None:
                return
            sheddable = record.priority >= self.config.shed_priority_floor
            if sheddable and self._level >= LEVEL_SHED:
                self._count(THROTTLED_METRIC, record, points)
                raise QuotaExceededError(
                    f"stream {name!r} is being shed "
                    f"(level {self.level_name()}); dead-letter retry refused",
                    retry_after=_LADDER_RETRY_AFTER,
                    tenant=record.tenant,
                    stream=name,
                )
            cost = float(points)
            if sheddable and self._level >= LEVEL_THROTTLE:
                cost /= self.config.throttle_factor
            bucket = self._bucket(record.tenant)
            if bucket is not None:
                retry_after = bucket.try_take(cost, self._clock())
                if retry_after > 0.0:
                    self._count(THROTTLED_METRIC, record, points)
                    raise QuotaExceededError(
                        f"tenant {record.tenant!r} over quota on stream "
                        f"{name!r}: dead-letter retry of {points} points "
                        f"refused; retry in {retry_after:.3f}s",
                        retry_after=retry_after,
                        tenant=record.tenant,
                        stream=name,
                    )
            self._count(ADMITTED_METRIC, record, points)

    def _bucket(self, tenant: str) -> _TokenBucket | None:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self.config.quota_for(tenant)
            if quota is None:
                return None
            bucket = _TokenBucket(quota, self._clock())
            self._buckets[tenant] = bucket
        return bucket

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _count(self, metric: str, record: _StreamRecord, points: int) -> None:
        self.registry.counter(
            metric, tenant=record.tenant, priority=str(record.priority)
        ).inc(points)
        with self._count_lock:
            if metric == ADMITTED_METRIC:
                self._admitted_points += points
            elif metric == SHED_METRIC:
                self._shed_points += points
            else:
                self._throttled_points += points

    def note_shed(self, name: str, points: int) -> None:
        """Account points evicted elsewhere (drop_oldest) as shed mass.

        Lock-free with respect to the controller's main lock: callers
        may hold worker queue locks that :meth:`evaluate` reads under
        the main lock.
        """
        record = self._streams.get(name)
        if record is None or points <= 0:
            return
        self.count_shed(record.tenant, record.priority, points)
        with self._count_lock:
            record.shed_points += points

    def count_shed(self, tenant: str, priority: int, points: int) -> None:
        """Raw shed accounting when no registered stream applies."""
        self.registry.counter(
            SHED_METRIC, tenant=tenant, priority=str(priority)
        ).inc(points)
        with self._count_lock:
            self._shed_points += points

    def snapshot(self) -> dict:
        """JSON-friendly view of quotas, ladder and totals (re-evaluates)."""
        self.evaluate()
        with self._lock, self._count_lock:
            return {
                "level": self.level_name(),
                "level_index": self._level,
                "forced": (
                    DEGRADATION_LEVELS[self._forced]
                    if self._forced is not None
                    else None
                ),
                "admitted_points": self._admitted_points,
                "shed_points": self._shed_points,
                "throttled_points": self._throttled_points,
                "tenants": {
                    tenant: {
                        "rate": bucket.rate,
                        "burst": bucket.burst,
                        "tokens": round(bucket.tokens, 3),
                    }
                    for tenant, bucket in sorted(self._buckets.items())
                },
                "streams": {
                    name: {
                        "tenant": record.tenant,
                        "priority": record.priority,
                        "sheddable": (
                            record.priority >= self.config.shed_priority_floor
                        ),
                        "shed_points": record.shed_points,
                    }
                    for name, record in sorted(self._streams.items())
                },
            }
