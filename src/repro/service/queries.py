"""Query helpers over materialized synopsis views.

The service answers queries from the *last materialized synopsis* of a
stream, never from the live maintainer (snapshot isolation: a query must
not block or race ingestion).  The helpers here freeze a possibly-live
synopsis into an immutable view and translate the service's query verbs
(``range_sum``, ``quantile``, ``histogram``) onto whatever vocabulary the
underlying synopsis speaks; backends that cannot answer a verb raise
:class:`UnsupportedQueryError` instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.bucket import Histogram
from ..query.queries import synopsis_quantile

__all__ = [
    "MaterializedView",
    "UnsupportedQueryError",
    "freeze_synopsis",
    "view_histogram",
    "view_quantile",
    "view_range_sum",
]


class UnsupportedQueryError(RuntimeError):
    """The stream's synopsis type cannot answer the requested query."""


@dataclass(frozen=True)
class MaterializedView:
    """An immutable synopsis snapshot, stamped with its stream position.

    ``arrivals`` is the number of stream points the synopsis reflects;
    ``created_at`` is the wall-clock materialization time.  Queries read
    views; ingestion replaces them -- neither ever mutates one.
    ``stale`` marks a view served while its stream is down or replaying
    a recovery backlog: the data is the last good answer, not the
    current stream position.
    """

    synopsis: Any
    arrivals: int
    created_at: float
    stale: bool = False


def freeze_synopsis(synopsis):
    """An immutable copy of ``synopsis`` safe to serve concurrently.

    Live synopses (the GK summary, the reservoir) are cloned through
    their exact ``to_dict``/``from_dict`` round-trip; synopses without
    one (the raw buffer view) are already fresh per-call objects.
    """
    to_dict = getattr(synopsis, "to_dict", None)
    from_dict = getattr(type(synopsis), "from_dict", None)
    if to_dict is not None and from_dict is not None:
        return from_dict(to_dict())
    return synopsis


def view_range_sum(synopsis, start: int, end: int) -> float:
    """Estimated sum over positions ``[start, end]`` of the synopsis."""
    if start < 0 or end < start:
        raise ValueError(f"invalid query range [{start}, {end}]")
    range_sum = getattr(synopsis, "range_sum", None)
    if range_sum is None:
        raise UnsupportedQueryError(
            f"{type(synopsis).__name__} keeps order statistics, not "
            "positional estimates; ask for a quantile instead"
        )
    return float(range_sum(start, end))


def view_quantile(synopsis, fraction: float) -> float:
    """Approximate ``fraction``-quantile of the summarized values."""
    try:
        return synopsis_quantile(synopsis, fraction)
    except TypeError as error:
        raise UnsupportedQueryError(str(error)) from None


def view_histogram(synopsis) -> dict:
    """A JSON-friendly rendering of the synopsis.

    Histograms serialize to their bucket list, anything else with a
    ``to_dict`` to its own exact representation, and raw buffers to their
    values -- each tagged with the synopsis kind so clients can dispatch.
    """
    if isinstance(synopsis, Histogram):
        return {"kind": "histogram", **synopsis.to_dict()}
    render = getattr(synopsis, "histogram", None)
    if callable(render):
        rendered = render()
        if isinstance(rendered, Histogram):
            return {"kind": "histogram", **rendered.to_dict()}
    to_dict = getattr(synopsis, "to_dict", None)
    if to_dict is not None:
        return {"kind": type(synopsis).__name__, **to_dict()}
    to_array = getattr(synopsis, "to_array", None)
    if to_array is not None:
        values = to_array()
        return {"kind": type(synopsis).__name__, "values": values.tolist()}
    raise UnsupportedQueryError(
        f"{type(synopsis).__name__} has no serializable rendering"
    )
