"""Declarative service configuration: TOML/JSON -> a running service.

A config file describes one service -- its tier (``threaded`` or
``sharded``), durability, and hosted streams -- and
:func:`build_service` turns it into the matching
:class:`~repro.service.protocol.ServiceProtocol` implementation.
``python -m repro.service`` (see :mod:`repro.service.__main__`) is the
CLI around this module.

TOML example::

    mode = "sharded"
    shards = 4
    snapshot_dir = "snapshots"

    [[streams]]
    name = "cpu"
    backend = "gk_quantiles"
    maintain_every = 64
    [streams.params]
    epsilon = 0.05

    [[streams]]
    name = "latency"
    backend = "fixed_window"
    tenant = "gold"
    priority = 0
    [streams.params]
    window_size = 1024
    num_buckets = 16
    epsilon = 0.1

    [qos]
    shed_fraction = 0.5
    [qos.default]
    rate = 50_000
    burst = 100_000
    [qos.tenants.gold]
    rate = 200_000
    burst = 400_000

An optional ``[qos]`` table (see
:class:`~repro.service.qos.QoSConfig`) turns on multi-tenant admission
control and the graceful-degradation ladder on either tier.

The JSON shape is identical (``{"mode": ..., "streams": [...]}``).
TOML needs :mod:`tomllib` (Python 3.11+); JSON works everywhere, so on
3.10 use a ``.json`` config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .qos import QoSConfig
from .service import StreamService, StreamSpec

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback path
    tomllib = None

__all__ = ["ServiceConfig", "build_service", "load_config"]

_MODES = ("threaded", "sharded")

#: Stream-table keys that feed StreamSpec (everything except "name").
_SPEC_KEYS = (
    "backend",
    "params",
    "maintain_every",
    "queue_capacity",
    "backpressure",
    "checkpoint_every",
    "poison",
    "accuracy",
    "tenant",
    "priority",
)


@dataclass(frozen=True)
class ServiceConfig:
    """One parsed service configuration."""

    mode: str = "threaded"
    shards: int = 4
    snapshot_dir: str | None = None
    snapshot_keep: int = 2
    snapshot_base_every: int = 1
    virtual_nodes: int = 64
    supervise: bool = True
    qos: QoSConfig | None = None
    streams: tuple[tuple[str, StreamSpec], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; use one of {_MODES}"
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        names = [name for name, _ in self.streams]
        if len(names) != len(set(names)):
            raise ValueError("duplicate stream names in config")

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceConfig":
        known = {
            "mode",
            "shards",
            "snapshot_dir",
            "snapshot_keep",
            "snapshot_base_every",
            "virtual_nodes",
            "supervise",
            "qos",
            "streams",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown config keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        streams = []
        for entry in payload.get("streams", []):
            if "name" not in entry:
                raise ValueError("every [[streams]] table needs a 'name'")
            if "backend" not in entry:
                raise ValueError(
                    f"stream {entry['name']!r} needs a 'backend'"
                )
            extra = sorted(set(entry) - {"name"} - set(_SPEC_KEYS))
            if extra:
                raise ValueError(
                    f"stream {entry['name']!r} has unknown keys: "
                    f"{', '.join(extra)}"
                )
            spec_fields = {
                key: entry[key] for key in _SPEC_KEYS if key in entry
            }
            streams.append((entry["name"], StreamSpec.from_dict(spec_fields)))
        return cls(
            mode=payload.get("mode", "threaded"),
            shards=int(payload.get("shards", 4)),
            snapshot_dir=payload.get("snapshot_dir"),
            snapshot_keep=int(payload.get("snapshot_keep", 2)),
            snapshot_base_every=int(payload.get("snapshot_base_every", 1)),
            virtual_nodes=int(payload.get("virtual_nodes", 64)),
            supervise=bool(payload.get("supervise", True)),
            qos=(
                QoSConfig.from_dict(payload["qos"])
                if payload.get("qos") is not None
                else None
            ),
            streams=tuple(streams),
        )


def load_config(path) -> ServiceConfig:
    """Parse a ``.toml`` or ``.json`` config file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        if tomllib is None:
            raise RuntimeError(
                "TOML configs need Python 3.11+ (tomllib); "
                "use a .json config on this interpreter"
            )
        payload = tomllib.loads(path.read_text())
    elif suffix == ".json":
        payload = json.loads(path.read_text())
    else:
        raise ValueError(
            f"unsupported config suffix {suffix!r}; use .toml or .json"
        )
    return ServiceConfig.from_dict(payload)


def build_service(config: ServiceConfig):
    """A started service with every configured stream created.

    ``threaded`` builds a supervised in-process
    :class:`~repro.service.service.StreamService`; ``sharded`` builds a
    :class:`~repro.shard.router.ShardRouter` with ``config.shards``
    processes.  Both satisfy
    :class:`~repro.service.protocol.ServiceProtocol`.
    """
    if config.mode == "sharded":
        from ..shard.router import ShardRouter

        service = ShardRouter(
            num_shards=config.shards,
            snapshot_dir=config.snapshot_dir,
            virtual_nodes=config.virtual_nodes,
            snapshot_keep=config.snapshot_keep,
            snapshot_base_every=config.snapshot_base_every,
            supervise_workers=config.supervise,
            qos=config.qos,
        )
    else:
        service = StreamService(
            snapshot_dir=config.snapshot_dir,
            supervise=config.supervise,
            snapshot_keep=config.snapshot_keep,
            snapshot_base_every=config.snapshot_base_every,
            qos=config.qos,
        )
    try:
        for name, spec in config.streams:
            service.create_stream(name, spec=spec)
    except Exception:
        service.close(checkpoint=False)
        raise
    return service
