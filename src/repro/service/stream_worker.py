"""One hosted stream: bounded ingest queue, worker thread, live view.

A :class:`StreamWorker` owns a single maintainer driven through a
:class:`~repro.runtime.pipeline.StreamPipeline` (so maintenance cadence
semantics are *identical* to a direct single-threaded run over the same
points).  Producers call :meth:`submit` from any thread; the worker
thread drains batches in arrival order, then materializes an immutable
:class:`~repro.service.queries.MaterializedView` that queries read
without ever touching the maintainer.

The queue hand-off is whole-batch on both sides: ``submit`` enqueues one
queue item per batch (the bounded capacity and every backpressure policy
count whole batches by their point count), and the worker takes the
*entire* backlog in a single lock acquisition per drain cycle, feeding
batch after batch under one state-lock hold and materializing the view
once at the end of the cycle.  Points are never serialized individually
through the queue, so a producer burst of k chunks costs one worker
wakeup and one view refresh instead of k.

Backpressure when the queue is full is configurable:

* ``"block"`` -- the producer waits for space (lossless, the default);
* ``"reject"`` -- :meth:`submit` raises :class:`BackpressureError`;
* ``"drop_oldest"`` -- the oldest queued batches are evicted to make
  room (freshest-data-wins, for monitoring workloads).

Failure handling splits along one line: *data* errors and *worker*
errors.  A record that raises during ingest is poison, not a crash --
under the default ``poison="quarantine"`` policy the failing batch is
re-fed point by point, offending points land in the stream's
:class:`~repro.service.deadletter.DeadLetterBuffer` (counted, bounded,
retryable) and clean points keep flowing.  Quarantined points never
advance the arrival counter, so maintenance cadence stays aligned with
a clean-stream run.  Everything else -- an :class:`InjectedFault`, a
failure that cannot be attributed to an un-ingested point, any error
under ``poison="fail"`` -- is fatal: the un-applied remainder of the
in-flight batch is pushed back onto the queue, the error is published
to producers as :class:`WorkerFailedError`, and the worker thread dies
for the supervisor to find.

For supervised recovery the worker can keep a *replay buffer*
(``track_replay=True``): every successfully ingested batch is retained,
stamped with its start arrival, until the service trims it at a
checkpoint.  Restoring the last durable snapshot and re-feeding the
replay suffix reproduces the lost worker bit-exactly -- the same
determinism argument that makes the synopses checkpointable at all.

Every decision is counted (:class:`WorkerCounters`): points submitted /
ingested / dropped, batches rejected, enqueue wait time, and a bounded
reservoir of recent enqueue latencies for percentile reporting.  The
counters live on a :class:`~repro.obs.metrics.MetricsRegistry` (the
service shares one across its streams, labeled per stream) and stay
readable through the same attribute names and ``stats()`` dict as
before; latency percentiles are computed from a single locked reservoir
snapshot, so a concurrent ``stats()`` can never observe a mutating deque
or torn p50/p99 pair.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace

import numpy as np

from ..core.prefix import as_stream_batch
from ..obs.accuracy import AccuracyMonitor
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import PipelineObserver, Tracer
from ..runtime.maintainer import Maintainer
from ..runtime.pipeline import StreamPipeline
from .deadletter import DeadLetterBuffer
from .faults import FaultInjector, InjectedFault
from .queries import MaterializedView, freeze_synopsis

__all__ = [
    "BackpressureError",
    "StreamWorker",
    "WorkerCounters",
    "WorkerFailedError",
]

BACKPRESSURE_POLICIES = ("block", "reject", "drop_oldest")
POISON_POLICIES = ("quarantine", "fail")


class BackpressureError(RuntimeError):
    """A ``reject``-policy queue refused a batch because it was full."""


class WorkerFailedError(RuntimeError):
    """The stream's worker thread died; producers must not keep feeding it.

    Carries the original failure as ``__cause__``.  A supervised
    service intercepts this, waits for the restarted worker, and
    retries the submit transparently.
    """


class WorkerCounters:
    """Ingestion telemetry of one hosted stream, backed by the registry.

    Every figure is a labeled instrument on a
    :class:`~repro.obs.metrics.MetricsRegistry` (a private one when the
    worker runs standalone), so the same numbers surface through
    ``stats()`` dicts, ``StreamService.metrics()`` and the Prometheus /
    JSONL exporters without double bookkeeping.  The former public
    attributes (``submitted_points``, ``ingested_points``, ...) remain
    readable as properties.

    Enqueue latencies live in a bounded reservoir histogram whose
    readers always work from a snapshot taken under the metric's lock --
    producers appending concurrently can no longer make a ``stats()``
    call raise ``deque mutated during iteration`` or return a p50/p99
    pair computed from two different latency populations.
    """

    #: Retained enqueue-latency observations (matches the old ring size).
    LATENCY_RESERVOIR = 4096

    def __init__(
        self, registry: MetricsRegistry | None = None, stream: str = ""
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        labels = {"stream": stream}
        counter = self.registry.counter
        self._submitted = counter("repro_submitted_points_total", **labels)
        self._ingested = counter("repro_ingested_points_total", **labels)
        self._dropped = counter("repro_dropped_points_total", **labels)
        self._rejected_batches = counter("repro_rejected_batches_total", **labels)
        self._rejected_points = counter("repro_rejected_points_total", **labels)
        self._enqueued_batches = counter("repro_enqueued_batches_total", **labels)
        self._drained_batches = counter("repro_drained_batches_total", **labels)
        self._enqueue_wait = counter("repro_enqueue_wait_seconds_total", **labels)
        self._max_queue_depth = self.registry.gauge(
            "repro_max_queue_depth", **labels
        )
        self._latencies = self.registry.histogram(
            "repro_enqueue_latency_seconds",
            reservoir=self.LATENCY_RESERVOIR,
            **labels,
        )

    # -- mutation verbs (called by the worker under its own locking) ----

    def record_enqueue(self, points: int, waited: float, depth: int) -> None:
        """One accepted batch: size, time spent waiting, resulting depth."""
        self._submitted.inc(points)
        self._enqueued_batches.inc()
        self._enqueue_wait.inc(waited)
        self._latencies.observe(waited)
        self._max_queue_depth.set_max(depth)

    def record_rejected(self, points: int) -> None:
        self._rejected_batches.inc()
        self._rejected_points.inc(points)

    def record_dropped(self, points: int) -> None:
        self._dropped.inc(points)

    def record_drained(self, ingested: int) -> None:
        self._ingested.inc(ingested)
        self._drained_batches.inc()

    def record_ingested(self, points: int) -> None:
        self._ingested.inc(points)

    def note_queue_depth(self, depth: int) -> None:
        self._max_queue_depth.set_max(depth)

    # -- reader side ----------------------------------------------------

    @property
    def submitted_points(self) -> int:
        return self._submitted.value

    @property
    def ingested_points(self) -> int:
        return self._ingested.value

    @property
    def dropped_points(self) -> int:
        return self._dropped.value

    @property
    def rejected_batches(self) -> int:
        return self._rejected_batches.value

    @property
    def rejected_points(self) -> int:
        return self._rejected_points.value

    @property
    def enqueued_batches(self) -> int:
        return self._enqueued_batches.value

    @property
    def drained_batches(self) -> int:
        return self._drained_batches.value

    @property
    def max_queue_depth(self) -> int:
        return int(self._max_queue_depth.value)

    @property
    def enqueue_wait_seconds(self) -> float:
        return self._enqueue_wait.value

    @property
    def enqueue_latencies(self) -> list[float]:
        """A consistent snapshot of the recent enqueue latencies."""
        return self._latencies.snapshot()

    def latency_quantile(self, fraction: float) -> float:
        """Quantile of recent enqueue latencies in seconds (0 if none)."""
        return self._latencies.quantile(fraction)

    def to_dict(self) -> dict:
        # Both percentiles come from ONE reservoir snapshot: they always
        # describe the same set of observations.
        marks = self._latencies.quantiles((0.50, 0.99))
        return {
            "submitted_points": self.submitted_points,
            "ingested_points": self.ingested_points,
            "dropped_points": self.dropped_points,
            "rejected_batches": self.rejected_batches,
            "rejected_points": self.rejected_points,
            "enqueued_batches": self.enqueued_batches,
            "drained_batches": self.drained_batches,
            "max_queue_depth": self.max_queue_depth,
            "enqueue_wait_seconds": self.enqueue_wait_seconds,
            "enqueue_p50_seconds": marks[0.50],
            "enqueue_p99_seconds": marks[0.99],
        }


class StreamWorker:
    """Threaded ingestion front of one maintainer.

    Parameters mirror the stream spec: ``queue_capacity`` bounds the
    number of *points* (not batches) waiting in the queue,
    ``backpressure`` picks the full-queue policy, ``maintain_every`` is
    forwarded to the internal pipeline, and ``initial_arrivals`` resumes
    the arrival counter of a restored checkpoint so cadence events keep
    firing at the same absolute stream positions.  ``poison`` selects
    what an ingest error does (``"quarantine"`` records, the default, or
    ``"fail"`` the worker); ``injector`` threads a
    :class:`~repro.service.faults.FaultInjector` through the feed path;
    ``track_replay`` retains ingested batches for supervised recovery;
    ``dead_letter`` lets a supervisor carry the quarantine buffer across
    a restart.

    Observability is opt-in per handle: ``registry`` hosts the worker's
    counters (a private registry is created when omitted), ``tracer``
    attaches per-stage spans (ingest / maintain through the pipeline
    observer, materialize here), and ``accuracy`` shadows ingested
    points with an exact window that is checked against the served
    synopsis on its own cadence.
    """

    def __init__(
        self,
        name: str,
        maintainer: Maintainer,
        *,
        maintain_every: int | None = 1,
        queue_capacity: int = 1024,
        backpressure: str = "block",
        initial_arrivals: int = 0,
        poison: str = "quarantine",
        injector: FaultInjector | None = None,
        track_replay: bool = False,
        dead_letter: DeadLetterBuffer | None = None,
        dead_letter_capacity: int = 1024,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        accuracy: AccuracyMonitor | None = None,
        on_shed=None,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {backpressure!r}; "
                f"use one of {BACKPRESSURE_POLICIES}"
            )
        if poison not in POISON_POLICIES:
            raise ValueError(
                f"unknown poison policy {poison!r}; use one of {POISON_POLICIES}"
            )
        self.name = name
        self.maintainer = maintainer
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.poison = poison
        self.counters = WorkerCounters(registry, name)
        self.tracer = tracer
        self.accuracy = accuracy
        # Called with the evicted point count on every drop_oldest
        # eviction (under the queue lock -- keep it leaf-locked); the
        # service wires this to QoS shed accounting so dropped mass is
        # always counted, not just when shedding was deliberate.
        self._on_shed = on_shed
        self.dead_letter = (
            dead_letter
            if dead_letter is not None
            else DeadLetterBuffer(
                capacity=dead_letter_capacity,
                registry=self.counters.registry,
                stream=name,
            )
        )
        self._injector = injector
        self._track_replay = track_replay
        self._replay: list[tuple[int, np.ndarray]] = []
        self._pipeline = StreamPipeline(
            [maintainer],
            maintain_every=maintain_every,
            initial_arrivals=initial_arrivals,
            observer=(
                PipelineObserver(tracer, name) if tracer is not None else None
            ),
        )
        self._queue: deque[np.ndarray] = deque()
        self._queued_points = 0
        # Whole batches dequeued but not yet fully applied, oldest first.
        # The worker takes the *entire* queue in one lock acquisition per
        # drain cycle (whole batches, never individual points), so a
        # producer-side burst costs one wakeup and one materialize
        # instead of one per chunk.
        self._in_flight: list[np.ndarray] | None = None
        self._fatal_leftover: np.ndarray | None = None
        self._cv = threading.Condition()
        # Held by the worker around each pipeline feed and by checkpoint
        # readers; guarantees a checkpoint never sees a half-applied batch.
        self._state_lock = threading.Lock()
        self._view: MaterializedView | None = None
        self._view_lock = threading.Lock()
        self._error: BaseException | None = None
        self._stop_requested = False
        self._thread = threading.Thread(
            target=self._run, name=f"stream-worker:{name}", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the worker; with ``drain`` (default) finish queued work.

        Idempotent: repeated ``stop``/``close`` calls, stop before
        start, and stop after a worker failure are all safe no-ops
        beyond the first effective shutdown.
        """
        with self._cv:
            if not drain:
                self.counters.record_dropped(self._queued_points)
                self._queue.clear()
                self._queued_points = 0
            self._stop_requested = True
            self._cv.notify_all()
        if self._started and self._thread.is_alive():
            self._thread.join()

    def close(self) -> None:
        """Alias for :meth:`stop` with the default drain-then-stop."""
        self.stop(drain=True)

    @property
    def arrivals(self) -> int:
        """Points the maintainer has actually consumed so far."""
        return self._pipeline.arrivals

    @property
    def failed(self) -> bool:
        """True once the worker thread has died on a fatal error."""
        return self._error is not None

    @property
    def error(self) -> BaseException | None:
        """The fatal error that killed the worker, if any."""
        return self._error

    @property
    def queue_depth(self) -> int:
        """Points currently waiting in the queue."""
        with self._cv:
            return self._queued_points

    @property
    def in_flight(self) -> bool:
        """True while dequeued batches are still being ingested."""
        with self._cv:
            return self._in_flight is not None

    def caught_up(self) -> bool:
        """Has this worker fully processed everything handed to it?

        True only when the queue is empty, no dequeued batch is still
        mid-ingest, and the served view is not a stale adoption from a
        crashed predecessor.  An empty queue alone is *not* enough: the
        worker pops a batch before feeding it, so ``queue_depth == 0``
        can coincide with the final replay batch being applied -- the
        exact window in which a supervisor must not yet report the
        stream healthy.
        """
        with self._cv:
            if self._queue or self._in_flight is not None:
                return False
            if self._error is not None:
                return False
        view = self.view()
        if view is None or not view.stale:
            return True
        # Still serving an adopted stale view with nothing left to drain:
        # there was no replay traffic to re-materialize it.  Refresh in
        # place; the maintainer state is already current.
        self.seed_view()
        view = self.view()
        return view is not None and not view.stale

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(self, values) -> int:
        """Enqueue a batch; returns the number of points accepted.

        Thread-safe.  Applies the configured backpressure policy and
        records the time spent waiting for queue space.
        """
        batch = as_stream_batch(values)
        if batch.size == 0:
            return 0
        started = time.perf_counter()
        with self._cv:
            self._raise_if_failed()
            if self._stop_requested:
                raise RuntimeError(f"stream {self.name!r} is stopped")
            if self.backpressure == "block":
                self._cv.wait_for(
                    lambda: self._fits(batch.size)
                    or self._stop_requested
                    or self._error is not None
                )
                self._raise_if_failed()
                if self._stop_requested:
                    raise RuntimeError(f"stream {self.name!r} is stopped")
            elif self.backpressure == "reject":
                if not self._fits(batch.size):
                    self.counters.record_rejected(batch.size)
                    raise BackpressureError(
                        f"stream {self.name!r} queue full "
                        f"({self._queued_points}/{self.queue_capacity} points)"
                    )
            else:  # drop_oldest
                while not self._fits(batch.size) and self._queue:
                    evicted = self._queue.popleft()
                    self._queued_points -= evicted.size
                    self.counters.record_dropped(evicted.size)
                    # Evicted points never reach the synopsis: they are
                    # shed mass, so the accuracy monitor widens its
                    # effective epsilon and QoS counts them.
                    if self.accuracy is not None:
                        self.accuracy.note_shed(int(evicted.size))
                    if self._on_shed is not None:
                        self._on_shed(int(evicted.size))
            waited = time.perf_counter() - started
            self._queue.append(batch)
            self._queued_points += batch.size
            self.counters.record_enqueue(batch.size, waited, self._queued_points)
            self._cv.notify_all()
        return batch.size

    def preload(self, batches) -> int:
        """Stage batches ahead of any live traffic, bypassing capacity.

        Only valid before :meth:`start`; used by restore/recovery to
        enqueue the replay suffix and a dead worker's pending queue
        before producers can reach the replacement.
        """
        if self._started:
            raise RuntimeError("preload is only valid before start()")
        total = 0
        with self._cv:
            for values in batches:
                batch = as_stream_batch(values)
                if batch.size == 0:
                    continue
                self._queue.append(batch)
                self._queued_points += batch.size
                total += batch.size
            self.counters.note_queue_depth(self._queued_points)
        return total

    def _fits(self, size: int) -> bool:
        # An oversize batch may enter an *empty* queue so it can always
        # make progress; otherwise the point bound is respected.
        if self._queued_points == 0:
            return True
        return self._queued_points + size <= self.queue_capacity

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every queued point has been ingested."""
        with self._cv:
            drained = self._cv.wait_for(
                lambda: (
                    (not self._queue and self._in_flight is None)
                    or self._error is not None
                ),
                timeout=timeout,
            )
            self._raise_if_failed()
            return drained

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise WorkerFailedError(
                f"stream {self.name!r} worker failed: {self._error!r}"
            ) from self._error

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cv:
                self._cv.wait_for(lambda: self._queue or self._stop_requested)
                if not self._queue:
                    break
                # Take the whole backlog in one go: every queue item is a
                # whole submitted batch, and the cycle below pays one
                # state-lock acquisition and one materialize for all of
                # them instead of one per batch.
                batches = list(self._queue)
                self._queue.clear()
                self._queued_points = 0
                self._in_flight = batches
                self._cv.notify_all()
            try:
                with self._state_lock:
                    while batches:
                        batch = batches[0]
                        ingested = self._feed(batch)
                        self.counters.record_drained(ingested)
                        del batches[0]
                    self._materialize()
                    with self._cv:
                        self._in_flight = None
                        self._cv.notify_all()
            except BaseException as error:  # noqa: B036 - surfaced to producers
                leftover = self._fatal_leftover
                self._fatal_leftover = None
                with self._cv:
                    # The un-applied remainder of the failing batch plus
                    # every not-yet-fed batch of this cycle go back to the
                    # queue front (in order) so a supervisor restart loses
                    # nothing.
                    for pending in reversed(batches[1:]):
                        self._queue.appendleft(pending)
                        self._queued_points += int(pending.size)
                    if leftover is not None and leftover.size:
                        self._queue.appendleft(np.asarray(leftover))
                        self._queued_points += int(leftover.size)
                    self._error = error
                    self._in_flight = None
                    self._cv.notify_all()
                break

    def _feed(self, batch: np.ndarray) -> int:
        """Feed one batch; returns the number of points ingested.

        Poison handling: an ingest error under ``poison="quarantine"``
        re-feeds the un-applied remainder point by point, quarantining
        the offenders.  Fatal paths (injected crashes, ``poison="fail"``,
        errors not attributable to an un-ingested point) leave the
        remainder in ``_fatal_leftover`` and re-raise.
        """
        start = self._pipeline.arrivals
        self._fatal_leftover = batch
        if self._injector is not None:
            self._injector.on_ingest(self.name, start, int(batch.size))
        try:
            self._pipeline.extend(batch)
        except Exception as error:
            # The pipeline rolls its arrival counter back when the feed
            # failed before the maintainer ingested anything, so the gap
            # between counters is exactly the applied prefix.
            applied = self._pipeline.arrivals - start
            if applied and self._track_replay:
                self._replay.append((start, batch[:applied].copy()))
            if applied and self.accuracy is not None:
                self.accuracy.extend(batch[:applied])
            rest = batch[applied:]
            self._fatal_leftover = rest
            if (
                isinstance(error, InjectedFault)
                or self.poison != "quarantine"
                or rest.size == 0
            ):
                raise
            self._fatal_leftover = None
            clean = self._quarantine_rest(rest)
            self.dead_letter.record_batch()
            return applied + clean
        if self._track_replay:
            self._replay.append((start, batch.copy()))
        if self.accuracy is not None:
            self.accuracy.extend(batch)
        self._fatal_leftover = None
        return int(batch.size)

    def _quarantine_rest(self, rest: np.ndarray) -> int:
        """Per-point isolation of a failing batch remainder."""
        clean = 0
        for i in range(rest.size):
            value = float(rest[i])
            start = self._pipeline.arrivals
            point = np.asarray([value], dtype=np.float64)
            try:
                self._pipeline.extend(point)
            except Exception as error:
                if self._pipeline.arrivals > start:
                    # The point *was* ingested and something after it
                    # (maintenance) failed: not poison. Escalate with
                    # the untouched remainder preserved for replay.
                    if self._track_replay:
                        self._replay.append((start, point))
                    self._fatal_leftover = rest[i + 1 :]
                    raise
                self.dead_letter.quarantine(value, error, start)
            else:
                if self._track_replay:
                    self._replay.append((start, point))
                if self.accuracy is not None:
                    self.accuracy.extend(point)
                clean += 1
        return clean

    def _materialize(self) -> None:
        """Refresh the queryable view from the maintainer.

        Uses ``last_synopsis`` where the backend caches one (the
        staleness side of the maintenance cadence); the result is frozen
        so concurrent queries can never observe later mutation.
        """
        started = time.perf_counter()
        produce = getattr(self.maintainer, "last_synopsis", None)
        try:
            synopsis = produce() if produce is not None else self.maintainer.synopsis()
        except ValueError:
            return  # nothing ingested yet (e.g. an all-dropped batch)
        view = MaterializedView(
            synopsis=freeze_synopsis(synopsis),
            arrivals=self._pipeline.arrivals,
            created_at=time.time(),
        )
        with self._view_lock:
            self._view = view
        if self.tracer is not None:
            self.tracer.record(
                "materialize", self.name, time.perf_counter() - started
            )
        if self.accuracy is not None:
            self.accuracy.maybe_check(self._pipeline.arrivals, synopsis)

    def seed_view(self) -> None:
        """Materialize an initial view outside the worker thread.

        Used right after a checkpoint restore so the stream is queryable
        before any new point arrives.
        """
        with self._state_lock:
            self._materialize()

    def adopt_view(self, view: MaterializedView) -> None:
        """Serve a predecessor's view (marked stale) until fresh data lands.

        Used by the supervisor so queries keep answering while a
        restarted stream replays its backlog.
        """
        with self._view_lock:
            self._view = replace(view, stale=True)

    # ------------------------------------------------------------------
    # Dead-letter retry
    # ------------------------------------------------------------------

    def retry_dead_letters(self) -> dict:
        """Re-feed every quarantined record in place.

        Records that ingest cleanly leave the buffer (appended at the
        current stream position); records that fail again are
        re-quarantined with the fresh error.  Returns outcome counts.
        """
        self._raise_if_failed()
        records = self.dead_letter.take_all()
        succeeded = failed = 0
        with self._state_lock:
            for record in records:
                start = self._pipeline.arrivals
                point = np.asarray([record.value], dtype=np.float64)
                try:
                    self._pipeline.extend(point)
                except Exception as error:
                    self.dead_letter.requarantine(record, error)
                    failed += 1
                else:
                    if self._track_replay:
                        self._replay.append((start, point))
                    if self.accuracy is not None:
                        self.accuracy.extend(point)
                    self.counters.record_ingested(1)
                    succeeded += 1
            if succeeded:
                self._materialize()
        self.dead_letter.note_retry(succeeded, failed)
        return {"retried": len(records), "succeeded": succeeded, "failed": failed}

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def view(self) -> MaterializedView | None:
        """The last materialized view (None before any ingestion)."""
        with self._view_lock:
            return self._view

    def checkpoint_state(self) -> tuple[dict, int, list[list[float]]]:
        """A consistent (maintainer state, arrivals, buffered tail) triple.

        Holding the state lock first parks the worker *between* batches;
        the queue lock then captures the not-yet-ingested tail, so every
        submitted point lands in exactly one of state or tail.
        """
        with self._state_lock:
            with self._cv:
                self._raise_if_failed()
                tail = [batch.tolist() for batch in self._queue]
                if self._in_flight is not None:
                    # The worker only applies in-flight batches while
                    # holding the state lock, so any batches it already
                    # popped are still entirely un-applied here: they
                    # belong to the tail, ahead of the queued ones.
                    tail = [
                        batch.tolist() for batch in self._in_flight
                    ] + tail
                return (
                    self.maintainer.state_dict(),
                    self._pipeline.arrivals,
                    tail,
                )

    def checkpoint_capture(
        self,
        *,
        state: bool = True,
        arrays: bool = True,
        replay_since: int | None = None,
    ) -> dict:
        """One consistent capture of everything a checkpoint can use.

        Same locking discipline as :meth:`checkpoint_state` (state lock
        parks the worker between batches, queue lock fences the tail),
        but returns numpy batches instead of lists and, when ``arrays``
        is set and the maintainer opted in, the state as a
        ``state_arrays`` skeleton/arrays pair for the binary snapshot
        writer (``state`` otherwise).  ``state=False`` skips the state
        capture entirely -- delta checkpoints only need arrivals, tail,
        and the replay slice.  With ``replay_since`` the capture also
        includes the replay-log slice starting at that arrival -- the
        ingested-since-last-checkpoint batches a delta checkpoint
        persists.
        """
        with self._state_lock:
            with self._cv:
                self._raise_if_failed()
                tail = [batch.copy() for batch in self._queue]
                if self._in_flight is not None:
                    tail = [batch.copy() for batch in self._in_flight] + tail
                capture: dict = {
                    "arrivals": self._pipeline.arrivals,
                    "tail": tail,
                }
                if replay_since is not None:
                    capture["replay"] = [
                        (start, batch.copy())
                        for start, batch in self._replay
                        if start >= replay_since
                    ]
                if not state:
                    return capture
                if arrays and self.maintainer.supports_state_arrays:
                    capture["state_arrays"] = self.maintainer.state_arrays()
                else:
                    capture["state"] = self.maintainer.state_dict()
                return capture

    # ------------------------------------------------------------------
    # Recovery side (supervisor)
    # ------------------------------------------------------------------

    def replay_batches(self) -> list[tuple[int, np.ndarray]]:
        """The retained (start_arrival, batch) replay log, oldest first."""
        with self._state_lock:
            return list(self._replay)

    def trim_replay(self, min_arrival: int) -> None:
        """Drop replay batches that start before ``min_arrival``.

        The service calls this after a durable checkpoint: only the
        suffix needed to roll forward from the *oldest retained*
        snapshot generation has to stay in memory.
        """
        with self._state_lock:
            self._replay = [
                (start, batch) for start, batch in self._replay
                if start >= min_arrival
            ]

    def drain_pending(self) -> list[np.ndarray]:
        """Take ownership of the not-yet-ingested queue (recovery path).

        Marks the worker stopped so any still-blocked producer is
        released (it will observe the failure and retry through the
        supervisor).
        """
        with self._cv:
            pending = list(self._queue)
            self._queue.clear()
            self._queued_points = 0
            self._stop_requested = True
            self._cv.notify_all()
        return pending

    def stats(self) -> dict:
        """Unified ingest / maintenance / queue telemetry."""
        with self._cv:
            queue_depth = self._queued_points
        maintainer_stats = self.maintainer.stats()
        return {
            "stream": self.name,
            "arrivals": self._pipeline.arrivals,
            "queue_depth": queue_depth,
            "backpressure": self.backpressure,
            "queue_capacity": self.queue_capacity,
            "poison": self.poison,
            "failed": self.failed,
            "maintainer": maintainer_stats.counters(),
            "ingest_seconds": maintainer_stats.ingest_seconds,
            "maintain_seconds": maintainer_stats.maintain_seconds,
            "dead_letter": self.dead_letter.counters(),
            "accuracy": (
                self.accuracy.to_dict() if self.accuracy is not None else None
            ),
            **self.counters.to_dict(),
        }
