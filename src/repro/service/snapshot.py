"""Durable checkpoint storage: binary full + delta snapshots, a manifest.

One directory holds everything a service needs to come back from a
crash.  Three file kinds coexist:

* ``{name}-{seq:08d}.snap`` -- a **format-3 full snapshot**: an 8-byte
  magic, a sha256-guarded JSON header (spec, arrival counter, the state
  skeleton of :func:`repro.runtime.statecodec.flatten_state`), then the
  state's numeric bulk and the buffered tail as raw little-endian
  ``float64``/``int64`` sections, each with its own sha256.  Reading is
  zero-copy: sections become numpy views over the file bytes.
* ``{name}-{seq:08d}.delta`` -- a **delta checkpoint**: only the batches
  ingested since the previous checkpoint plus the current tail, in the
  same header+sections layout.  A chain of deltas hangs off its full
  *base* generation (``base_seq`` in every link); restore loads the base
  and rolls the chain forward.
* ``{name}-{seq:08d}.json`` -- the **format-2 JSON snapshot** older
  stores wrote (and the fallback for payloads without a ``state_arrays``
  fast path).  Still written for such payloads and always readable, so a
  pre-existing JSON directory restores unchanged -- and can serve as the
  base of a new delta chain.

Stream names are percent-encoded into filenames (``_encode_name``), and
``generations()`` matches an exact name + 8-digit-seq pattern, so
prefix-colliding names (``"a"`` vs ``"a-b"``) can never list, prune, or
fall back onto each other's files.

All writes are atomic (temp file + ``fsync`` + ``os.replace`` +
**parent-directory fsync**, so the rename itself survives a crash).
:meth:`SnapshotStore.load_latest` verifies every byte it returns and
falls back generation by generation -- a corrupt delta truncates its
chain to the verified prefix, a corrupt base abandons the chain for the
next older candidate.  Corruption is a typed
:class:`SnapshotCorruptError`; an unreadable or structurally broken
manifest takes the same typed path and is rebuilt from the files on
disk instead of escaping as a raw ``OSError``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import struct
import time
from pathlib import Path

import numpy as np

__all__ = ["SnapshotCorruptError", "SnapshotStore"]

logger = logging.getLogger(__name__)

MANIFEST_NAME = "manifest.json"
SNAPSHOT_FORMAT = 3
#: Formats this store can read; format 1 predates embedded checksums,
#: format 2 is the JSON-payload layout, format 3 the binary layout.
SUPPORTED_FORMATS = (1, 2, 3)
CHECKSUM_FIELD = "checksum"

#: Binary snapshot magic: identifies both the family and the layout rev.
BINARY_MAGIC = b"RPSNAP03"

#: Filename suffix per snapshot kind.
SUFFIX_FULL = ".snap"
SUFFIX_DELTA = ".delta"
SUFFIX_JSON = ".json"
_SUFFIXES = (SUFFIX_JSON, SUFFIX_FULL, SUFFIX_DELTA)

_DTYPES = {"f8": np.dtype("<f8"), "i8": np.dtype("<i8")}

#: Characters allowed verbatim in snapshot filenames; everything else is
#: percent-encoded.  Valid service stream names (letters, digits, ``_``,
#: ``.``) encode to themselves, so legacy filenames stay addressable.
_SAFE_NAME = re.compile(r"[A-Za-z0-9_.]")


class SnapshotCorruptError(ValueError):
    """A snapshot or manifest failed structural / checksum validation."""


def _encode_name(name: str) -> str:
    """Stream name -> filename-safe token (percent-encoding, exact inverse)."""
    return "".join(
        ch if _SAFE_NAME.fullmatch(ch) else
        "".join(f"%{byte:02X}" for byte in ch.encode("utf-8"))
        for ch in name
    )


def _decode_name(token: str) -> str:
    """Inverse of :func:`_encode_name`."""
    out = bytearray()
    i = 0
    while i < len(token):
        if token[i] == "%" and i + 3 <= len(token):
            try:
                out.extend(bytes.fromhex(token[i + 1 : i + 3]))
                i += 3
                continue
            except ValueError:
                pass  # not an escape we wrote; keep the literal "%"
        out.extend(token[i].encode("utf-8"))
        i += 1
    return out.decode("utf-8", errors="replace")


def _payload_checksum(payload: dict) -> str:
    """sha256 over the canonical JSON body (checksum field excluded)."""
    body = {key: value for key, value in payload.items() if key != CHECKSUM_FIELD}
    digest = hashlib.sha256(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return f"sha256:{digest}"


def _fsync_dir(directory: Path, injector=None) -> None:
    """fsync the directory so a completed ``os.replace`` survives a crash.

    Without this the rename lives only in the in-memory directory entry:
    power loss right after the replace can roll the directory back and
    silently lose the "newest" snapshot recovery then trusts.  The
    injector hook lets the chaos suite drop exactly this fsync to prove
    the failure mode is real (and caught).
    """
    if injector is not None and injector.on_dir_fsync(str(directory)):
        return
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes, injector=None) -> None:
    """Atomic durable write: tmp + fsync(file) + replace + fsync(dir)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent, injector)


def _atomic_write_json(path: Path, payload: dict, injector=None) -> None:
    _atomic_write(
        path,
        (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        injector,
    )


def _as_batch_array(values) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(values, dtype=np.float64))


def _encode_binary(header: dict, sections: list[tuple[str, bytes]]) -> bytes:
    """Serialize header + raw sections into the ``RPSNAP03`` layout.

    ``magic | u32 header_len | sha256(header) | header JSON | sections``.
    The per-section offsets/digests are folded into the header before it
    is hashed, so the single header digest also pins the section table.
    """
    offset = 0
    table = []
    for name, data in sections:
        table.append(
            {
                "name": name,
                "offset": offset,
                "nbytes": len(data),
                "sha256": hashlib.sha256(data).hexdigest(),
            }
        )
        offset += len(data)
    header = {**header, "sections": table}
    head = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return b"".join(
        [
            BINARY_MAGIC,
            struct.pack("<I", len(head)),
            hashlib.sha256(head).digest(),
            head,
            *(data for _, data in sections),
        ]
    )


def _decode_binary(raw: bytes, path_name: str) -> tuple[dict, dict[str, memoryview]]:
    """Parse and fully verify one binary snapshot file.

    Returns the header plus a name -> memoryview map of the verified
    sections (views into ``raw``; numpy reads them zero-copy).
    """
    view = memoryview(raw)
    fixed = len(BINARY_MAGIC) + 4 + 32
    if len(raw) < fixed or raw[: len(BINARY_MAGIC)] != BINARY_MAGIC:
        raise SnapshotCorruptError(f"{path_name}: not a binary snapshot")
    (head_len,) = struct.unpack_from("<I", raw, len(BINARY_MAGIC))
    head_start = fixed
    head_end = head_start + head_len
    if head_end > len(raw):
        raise SnapshotCorruptError(f"{path_name}: truncated header")
    head = bytes(view[head_start:head_end])
    stored = bytes(view[len(BINARY_MAGIC) + 4 : fixed])
    if hashlib.sha256(head).digest() != stored:
        raise SnapshotCorruptError(f"{path_name}: header checksum mismatch")
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptError(
            f"{path_name}: header is not valid JSON: {error}"
        ) from error
    if header.get("format") not in SUPPORTED_FORMATS:
        raise SnapshotCorruptError(
            f"unsupported snapshot format {header.get('format')!r}"
        )
    sections: dict[str, memoryview] = {}
    body = view[head_end:]
    for entry in header.get("sections", []):
        start, nbytes = int(entry["offset"]), int(entry["nbytes"])
        if start + nbytes > len(body):
            raise SnapshotCorruptError(
                f"{path_name}: section {entry['name']!r} exceeds file size"
            )
        data = body[start : start + nbytes]
        if hashlib.sha256(data).hexdigest() != entry["sha256"]:
            raise SnapshotCorruptError(
                f"{path_name}: section {entry['name']!r} checksum mismatch"
            )
        sections[entry["name"]] = data
    return header, sections


def _split_arrays(arrays) -> tuple[list[list], bytes]:
    """(dtype/count table, concatenated little-endian bytes) of arrays."""
    table = []
    chunks = []
    for array in arrays:
        code = "i8" if array.dtype.kind == "i" else "f8"
        data = np.ascontiguousarray(array, dtype=_DTYPES[code])
        table.append([code, int(data.size)])
        chunks.append(data.tobytes())
    return table, b"".join(chunks)


def _join_arrays(table, section: memoryview) -> list[np.ndarray]:
    """Inverse of :func:`_split_arrays`: zero-copy views into the section."""
    arrays = []
    offset = 0
    for code, count in table:
        dtype = _DTYPES[code]
        nbytes = dtype.itemsize * int(count)
        arrays.append(
            np.frombuffer(section[offset : offset + nbytes], dtype=dtype)
        )
        offset += nbytes
    return arrays


class SnapshotStore:
    """Snapshot directory manager for one service.

    ``keep`` bounds the retained generations per stream (>= 1; the
    default of 2 keeps one fallback generation behind the newest).
    Generations are counted in *full* snapshots: a delta chain lives and
    dies with its base, so pruning keeps the last ``keep`` bases plus
    every delta hanging off them and can never strand a delta.  An
    optional :class:`~repro.service.faults.FaultInjector` is consulted
    before every write so chaos suites can fail snapshots on schedule.
    """

    def __init__(
        self, directory, *, keep: int = 2, fault_injector=None, registry=None
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._injector = fault_injector
        self._registry = registry
        self._manifest_path = self.directory / MANIFEST_NAME
        self.counters = {
            "writes": 0,
            "write_failures": 0,
            "corrupt_snapshots": 0,
            "fallback_loads": 0,
            "cleanup_errors": 0,
        }

    def _count(self, key: str, stream: str | None = None) -> None:
        """Bump a counter; mirrored per stream onto the registry if any."""
        self.counters[key] += 1
        if self._registry is not None:
            labels = {"stream": stream} if stream is not None else {}
            self._registry.counter(f"repro_snapshot_{key}_total", **labels).inc()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def manifest(self) -> dict:
        """The current manifest (empty skeleton if none exists yet).

        Raises :class:`SnapshotCorruptError` for *any* unreadable or
        structurally invalid manifest -- invalid JSON, truncation to
        emptiness, permission/IO failures, a non-object payload -- never
        a raw ``OSError``.  Internal callers recover through
        :meth:`_manifest_or_rebuild`.
        """
        if not self._manifest_path.exists():
            return {"format": SNAPSHOT_FORMAT, "streams": {}}
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise SnapshotCorruptError(
                f"manifest {self._manifest_path} is not valid JSON: {error}"
            ) from error
        except OSError as error:
            raise SnapshotCorruptError(
                f"manifest {self._manifest_path} is unreadable: {error}"
            ) from error
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("streams"), dict
        ):
            raise SnapshotCorruptError(
                f"manifest {self._manifest_path} is not a manifest object"
            )
        if manifest.get("format") not in SUPPORTED_FORMATS:
            raise SnapshotCorruptError(
                f"unsupported snapshot format {manifest.get('format')!r}"
            )
        return manifest

    def _manifest_or_rebuild(self) -> dict:
        """The manifest, rebuilt from the on-disk files when corrupt.

        The rebuilt skeleton points every stream at its newest on-disk
        generation; sequence numbers continue from the on-disk maximum
        so replacement writes can never collide with surviving files.
        """
        try:
            return self.manifest()
        except SnapshotCorruptError as error:
            self._count("corrupt_snapshots")
            logger.warning("rebuilding manifest: %s", error)
        streams: dict[str, dict] = {}
        for path in self.directory.iterdir():
            parsed = _parse_snapshot_name(path.name)
            if parsed is None:
                continue
            name, seq, kind = parsed
            entry = streams.get(name)
            if entry is None or seq > entry["seq"]:
                streams[name] = {"file": path.name, "seq": seq, "kind": kind}
        return {"format": SNAPSHOT_FORMAT, "streams": streams}

    def streams(self) -> list[str]:
        """Stream names with at least one snapshot, sorted."""
        return sorted(self._manifest_or_rebuild()["streams"])

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------

    def write(self, name: str, payload: dict) -> Path:
        """Persist one full stream snapshot and point the manifest at it.

        A payload carrying ``state_arrays`` (the
        :meth:`~repro.runtime.maintainer.Maintainer.state_arrays` pair)
        and/or numpy ``tail`` batches is written as a format-3 binary
        ``.snap``; any other payload takes the format-2 JSON path
        unchanged.  The snapshot file is written before the manifest
        entry, so a crash between the two at worst leaves an orphaned
        file, never a dangling manifest reference.  Write failures
        (including injected ones) are counted and re-raised; the
        previous generation and the manifest are left untouched.
        """
        manifest = self._manifest_or_rebuild()
        entry = manifest["streams"].get(name, {})
        seq = int(entry.get("seq", 0)) + 1
        binary = "state_arrays" in payload
        suffix = SUFFIX_FULL if binary else SUFFIX_JSON
        filename = f"{_encode_name(name)}-{seq:08d}{suffix}"
        path = self.directory / filename
        created_at = time.time()
        try:
            if self._injector is not None:
                self._injector.on_snapshot_write(name, seq)
            if binary:
                data, checksum = self._encode_full(
                    name, seq, created_at, payload
                )
                _atomic_write(path, data, self._injector)
            else:
                body = {
                    "format": 2,
                    "stream": name,
                    "seq": seq,
                    "created_at": created_at,
                    **payload,
                }
                checksum = body[CHECKSUM_FIELD] = _payload_checksum(body)
                _atomic_write_json(path, body, self._injector)
            manifest["streams"][name] = {
                "file": filename,
                "seq": seq,
                "kind": "full",
                "arrivals": int(payload.get("arrivals", 0)),
                "created_at": created_at,
                CHECKSUM_FIELD: checksum,
            }
            _atomic_write_json(self._manifest_path, manifest, self._injector)
        except OSError:
            self._count("write_failures", name)
            raise
        self._count("writes", name)
        self._prune(name)
        return path

    def write_delta(
        self,
        name: str,
        *,
        arrivals: int,
        from_arrivals: int,
        batches,
        tail,
    ) -> Path:
        """Persist a delta checkpoint chained onto the newest generation.

        ``batches`` are the ``(start_arrival, batch)`` pairs ingested
        since the previous checkpoint (which ended at ``from_arrivals``);
        ``tail`` is the currently buffered, not-yet-ingested suffix.
        Raises ``ValueError`` when the stream has no manifest head to
        chain from -- the caller falls back to a full snapshot.
        """
        manifest = self._manifest_or_rebuild()
        entry = manifest["streams"].get(name)
        if entry is None:
            raise ValueError(f"stream {name!r} has no base snapshot to extend")
        seq = int(entry.get("seq", 0)) + 1
        base_seq = int(entry.get("base_seq", entry.get("seq", 0)))
        filename = f"{_encode_name(name)}-{seq:08d}{SUFFIX_DELTA}"
        path = self.directory / filename
        created_at = time.time()
        batch_arrays = [
            (int(start), _as_batch_array(batch)) for start, batch in batches
        ]
        tail_arrays = [_as_batch_array(batch) for batch in tail]
        header = {
            "format": SNAPSHOT_FORMAT,
            "kind": "delta",
            "stream": name,
            "seq": seq,
            "base_seq": base_seq,
            "prev_seq": int(entry.get("seq", 0)),
            "created_at": created_at,
            "arrivals": int(arrivals),
            "from_arrivals": int(from_arrivals),
            "batch_starts": [start for start, _ in batch_arrays],
            "batch_lengths": [int(b.size) for _, b in batch_arrays],
            "tail_lengths": [int(b.size) for b in tail_arrays],
        }
        sections = [
            ("batches", b"".join(b.tobytes() for _, b in batch_arrays)),
            ("tail", b"".join(b.tobytes() for b in tail_arrays)),
        ]
        try:
            if self._injector is not None:
                self._injector.on_snapshot_write(name, seq)
            _atomic_write(path, _encode_binary(header, sections), self._injector)
            manifest["streams"][name] = {
                "file": filename,
                "seq": seq,
                "kind": "delta",
                "base_seq": base_seq,
                "arrivals": int(arrivals),
                "created_at": created_at,
            }
            _atomic_write_json(self._manifest_path, manifest, self._injector)
        except OSError:
            self._count("write_failures", name)
            raise
        self._count("writes", name)
        return path

    def _encode_full(
        self, name: str, seq: int, created_at: float, payload: dict
    ) -> tuple[bytes, str]:
        """Binary-encode a full snapshot payload; returns (bytes, checksum)."""
        payload = dict(payload)
        skeleton, arrays = payload.pop("state_arrays")
        tail_arrays = [_as_batch_array(b) for b in payload.pop("tail", [])]
        table, state_blob = _split_arrays(arrays)
        header = {
            "format": SNAPSHOT_FORMAT,
            "kind": "full",
            "stream": name,
            "seq": seq,
            "created_at": created_at,
            "arrivals": int(payload.get("arrivals", 0)),
            "meta": payload,
            "state_skeleton": skeleton,
            "state_arrays": table,
            "tail_lengths": [int(b.size) for b in tail_arrays],
        }
        sections = [
            ("state", state_blob),
            ("tail", b"".join(b.tobytes() for b in tail_arrays)),
        ]
        data = _encode_binary(header, sections)
        digest = hashlib.sha256(
            data[len(BINARY_MAGIC) + 4 : len(BINARY_MAGIC) + 36]
        ).hexdigest()
        return data, f"sha256:{digest}"

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def load_latest(self, name: str) -> dict:
        """The most recent *verifiable* snapshot payload of ``name``.

        Tries the manifest's newest generation first, then falls back to
        older on-disk generations (newest first) whenever a file is
        corrupt, truncated, missing, or fails a checksum.  A delta head
        resolves its whole chain: the base is loaded, the verified delta
        prefix is folded into the returned payload's ``tail`` (so the
        restored worker replays exactly the points the deltas recorded),
        and a corrupt link truncates the chain at the last good delta.
        Raises ``KeyError`` when the stream has no snapshot at all and
        :class:`SnapshotCorruptError` when every generation is bad.
        """
        candidates: list[Path] = []
        entry = self._manifest_or_rebuild()["streams"].get(name)
        if entry is not None:
            candidates.append(self.directory / entry["file"])
        for path in reversed(self.generations(name)):
            if path not in candidates:
                candidates.append(path)
        if not candidates:
            raise KeyError(f"no snapshot recorded for stream {name!r}")
        failures: list[str] = []
        for position, path in enumerate(candidates):
            try:
                payload = self._resolve(path, name)
            except SnapshotCorruptError as error:
                self._count("corrupt_snapshots", name)
                logger.warning("snapshot %s rejected: %s", path.name, error)
                failures.append(f"{path.name}: {error}")
                continue
            if position > 0:
                self._count("fallback_loads", name)
                logger.warning(
                    "stream %r: fell back to snapshot generation %s",
                    name, path.name,
                )
            return payload
        raise SnapshotCorruptError(
            f"every snapshot generation of stream {name!r} is corrupt: "
            + "; ".join(failures)
        )

    def generations(self, name: str) -> list[Path]:
        """On-disk snapshot files of exactly ``name``, oldest first.

        Matches the precise ``{encoded-name}-{8 digits}{suffix}``
        pattern, so stream ``"a"`` never sees ``"a-b"``'s files (the
        old ``{name}-*.json`` glob did).
        """
        token = re.escape(_encode_name(name))
        pattern = re.compile(
            rf"^{token}-(\d{{8}})({'|'.join(re.escape(s) for s in _SUFFIXES)})$"
        )
        matches = []
        for path in self.directory.iterdir():
            match = pattern.match(path.name)
            if match is not None:
                matches.append((int(match.group(1)), path))
        return [path for _, path in sorted(matches)]

    def _resolve(self, path: Path, name: str) -> dict:
        """Verified payload of one head candidate (chain-resolved)."""
        if path.name.endswith(SUFFIX_JSON):
            return self._load_verified(path, name)
        header, sections = self._load_binary(path, name)
        if header.get("kind") == "delta":
            return self._resolve_chain(header, name)
        return self._full_payload(header, sections)

    def _load_binary(self, path: Path, name: str):
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise SnapshotCorruptError(
                f"unreadable snapshot {path.name}: {error}"
            ) from error
        header, sections = _decode_binary(raw, path.name)
        if header.get("stream") != name:
            raise SnapshotCorruptError(
                f"snapshot {path.name} belongs to stream "
                f"{header.get('stream')!r}, not {name!r}"
            )
        return header, sections

    def _full_payload(self, header: dict, sections) -> dict:
        arrays = _join_arrays(
            header.get("state_arrays", []), sections.get("state", b"")
        )
        payload = {
            "format": header["format"],
            "stream": header["stream"],
            "seq": header["seq"],
            "created_at": header["created_at"],
            "arrivals": header.get("arrivals", 0),
            **header.get("meta", {}),
            "state_arrays": (header.get("state_skeleton"), arrays),
            "tail": _split_tail(
                header.get("tail_lengths", []), sections.get("tail", b"")
            ),
        }
        return payload

    def _resolve_chain(self, head: dict, name: str) -> dict:
        """Base payload + the verified delta prefix up to ``head``.

        The chain is replayed positionally: starting at the base's
        arrival counter, a delta batch is accepted when it starts
        exactly at the current position, skipped when it re-states an
        already-covered range (a delta written after a mid-chain restore
        does that), and the chain is truncated at the first gap or
        unverifiable link.  Each delta carries the tail as of its
        checkpoint, so truncation at any link still yields the
        consistent (state, arrivals, tail) triple that link persisted.
        """
        base_seq = int(head["base_seq"])
        base_path = self._chain_file(name, base_seq)
        if base_path is None:
            raise SnapshotCorruptError(
                f"delta chain of stream {name!r} has no base generation "
                f"{base_seq:08d}"
            )
        payload = self._resolve(base_path, name)  # full .snap or legacy .json
        position = int(payload.get("arrivals", 0))
        accepted: list[np.ndarray] = []
        tail = payload.get("tail", payload.get("pending", []))
        truncated = False
        for seq in range(base_seq + 1, int(head["seq"]) + 1):
            delta_path = self._chain_file(name, seq, delta=True)
            if delta_path is None:
                truncated = True
                break
            try:
                header, sections = self._load_binary(delta_path, name)
                if header.get("kind") != "delta" or int(header["base_seq"]) != base_seq:
                    raise SnapshotCorruptError(
                        f"{delta_path.name}: not a link of chain base "
                        f"{base_seq:08d}"
                    )
                batches = _split_batches(header, sections["batches"])
            except SnapshotCorruptError as error:
                self._count("corrupt_snapshots", name)
                logger.warning("delta %s rejected: %s", delta_path.name, error)
                truncated = True
                break
            advanced = False
            gap = False
            for start, batch in batches:
                if start == position:
                    accepted.append(batch)
                    position += int(batch.size)
                    advanced = True
                elif start + int(batch.size) <= position:
                    continue  # already covered by an earlier link
                else:
                    gap = True
                    break
            if gap:
                self._count("corrupt_snapshots", name)
                logger.warning(
                    "delta %s leaves an arrival gap at %d; chain truncated",
                    delta_path.name, position,
                )
                truncated = True
                break
            if advanced or int(header.get("arrivals", position)) == position:
                tail = _split_tail(
                    header.get("tail_lengths", []), sections.get("tail", b"")
                )
        if truncated:
            self._count("fallback_loads", name)
        payload["tail"] = list(accepted) + list(tail)
        return payload

    def _chain_file(
        self, name: str, seq: int, *, delta: bool = False
    ) -> Path | None:
        """The on-disk file of generation ``seq``, if any."""
        stem = f"{_encode_name(name)}-{seq:08d}"
        suffixes = (SUFFIX_DELTA,) if delta else (SUFFIX_FULL, SUFFIX_JSON)
        for suffix in suffixes:
            path = self.directory / (stem + suffix)
            if path.exists():
                return path
        return None

    def _load_verified(self, path: Path, name: str) -> dict:
        try:
            text = path.read_text()
        except OSError as error:
            raise SnapshotCorruptError(
                f"unreadable snapshot {path.name}: {error}"
            ) from error
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SnapshotCorruptError(
                f"snapshot {path.name} is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise SnapshotCorruptError(
                f"snapshot {path.name} is not a JSON object"
            )
        if payload.get("format") not in SUPPORTED_FORMATS:
            raise SnapshotCorruptError(
                f"unsupported snapshot format {payload.get('format')!r}"
            )
        if payload.get("stream") != name:
            raise SnapshotCorruptError(
                f"snapshot {path.name} belongs to stream "
                f"{payload.get('stream')!r}, not {name!r}"
            )
        if payload.get("format", 0) >= 2:
            stored = payload.get(CHECKSUM_FIELD)
            expected = _payload_checksum(payload)
            if stored != expected:
                raise SnapshotCorruptError(
                    f"checksum mismatch in {path.name}: "
                    f"stored {stored!r}, computed {expected!r}"
                )
        return payload

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def _prune(self, name: str) -> None:
        """Drop generations beyond ``keep``, counting (not hiding) errors.

        ``keep`` counts full snapshots; everything older than the oldest
        retained full is deleted.  Deltas between retained fulls (or
        after the newest) survive with their base, so the cut can never
        strand a delta whose base is gone.
        """
        files = self.generations(name)
        full_seqs = [
            path_seq(path)
            for path in files
            if not path.name.endswith(SUFFIX_DELTA)
        ]
        if len(full_seqs) <= self.keep:
            return
        cutoff = full_seqs[-self.keep]
        for stale in files:
            if path_seq(stale) >= cutoff:
                continue
            try:
                stale.unlink()
            except OSError as error:
                self._count("cleanup_errors", name)
                logger.warning(
                    "could not remove stale snapshot %s: %s", stale, error
                )


def _parse_snapshot_name(filename: str) -> tuple[str, int, str] | None:
    """(decoded stream name, seq, kind) of a snapshot filename, or None."""
    match = re.match(
        rf"^(.+)-(\d{{8}})({'|'.join(re.escape(s) for s in _SUFFIXES)})$",
        filename,
    )
    if match is None:
        return None
    kind = "delta" if match.group(3) == SUFFIX_DELTA else "full"
    return _decode_name(match.group(1)), int(match.group(2)), kind


def path_seq(path: Path) -> int:
    """Sequence number embedded in a snapshot filename."""
    parsed = _parse_snapshot_name(path.name)
    if parsed is None:
        raise ValueError(f"{path.name} is not a snapshot filename")
    return parsed[1]


def _split_tail(lengths, section) -> list[np.ndarray]:
    """Tail section -> list of float64 batch views."""
    batches = []
    offset = 0
    for length in lengths:
        nbytes = 8 * int(length)
        batches.append(
            np.frombuffer(section[offset : offset + nbytes], dtype="<f8")
        )
        offset += nbytes
    return batches


def _split_batches(header: dict, section) -> list[tuple[int, np.ndarray]]:
    """Delta batches section -> (start_arrival, batch) views."""
    starts = header.get("batch_starts", [])
    lengths = header.get("batch_lengths", [])
    if len(starts) != len(lengths):
        raise SnapshotCorruptError("delta batch table is inconsistent")
    batches = []
    offset = 0
    for start, length in zip(starts, lengths):
        nbytes = 8 * int(length)
        if offset + nbytes > len(section):
            raise SnapshotCorruptError("delta batches exceed section size")
        batches.append(
            (
                int(start),
                np.frombuffer(section[offset : offset + nbytes], dtype="<f8"),
            )
        )
        offset += nbytes
    return batches
