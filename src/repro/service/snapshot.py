"""Durable checkpoint storage: JSON snapshots plus a manifest.

One directory holds everything a service needs to come back from a
crash: a numbered snapshot file per checkpoint (stream spec, maintainer
``state_dict``, arrival counter, and the buffered-but-unprocessed tail)
and a ``manifest.json`` naming the latest snapshot of every stream.
Both are written atomically (temp file + ``os.replace``), so a crash
mid-checkpoint leaves the previous snapshot intact -- the manifest never
points at a torn file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["SnapshotStore"]

MANIFEST_NAME = "manifest.json"
SNAPSHOT_FORMAT = 1


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


class SnapshotStore:
    """Snapshot directory manager for one service."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / MANIFEST_NAME

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def manifest(self) -> dict:
        """The current manifest (empty skeleton if none exists yet)."""
        if not self._manifest_path.exists():
            return {"format": SNAPSHOT_FORMAT, "streams": {}}
        manifest = json.loads(self._manifest_path.read_text())
        if manifest.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported snapshot format {manifest.get('format')!r}"
            )
        return manifest

    def streams(self) -> list[str]:
        """Stream names with at least one snapshot, sorted."""
        return sorted(self.manifest()["streams"])

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------

    def write(self, name: str, payload: dict) -> Path:
        """Persist one stream snapshot and point the manifest at it.

        The snapshot file is written before the manifest entry, so a
        crash between the two at worst leaves an orphaned file, never a
        dangling manifest reference.
        """
        manifest = self.manifest()
        entry = manifest["streams"].get(name, {})
        seq = int(entry.get("seq", 0)) + 1
        filename = f"{name}-{seq:08d}.json"
        payload = {
            "format": SNAPSHOT_FORMAT,
            "stream": name,
            "seq": seq,
            "created_at": time.time(),
            **payload,
        }
        path = self.directory / filename
        _atomic_write_json(path, payload)
        manifest["streams"][name] = {
            "file": filename,
            "seq": seq,
            "arrivals": payload.get("arrivals", 0),
            "created_at": payload["created_at"],
        }
        _atomic_write_json(self._manifest_path, manifest)
        self._prune(name, keep_before=filename)
        return path

    def load_latest(self, name: str) -> dict:
        """The most recent snapshot payload of ``name``."""
        entry = self.manifest()["streams"].get(name)
        if entry is None:
            raise KeyError(f"no snapshot recorded for stream {name!r}")
        path = self.directory / entry["file"]
        payload = json.loads(path.read_text())
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported snapshot format {payload.get('format')!r}"
            )
        if payload.get("stream") != name:
            raise ValueError(
                f"snapshot {path.name} belongs to stream "
                f"{payload.get('stream')!r}, not {name!r}"
            )
        return payload

    def _prune(self, name: str, keep_before: str) -> None:
        """Drop superseded snapshot files of one stream (best effort)."""
        for stale in self.directory.glob(f"{name}-*.json"):
            if stale.name != keep_before:
                try:
                    stale.unlink()
                except OSError:
                    pass
