"""Durable checkpoint storage: checksummed JSON snapshots plus a manifest.

One directory holds everything a service needs to come back from a
crash: a numbered snapshot file per checkpoint (stream spec, maintainer
``state_dict``, arrival counter, and the buffered-but-unprocessed tail)
and a ``manifest.json`` naming the latest snapshot of every stream.
Both are written atomically (temp file + ``fsync`` + ``os.replace``),
so a crash mid-checkpoint leaves the previous snapshot intact -- the
manifest never points at a torn file.

Integrity is verified on every load: format-2 snapshots embed a sha256
checksum over their canonical JSON body, and :meth:`SnapshotStore.
load_latest` falls back generation by generation when the newest file
is corrupt, truncated, missing, or fails its checksum -- the store
retains the last ``keep`` generations per stream precisely so a single
bad write (or disk bitrot) cannot take recovery down.  Corruption is a
typed :class:`SnapshotCorruptError`; cleanup problems are logged and
counted instead of silently swallowed.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from pathlib import Path

__all__ = ["SnapshotCorruptError", "SnapshotStore"]

logger = logging.getLogger(__name__)

MANIFEST_NAME = "manifest.json"
SNAPSHOT_FORMAT = 2
#: Formats this store can read; format 1 predates embedded checksums.
SUPPORTED_FORMATS = (1, 2)
CHECKSUM_FIELD = "checksum"


class SnapshotCorruptError(ValueError):
    """A snapshot or manifest failed structural / checksum validation."""


def _payload_checksum(payload: dict) -> str:
    """sha256 over the canonical JSON body (checksum field excluded)."""
    body = {key: value for key, value in payload.items() if key != CHECKSUM_FIELD}
    digest = hashlib.sha256(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return f"sha256:{digest}"


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class SnapshotStore:
    """Snapshot directory manager for one service.

    ``keep`` bounds the retained generations per stream (>= 1; the
    default of 2 keeps one fallback generation behind the newest).  An
    optional :class:`~repro.service.faults.FaultInjector` is consulted
    before every write so chaos suites can fail snapshots on schedule.
    """

    def __init__(
        self, directory, *, keep: int = 2, fault_injector=None, registry=None
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._injector = fault_injector
        self._registry = registry
        self._manifest_path = self.directory / MANIFEST_NAME
        self.counters = {
            "writes": 0,
            "write_failures": 0,
            "corrupt_snapshots": 0,
            "fallback_loads": 0,
            "cleanup_errors": 0,
        }

    def _count(self, key: str, stream: str | None = None) -> None:
        """Bump a counter; mirrored per stream onto the registry if any."""
        self.counters[key] += 1
        if self._registry is not None:
            labels = {"stream": stream} if stream is not None else {}
            self._registry.counter(f"repro_snapshot_{key}_total", **labels).inc()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def manifest(self) -> dict:
        """The current manifest (empty skeleton if none exists yet)."""
        if not self._manifest_path.exists():
            return {"format": SNAPSHOT_FORMAT, "streams": {}}
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise SnapshotCorruptError(
                f"manifest {self._manifest_path} is not valid JSON: {error}"
            ) from error
        if manifest.get("format") not in SUPPORTED_FORMATS:
            raise SnapshotCorruptError(
                f"unsupported snapshot format {manifest.get('format')!r}"
            )
        return manifest

    def streams(self) -> list[str]:
        """Stream names with at least one snapshot, sorted."""
        return sorted(self.manifest()["streams"])

    # ------------------------------------------------------------------
    # Write / read
    # ------------------------------------------------------------------

    def write(self, name: str, payload: dict) -> Path:
        """Persist one stream snapshot and point the manifest at it.

        The snapshot file is written before the manifest entry, so a
        crash between the two at worst leaves an orphaned file, never a
        dangling manifest reference.  Write failures (including injected
        ones) are counted and re-raised; the previous generation and the
        manifest are left untouched.
        """
        manifest = self.manifest()
        entry = manifest["streams"].get(name, {})
        seq = int(entry.get("seq", 0)) + 1
        filename = f"{name}-{seq:08d}.json"
        payload = {
            "format": SNAPSHOT_FORMAT,
            "stream": name,
            "seq": seq,
            "created_at": time.time(),
            **payload,
        }
        payload[CHECKSUM_FIELD] = _payload_checksum(payload)
        path = self.directory / filename
        try:
            if self._injector is not None:
                self._injector.on_snapshot_write(name, seq)
            _atomic_write_json(path, payload)
            manifest["streams"][name] = {
                "file": filename,
                "seq": seq,
                "arrivals": payload.get("arrivals", 0),
                "created_at": payload["created_at"],
                CHECKSUM_FIELD: payload[CHECKSUM_FIELD],
            }
            _atomic_write_json(self._manifest_path, manifest)
        except OSError:
            self._count("write_failures", name)
            raise
        self._count("writes", name)
        self._prune(name)
        return path

    def load_latest(self, name: str) -> dict:
        """The most recent *verifiable* snapshot payload of ``name``.

        Tries the manifest's newest generation first, then falls back to
        older on-disk generations (newest first) whenever a file is
        corrupt, truncated, missing, or fails its checksum.  Raises
        ``KeyError`` when the stream has no snapshot at all and
        :class:`SnapshotCorruptError` when every generation is bad.
        """
        candidates: list[Path] = []
        entry = self.manifest()["streams"].get(name)
        if entry is not None:
            candidates.append(self.directory / entry["file"])
        for path in sorted(self.generations(name), reverse=True):
            if path not in candidates:
                candidates.append(path)
        if not candidates:
            raise KeyError(f"no snapshot recorded for stream {name!r}")
        failures: list[str] = []
        for position, path in enumerate(candidates):
            try:
                payload = self._load_verified(path, name)
            except SnapshotCorruptError as error:
                self._count("corrupt_snapshots", name)
                logger.warning("snapshot %s rejected: %s", path.name, error)
                failures.append(f"{path.name}: {error}")
                continue
            if position > 0:
                self._count("fallback_loads", name)
                logger.warning(
                    "stream %r: fell back to snapshot generation %s",
                    name, path.name,
                )
            return payload
        raise SnapshotCorruptError(
            f"every snapshot generation of stream {name!r} is corrupt: "
            + "; ".join(failures)
        )

    def generations(self, name: str) -> list[Path]:
        """On-disk snapshot files of ``name``, oldest first."""
        return sorted(self.directory.glob(f"{name}-*.json"))

    def _load_verified(self, path: Path, name: str) -> dict:
        try:
            text = path.read_text()
        except OSError as error:
            raise SnapshotCorruptError(
                f"unreadable snapshot {path.name}: {error}"
            ) from error
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SnapshotCorruptError(
                f"snapshot {path.name} is not valid JSON: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise SnapshotCorruptError(
                f"snapshot {path.name} is not a JSON object"
            )
        if payload.get("format") not in SUPPORTED_FORMATS:
            raise SnapshotCorruptError(
                f"unsupported snapshot format {payload.get('format')!r}"
            )
        if payload.get("stream") != name:
            raise SnapshotCorruptError(
                f"snapshot {path.name} belongs to stream "
                f"{payload.get('stream')!r}, not {name!r}"
            )
        if payload.get("format", 0) >= 2:
            stored = payload.get(CHECKSUM_FIELD)
            expected = _payload_checksum(payload)
            if stored != expected:
                raise SnapshotCorruptError(
                    f"checksum mismatch in {path.name}: "
                    f"stored {stored!r}, computed {expected!r}"
                )
        return payload

    def _prune(self, name: str) -> None:
        """Drop generations beyond ``keep``, counting (not hiding) errors."""
        files = self.generations(name)
        for stale in files[: max(0, len(files) - self.keep)]:
            try:
                stale.unlink()
            except OSError as error:
                self._count("cleanup_errors", name)
                logger.warning(
                    "could not remove stale snapshot %s: %s", stale, error
                )
