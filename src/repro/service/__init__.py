"""repro.service -- the concurrent multi-stream synopsis service.

The serving layer over :mod:`repro.runtime`: a :class:`StreamService`
hosts many named streams, each a registry-built maintainer behind a
bounded ingest queue drained by a worker thread, with snapshot-isolated
queries (``range_sum`` / ``quantile`` / ``histogram`` / ``stats``) and
durable checkpoint/restore via JSON snapshots plus a manifest.  See
``docs/API.md`` ("Service layer") and the README serving quickstart.
"""

from .queries import (
    MaterializedView,
    UnsupportedQueryError,
    freeze_synopsis,
    view_histogram,
    view_quantile,
    view_range_sum,
)
from .service import StreamService, StreamSpec, UnknownStreamError
from .snapshot import SnapshotStore
from .stream_worker import BackpressureError, StreamWorker, WorkerCounters

__all__ = [
    "BackpressureError",
    "MaterializedView",
    "SnapshotStore",
    "StreamService",
    "StreamSpec",
    "StreamWorker",
    "UnknownStreamError",
    "UnsupportedQueryError",
    "WorkerCounters",
    "freeze_synopsis",
    "view_histogram",
    "view_quantile",
    "view_range_sum",
]
