"""repro.service -- the concurrent multi-stream synopsis service.

The serving layer over :mod:`repro.runtime`: a :class:`StreamService`
hosts many named streams, each a registry-built maintainer behind a
bounded ingest queue drained by a worker thread, with snapshot-isolated
queries (``range_sum`` / ``quantile`` / ``histogram`` / ``stats``) and
durable checkpoint/restore via checksummed JSON snapshots plus a
manifest.  The fault-tolerance subsystem -- worker supervision with
bounded-backoff restarts (:class:`StreamSupervisor`), poison-record
quarantine (:class:`DeadLetterBuffer`), snapshot generation fallback,
per-stream health states, and the deterministic :class:`FaultInjector`
chaos harness -- keeps hosted synopses exact across crashes.  The QoS
layer (:class:`QoSConfig` / :class:`QoSController`) adds multi-tenant
admission control and a graceful-degradation ladder so overload sheds
low-priority load deterministically instead of failing everyone.  See
``docs/API.md`` ("Service layer", "Fault tolerance" and "QoS") and the
README serving quickstart.
"""

from .deadletter import DeadLetterBuffer, DeadLetterRecord
from .faults import FaultInjector, InjectedFault
from .queries import (
    MaterializedView,
    UnsupportedQueryError,
    freeze_synopsis,
    view_histogram,
    view_quantile,
    view_range_sum,
)
from .protocol import ServiceProtocol
from .qos import (
    DEGRADATION_LEVELS,
    QoSConfig,
    QoSController,
    QuotaExceededError,
    TenantQuota,
)
from .service import StreamService, StreamSpec, UnknownStreamError
from .snapshot import SnapshotCorruptError, SnapshotStore
from .stream_worker import (
    BackpressureError,
    StreamWorker,
    WorkerCounters,
    WorkerFailedError,
)
from .supervisor import RestartPolicy, StreamFailedError, StreamSupervisor

__all__ = [
    "BackpressureError",
    "DEGRADATION_LEVELS",
    "DeadLetterBuffer",
    "DeadLetterRecord",
    "FaultInjector",
    "InjectedFault",
    "MaterializedView",
    "QoSConfig",
    "QoSController",
    "QuotaExceededError",
    "RestartPolicy",
    "ServiceProtocol",
    "SnapshotCorruptError",
    "SnapshotStore",
    "StreamFailedError",
    "StreamService",
    "StreamSpec",
    "StreamSupervisor",
    "StreamWorker",
    "TenantQuota",
    "UnknownStreamError",
    "UnsupportedQueryError",
    "WorkerCounters",
    "WorkerFailedError",
    "freeze_synopsis",
    "view_histogram",
    "view_quantile",
    "view_range_sum",
]
