"""Deterministic fault injection for the service layer.

A :class:`FaultInjector` carries a *schedule* of faults -- crash the
worker of a stream once arrival N is reached, fail the next snapshot
write, slow an ingest round down -- and is threaded through
:class:`~repro.service.stream_worker.StreamWorker` and
:class:`~repro.service.snapshot.SnapshotStore` hooks.  Because faults
fire at exact stream positions (not wall-clock times) a chaos run is
fully reproducible: the same schedule over the same data produces the
same crash points, the same recovery replays, and therefore -- by the
determinism of the synopses -- the same recovered state.

The optional seed drives :meth:`crash_points`, which draws crash
arrivals from a seeded generator so randomized chaos suites stay
deterministic across runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["FaultInjector", "InjectedFault"]


class InjectedFault(RuntimeError):
    """A scheduled crash raised by a :class:`FaultInjector`.

    Stream workers treat this as *fatal* (the simulated process death),
    never as a poison record: the batch being fed is preserved for
    replay and the worker thread dies, which is exactly what the
    supervisor is there to detect.
    """


@dataclass
class _ScheduledFault:
    kind: str  # crash | slow | snapshot | slow_control | drop_frame | dir_fsync
    stream: str | None  # None matches every stream (or verb, slow_control)
    at_arrival: int | None = None
    at_seq: int | None = None
    seconds: float = 0.0
    remaining: int = 1

    def matches(self, stream: str) -> bool:
        return self.stream is None or self.stream == stream


class FaultInjector:
    """Seeded, thread-safe schedule of service-layer faults.

    Schedule faults with :meth:`crash_at`, :meth:`slow_ingest_at` and
    :meth:`fail_snapshot_write`; the service components call the
    ``on_*`` hooks, which fire each scheduled fault at most ``times``
    times and append an audit entry to :attr:`events`.
    """

    def __init__(self, seed: int | None = None) -> None:
        self.rng = np.random.default_rng(seed)
        self.events: list[dict] = []
        self._faults: list[_ScheduledFault] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def crash_at(
        self, at_arrival: int | None = None, *, stream: str | None = None,
        times: int = 1,
    ) -> "FaultInjector":
        """Kill the worker once its feed reaches ``at_arrival`` points.

        With ``at_arrival=None`` the very next ingest round crashes.
        Returns ``self`` so schedules chain fluently.
        """
        self._faults.append(
            _ScheduledFault("crash", stream, at_arrival=at_arrival, remaining=times)
        )
        return self

    def slow_ingest_at(
        self, at_arrival: int, seconds: float, *, stream: str | None = None,
        times: int = 1,
    ) -> "FaultInjector":
        """Sleep ``seconds`` in the worker when ``at_arrival`` is reached."""
        self._faults.append(
            _ScheduledFault(
                "slow", stream, at_arrival=at_arrival, seconds=seconds,
                remaining=times,
            )
        )
        return self

    def fail_snapshot_write(
        self, *, stream: str | None = None, at_seq: int | None = None,
        times: int = 1,
    ) -> "FaultInjector":
        """Make snapshot writes raise ``OSError`` (``times`` shots).

        With ``at_seq`` only that snapshot sequence number fails;
        otherwise the next matching write does.
        """
        self._faults.append(
            _ScheduledFault("snapshot", stream, at_seq=at_seq, remaining=times)
        )
        return self

    def slow_control_at(
        self, verb: str | None = None, seconds: float = 1.0, *, times: int = 1,
    ) -> "FaultInjector":
        """Wedge a shard's control plane: sleep before answering ``verb``.

        Fires in the shard process (the injector crosses the fork with
        the spawn options), delaying the reply to the next ``times``
        matching control verbs -- a deterministic stand-in for a wedged
        shard, used to exercise the router's per-verb deadlines and
        circuit breaker without killing real processes.  ``verb=None``
        matches every verb.
        """
        self._faults.append(
            _ScheduledFault(
                "slow_control", verb, seconds=seconds, remaining=times,
            )
        )
        return self

    def drop_frame_at(
        self, at_seq: int | None = None, *, stream: str | None = None,
        times: int = 1,
    ) -> "FaultInjector":
        """Drop a data frame router-side *after* it enters the replay log.

        The frame is never written to the socket, simulating a send
        that was lost to a dying shard: the watermark advances past the
        hole on later frames, and only a crash + replay recovery
        re-delivers the dropped batch.  With ``at_seq=None`` the next
        matching frame is dropped.
        """
        self._faults.append(
            _ScheduledFault("drop_frame", stream, at_seq=at_seq, remaining=times)
        )
        return self

    def drop_dir_fsync(self, *, times: int = 1) -> "FaultInjector":
        """Skip the parent-directory fsync after the next ``times`` writes.

        Simulates the classic torn-rename failure: the snapshot or
        manifest file itself is durable, but the directory entry that
        makes it reachable is not, so a crash right after ``os.replace``
        rolls the directory back.  The chaos suite schedules this to
        prove the store's dir-fsync actually closes that window.
        """
        self._faults.append(_ScheduledFault("dir_fsync", None, remaining=times))
        return self

    def crash_points(self, total_arrivals: int, count: int = 1) -> list[int]:
        """``count`` distinct seeded crash arrivals in ``[1, total_arrivals)``.

        A convenience for randomized-but-reproducible chaos suites: the
        injector's seed fully determines the result.
        """
        if total_arrivals < 2:
            raise ValueError("need at least 2 arrivals to pick a crash point")
        points = self.rng.choice(
            np.arange(1, total_arrivals), size=min(count, total_arrivals - 1),
            replace=False,
        )
        return sorted(int(p) for p in points)

    # ------------------------------------------------------------------
    # Hooks (called by StreamWorker / SnapshotStore)
    # ------------------------------------------------------------------

    def on_ingest(self, stream: str, start_arrival: int, size: int) -> None:
        """Fire due ingest faults; may sleep (slow) or raise InjectedFault."""
        due: list[_ScheduledFault] = []
        with self._lock:
            for fault in self._faults:
                if fault.remaining <= 0 or fault.kind not in ("crash", "slow"):
                    continue
                if not fault.matches(stream):
                    continue
                if (
                    fault.at_arrival is not None
                    and start_arrival + size < fault.at_arrival
                ):
                    continue
                fault.remaining -= 1
                self.events.append(
                    {
                        "kind": fault.kind,
                        "stream": stream,
                        "arrival": start_arrival,
                        "batch_size": size,
                    }
                )
                due.append(fault)
        for fault in due:
            if fault.kind == "slow":
                time.sleep(fault.seconds)
        for fault in due:
            if fault.kind == "crash":
                raise InjectedFault(
                    f"injected crash in stream {stream!r} while feeding "
                    f"arrivals ({start_arrival}, {start_arrival + size}]"
                )

    def on_control(self, verb: str) -> None:
        """Fire due control-plane faults (called shard-side per verb)."""
        due: list[_ScheduledFault] = []
        with self._lock:
            for fault in self._faults:
                if fault.remaining <= 0 or fault.kind != "slow_control":
                    continue
                if fault.stream is not None and fault.stream != verb:
                    continue
                fault.remaining -= 1
                self.events.append(
                    {
                        "kind": "slow_control",
                        "verb": verb,
                        "seconds": fault.seconds,
                    }
                )
                due.append(fault)
        for fault in due:
            time.sleep(fault.seconds)

    def on_frame(self, stream: str, seq: int) -> bool:
        """Should this data frame be dropped? (called router-side)."""
        with self._lock:
            for fault in self._faults:
                if fault.remaining <= 0 or fault.kind != "drop_frame":
                    continue
                if not fault.matches(stream):
                    continue
                if fault.at_seq is not None and seq != fault.at_seq:
                    continue
                fault.remaining -= 1
                self.events.append(
                    {"kind": "drop_frame", "stream": stream, "seq": seq}
                )
                return True
        return False

    def on_snapshot_write(self, stream: str, seq: int) -> None:
        """Fire due snapshot-write faults; raises ``OSError`` when one is due."""
        with self._lock:
            for fault in self._faults:
                if fault.remaining <= 0 or fault.kind != "snapshot":
                    continue
                if not fault.matches(stream):
                    continue
                if fault.at_seq is not None and seq != fault.at_seq:
                    continue
                fault.remaining -= 1
                self.events.append(
                    {"kind": "snapshot", "stream": stream, "seq": seq}
                )
                raise OSError(
                    f"injected snapshot write failure for stream {stream!r} "
                    f"(seq {seq})"
                )

    def on_dir_fsync(self, path: str) -> bool:
        """Should this directory fsync be skipped? (called by the store)."""
        with self._lock:
            for fault in self._faults:
                if fault.remaining <= 0 or fault.kind != "dir_fsync":
                    continue
                fault.remaining -= 1
                self.events.append({"kind": "dir_fsync", "path": path})
                return True
        return False

    def pending(self) -> int:
        """Scheduled fault shots not yet fired."""
        with self._lock:
            return sum(max(0, fault.remaining) for fault in self._faults)
