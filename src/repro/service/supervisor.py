"""Worker supervision: detect dead streams, restart them from checkpoints.

The :class:`StreamSupervisor` watches every worker of a
:class:`~repro.service.service.StreamService`.  When a worker dies on a
fatal error (an injected crash, a non-quarantinable ingest failure) the
supervisor rebuilds the stream:

1. the dead worker's pending queue and replay log are captured;
2. after a bounded exponential backoff (``RestartPolicy``), a fresh
   maintainer is restored from the newest *verifiable* snapshot
   generation -- :class:`~repro.service.snapshot.SnapshotStore` falls
   back to the previous generation when the newest is corrupt;
3. the replay suffix (every batch ingested since that snapshot) and the
   pending queue are staged ahead of live traffic, the dead worker's
   last view is adopted (marked stale) so queries keep answering, and
   the replacement worker starts.

Because the synopses are deterministic and replay re-feeds the exact
same points at the exact same arrival positions, the recovered stream
is bit-identical to one that never crashed.  Restarts are budgeted
(``max_restarts``); a stream that exhausts its budget is marked
``failed`` and producers get a :class:`StreamFailedError` instead of an
endless crash loop.

Health states surfaced through ``StreamService.health()``:

* ``healthy``  -- worker alive, backlog drained;
* ``degraded`` -- restart pending / backlog replaying (queries are
  served from the stale view meanwhile);
* ``failed``   -- restart budget exhausted (stale view still queryable).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

from .snapshot import SnapshotCorruptError

__all__ = ["RestartPolicy", "StreamFailedError", "StreamSupervisor"]

logger = logging.getLogger(__name__)


class StreamFailedError(RuntimeError):
    """A stream exhausted its restart budget and is permanently failed."""


@dataclass(frozen=True)
class RestartPolicy:
    """Restart budget and bounded exponential backoff knobs.

    A stream may be restarted at most ``max_restarts`` times over its
    lifetime; restart ``k`` (0-based) waits
    ``min(backoff_max, backoff_initial * backoff_factor ** k)`` seconds
    before the replacement worker is built.
    """

    max_restarts: int = 5
    backoff_initial: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_initial < 0 or self.backoff_max < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, restart_index: int) -> float:
        return min(
            self.backoff_max,
            self.backoff_initial * self.backoff_factor ** restart_index,
        )


class StreamSupervisor:
    """Background watchdog restarting dead workers of one service."""

    def __init__(
        self,
        service,
        policy: RestartPolicy | None = None,
        poll_interval: float = 0.02,
    ) -> None:
        self._service = service
        self.policy = policy or RestartPolicy()
        self.poll_interval = poll_interval
        self._cond = threading.Condition()
        self._restarts: dict[str, int] = {}
        self._states: dict[str, str] = {}
        self._last_error: dict[str, str] = {}
        self._lossy: dict[str, bool] = {}
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._watch, name="stream-supervisor", daemon=True
        )
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        if self._started and self._thread.is_alive():
            self._thread.join()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self, name: str) -> dict:
        """Supervision record of one stream (state, restarts, last error)."""
        with self._cond:
            return {
                "state": self._states.get(name),
                "restarts": self._restarts.get(name, 0),
                "last_error": self._last_error.get(name),
                "lossy_recovery": self._lossy.get(name, False),
            }

    def wait_recovered(self, name: str, failed_worker, timeout: float = 30.0) -> None:
        """Block until ``name`` is served by a live replacement worker.

        Raises :class:`StreamFailedError` when the restart budget is
        exhausted, ``KeyError`` when the stream was dropped meanwhile,
        and ``TimeoutError`` after ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._states.get(name) == "failed":
                    raise StreamFailedError(
                        f"stream {name!r} exhausted its restart budget "
                        f"({self.policy.max_restarts})"
                    )
                current = self._service._workers.get(name)
                if current is None:
                    raise KeyError(f"stream {name!r} was dropped during recovery")
                if current is not failed_worker and not current.failed:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"stream {name!r} did not recover within {timeout}s"
                    )
                self._cond.wait(timeout=min(remaining, 0.1))

    # ------------------------------------------------------------------
    # Watch loop
    # ------------------------------------------------------------------

    def _watch(self) -> None:
        while not self._stop_event.wait(self.poll_interval):
            for name, worker in list(self._service._workers.items()):
                if self._states.get(name) == "failed":
                    continue
                if worker.failed:
                    try:
                        self._recover(name, worker)
                    except Exception as error:  # recovery itself failed
                        logger.exception("recovery of stream %r failed", name)
                        with self._cond:
                            self._states[name] = "failed"
                            self._last_error[name] = repr(error)
                            self._cond.notify_all()
                elif self._states.get(name) == "degraded":
                    # An empty queue is not the same as a drained backlog:
                    # the worker pops a batch *before* feeding it, so the
                    # last replay batch can still be mid-ingest (and the
                    # served view still the dead worker's stale adoption)
                    # while queue_depth reads 0.  Promote only once the
                    # worker reports itself fully caught up.
                    if not worker.failed and worker.caught_up():
                        with self._cond:
                            self._states[name] = "healthy"
                            self._cond.notify_all()

    def _recover(self, name: str, dead) -> None:
        service = self._service
        with self._cond:
            count = self._restarts.get(name, 0)
            self._last_error[name] = repr(dead.error)
            if count >= self.policy.max_restarts:
                self._states[name] = "failed"
                self._cond.notify_all()
                logger.error(
                    "stream %r exceeded its restart budget (%d); marking failed",
                    name, self.policy.max_restarts,
                )
                return
            self._states[name] = "degraded"
            self._cond.notify_all()
        logger.warning(
            "stream %r worker died (%r); restart %d/%d in %.3fs",
            name, dead.error, count + 1, self.policy.max_restarts,
            self.policy.delay(count),
        )
        # Interruptible backoff: a service close() must not wait out the
        # full backoff of a crash-looping stream.
        if self._stop_event.wait(self.policy.delay(count)):
            return
        tracer = getattr(service, "tracer", None)
        if tracer is None:
            self._rebuild(name, dead, count)
        else:
            # The span lands even when the rebuild raises (status carries
            # the exception type), so failed recoveries are visible too.
            with tracer.span("recover", name, restart=count + 1):
                self._rebuild(name, dead, count)

    def _rebuild(self, name: str, dead, count: int) -> None:
        """Build, seed and start the replacement worker for ``name``."""
        service = self._service
        spec = service._specs[name]
        pending = dead.drain_pending()
        replay = dead.replay_batches()
        state, state_arrays, arrivals = None, None, 0
        if service._store is not None:
            try:
                payload = service._store.load_latest(name)
                state = payload.get("state")
                state_arrays = payload.get("state_arrays")
                arrivals = int(payload["arrivals"])
            except KeyError:
                pass  # no snapshot yet: rebuild from scratch + replay
            except SnapshotCorruptError:
                logger.exception(
                    "no verifiable snapshot of stream %r; rebuilding from replay",
                    name,
                )
        replay_suffix = [batch for start, batch in replay if start >= arrivals]
        covered_from = min((start for start, _ in replay), default=arrivals)
        lossy = covered_from > arrivals
        if lossy:
            # The replay log no longer reaches back to the snapshot
            # position -- recovery proceeds but the gap is on record.
            logger.error(
                "stream %r: replay log starts at arrival %d but the best "
                "snapshot is at %d; recovered stream is missing that gap",
                name, covered_from, arrivals,
            )
        worker = service._build_worker(
            name, spec, state=state, arrivals=arrivals,
            state_arrays=state_arrays, dead_letter=dead.dead_letter,
        )
        stale = dead.view()
        seeded = worker.view()
        if stale is not None and (seeded is None or stale.arrivals >= seeded.arrivals):
            worker.adopt_view(stale)
        worker.preload(replay_suffix + pending)
        with self._cond:
            self._restarts[name] = count + 1
            self._lossy[name] = self._lossy.get(name, False) or lossy
            service._workers[name] = worker
            worker.start()
            self._states[name] = "degraded"
            self._cond.notify_all()
        registry = getattr(service, "registry", None)
        if registry is not None:
            registry.counter("repro_restarts_total", stream=name).inc()
            if lossy:
                registry.counter("repro_lossy_recoveries_total", stream=name).inc()
        logger.warning(
            "stream %r restarted from arrival %d (replaying %d points, "
            "%d pending)",
            name, arrivals,
            sum(int(b.size) for b in replay_suffix),
            sum(int(b.size) for b in pending),
        )
