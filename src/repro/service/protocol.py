"""The transport-agnostic service surface shared by every backend tier.

:class:`ServiceProtocol` names the contract a synopsis-serving backend
must satisfy: stream lifecycle (``create_stream`` / ``drop_stream`` /
``streams`` / ``spec``), backpressured ingestion (``ingest`` /
``flush``), snapshot-isolated queries (``range_sum`` / ``quantile`` /
``histogram`` / ``stats``), health and observability (``health`` /
``metrics`` / ``prometheus_metrics`` / ``export_metrics_jsonl`` /
``accuracy``), certification (``certify``), and durability
(``checkpoint`` / ``close``).

Two implementations exist:

* :class:`~repro.service.service.StreamService` -- the in-process,
  thread-per-stream engine (the *shard core*);
* :class:`~repro.shard.router.ShardRouter` -- the multi-process tier
  that consistent-hashes streams onto N shard processes, each of which
  runs a ``StreamService`` internally.

The protocol is ``runtime_checkable`` so callers (and the test suite)
can assert ``isinstance(backend, ServiceProtocol)`` structurally; it
deliberately excludes in-process-only affordances such as ``view()`` /
``synopsis()`` (which hand out live objects that cannot cross a process
boundary) -- code written against the protocol works unchanged over
either tier.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["ServiceProtocol"]


@runtime_checkable
class ServiceProtocol(Protocol):
    """Structural contract of a multi-stream synopsis service."""

    # -- stream lifecycle ----------------------------------------------

    def create_stream(
        self,
        name: str,
        backend: str | None = None,
        params: dict | None = None,
        *,
        spec=None,
        **options,
    ):
        """Register and start a stream from a spec or backend/params."""
        ...

    def drop_stream(self, name: str, drain: bool = True) -> None:
        """Stop and forget a stream (snapshots stay on disk)."""
        ...

    def streams(self) -> list[str]:
        """Hosted stream names, sorted."""
        ...

    def spec(self, name: str):
        """The :class:`StreamSpec` a stream was created with."""
        ...

    # -- ingestion ------------------------------------------------------

    def ingest(self, name: str, values) -> int:
        """Enqueue points for a stream; returns the accepted count."""
        ...

    def flush(self, name: str | None = None, timeout: float | None = None) -> bool:
        """Wait until queued points are ingested (one stream or all)."""
        ...

    def update(self, name: str, key: int, delta: int = 1) -> int:
        """Turnstile update ``f[key] += delta`` (encoded unit points)."""
        ...

    def update_many(self, name: str, updates) -> int:
        """Apply ``(key, delta)`` turnstile updates as one batch."""
        ...

    # -- queries --------------------------------------------------------

    def range_sum(self, name: str, start: int, end: int) -> float:
        """Estimated sum over window positions ``[start, end]``."""
        ...

    def quantile(self, name: str, fraction: float) -> float:
        """Approximate ``fraction``-quantile of the summarized values."""
        ...

    def histogram(self, name: str) -> dict:
        """JSON-friendly rendering of the stream's synopsis."""
        ...

    def stats(self, name: str | None = None) -> dict:
        """Ingest/maintenance/queue telemetry (one stream or all)."""
        ...

    # -- health and observability --------------------------------------

    def health(self, name: str | None = None) -> dict:
        """Health report (one stream, or all streams keyed by name)."""
        ...

    def metrics(self, name: str | None = None) -> list[dict]:
        """Metric samples (whole service, or one stream's)."""
        ...

    def prometheus_metrics(self) -> str:
        """Every metric in Prometheus text exposition format."""
        ...

    def export_metrics_jsonl(self, path):
        """Append every current sample to ``path`` as JSON lines."""
        ...

    def accuracy(self, name: str) -> dict | None:
        """Accuracy-monitor summary (None when not configured)."""
        ...

    def qos(self) -> dict | None:
        """QoS snapshot: ladder level, tenant buckets, shed totals
        (None when QoS is not configured)."""
        ...

    # -- certification and durability ----------------------------------

    def certify(self, name: str, **kwargs) -> dict:
        """Differential certification report; ``report['passed']``."""
        ...

    def checkpoint(self, name: str | None = None) -> list[str]:
        """Write durable snapshots; returns the written paths."""
        ...

    def close(self, checkpoint: bool | None = None) -> None:
        """Drain and stop (idempotent)."""
        ...
