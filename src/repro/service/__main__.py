"""``python -m repro.service`` -- run a configured service from the shell.

Loads a TOML/JSON config (:mod:`repro.service.config`), starts the
threaded or sharded tier it describes, optionally drives seeded
synthetic traffic through every stream, and reports health, telemetry
and (on request) a certification verdict as JSON on stdout.  This is
the entry point the CI sharded smoke job uses, and the quickest way to
run the system outside tests and benchmarks::

    python -m repro.service config.toml --points 50000 --certify

Exit status is non-zero when any stream ends unhealthy or a requested
certification fails, so the command doubles as a deployment smoke
check.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace

import numpy as np

from .config import build_service, load_config
from .qos import QoSConfig, QuotaExceededError, TenantQuota


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a threaded or sharded synopsis service from a config.",
    )
    parser.add_argument("config", help="path to a .toml or .json service config")
    parser.add_argument(
        "--points",
        type=int,
        default=0,
        metavar="N",
        help="ingest N seeded synthetic points per stream (default: 0)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=512,
        metavar="C",
        help="ingest batch size (default: 512)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="synthetic traffic seed"
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="run differential certification before shutdown",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="take an explicit checkpoint before shutdown",
    )
    parser.add_argument(
        "--restore",
        action="store_true",
        help="restore every stream from the config's snapshot_dir "
        "instead of creating fresh ones",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="append the final metric samples to PATH as JSON lines",
    )
    parser.add_argument(
        "--qos-rate",
        type=float,
        default=None,
        metavar="R",
        help="enable QoS with a default per-tenant quota of R points/s "
        "(overrides the config's default quota)",
    )
    parser.add_argument(
        "--qos-burst",
        type=float,
        default=None,
        metavar="B",
        help="burst capacity for --qos-rate (default: 2*R)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the JSON report"
    )
    args = parser.parse_args(argv)
    if args.qos_burst is not None and args.qos_rate is None:
        parser.error("--qos-burst requires --qos-rate")
    return args


def _restore_service(config):
    """Rebuild the configured tier from its snapshot directory."""
    if config.snapshot_dir is None:
        raise SystemExit("--restore needs snapshot_dir in the config")
    if config.mode == "sharded":
        from ..shard.router import ShardRouter

        return ShardRouter.restore(config.snapshot_dir, qos=config.qos)
    from .service import StreamService

    return StreamService.restore(
        config.snapshot_dir,
        supervise=config.supervise,
        snapshot_keep=config.snapshot_keep,
        snapshot_base_every=config.snapshot_base_every,
        qos=config.qos,
    )


def _drive(service, streams, points, chunk, seed) -> dict:
    """Seeded synthetic traffic: integer-valued, domain-safe floats."""
    rng = np.random.default_rng(seed)
    started = time.perf_counter()
    total = 0
    throttled = 0
    for name in streams:
        remaining = points
        while remaining > 0:
            size = min(chunk, remaining)
            batch = np.floor(rng.random(size) * 100.0)
            try:
                total += service.ingest(name, batch)
            except QuotaExceededError as exc:
                # The driver is a well-behaved tenant: back off for the
                # advertised horizon and resend the same batch.
                throttled += 1
                time.sleep(exc.retry_after)
                continue
            remaining -= size
    service.flush()
    elapsed = time.perf_counter() - started
    return {
        "points": total,
        "seconds": elapsed,
        "points_per_second": total / elapsed if elapsed > 0 else None,
        "quota_backoffs": throttled,
    }


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    config = load_config(args.config)
    if args.qos_rate is not None:
        burst = (
            args.qos_burst if args.qos_burst is not None else 2 * args.qos_rate
        )
        quota = TenantQuota(rate=args.qos_rate, burst=burst)
        qos = (
            replace(config.qos, default_quota=quota)
            if config.qos is not None
            else QoSConfig(default_quota=quota)
        )
        config = replace(config, qos=qos)
    report: dict = {"mode": config.mode, "streams": [n for n, _ in config.streams]}
    failed = False
    if args.restore:
        service = _restore_service(config)
        report["streams"] = sorted(service.streams())
        report["restored"] = True
    else:
        service = build_service(config)
    try:
        if args.points > 0:
            report["ingest"] = _drive(
                service, report["streams"], args.points, args.chunk, args.seed
            )
        health = service.health()
        report["health"] = health
        failed = any(
            record.get("state") != "healthy" for record in health.values()
        )
        report["stats"] = {
            name: {
                "arrivals": service.stats(name)["arrivals"],
            }
            for name in report["streams"]
        }
        if config.qos is not None:
            report["qos"] = service.qos()
        if args.certify:
            if config.mode == "sharded":
                verdict = service.certify()
                report["certify"] = {
                    "passed": verdict["passed"],
                    "placement": verdict["placement"]["passed"],
                }
            else:
                verdicts = {
                    name: service.certify(name)["passed"]
                    for name in report["streams"]
                }
                report["certify"] = {
                    "passed": all(verdicts.values()),
                    "streams": verdicts,
                }
            failed = failed or not report["certify"]["passed"]
        if args.checkpoint:
            report["checkpoint_paths"] = service.checkpoint()
        if args.metrics_out:
            service.export_metrics_jsonl(args.metrics_out)
    finally:
        service.close()
    report["passed"] = not failed
    if not args.quiet:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
