"""Poison-record quarantine: the per-stream dead-letter buffer.

A record that raises during ingest no longer kills the stream worker
(see :class:`~repro.service.stream_worker.StreamWorker`): the offending
point is isolated, wrapped in a :class:`DeadLetterRecord` and parked in
the stream's :class:`DeadLetterBuffer` while clean points keep flowing.
The buffer is bounded (oldest records are evicted, counted), every
quarantine and retry outcome is counted, and
``StreamWorker.retry_dead_letters`` / ``StreamService.retry_dead_letters``
re-feed the quarantined points in place.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["DeadLetterBuffer", "DeadLetterRecord"]


@dataclass(frozen=True)
class DeadLetterRecord:
    """One quarantined stream point.

    ``arrival`` is the stream position the point *would* have taken had
    it been accepted (poison points do not advance the arrival counter,
    so cadence stays aligned with a clean-stream run); ``error`` is the
    repr of the exception that refused it.
    """

    value: float
    error: str
    arrival: int
    quarantined_at: float


class DeadLetterBuffer:
    """Bounded, counted quarantine of one stream's poison records.

    Thread-safe: the worker thread quarantines, any thread may read
    records or counters, and retries drain through ``take_all``.
    The buffer object survives worker restarts -- the supervisor hands
    it to the replacement worker so poison history is never reset by a
    crash.

    With a ``registry`` attached every counter is mirrored onto labeled
    ``repro_dead_letter_*`` instruments (plus a ``quarantined`` gauge of
    the current buffer size), so the quarantine shows up in
    ``StreamService.metrics()`` and the exporters; the plain attributes
    and the :meth:`counters` dict stay authoritative for existing
    callers.
    """

    def __init__(
        self, capacity: int = 1024, *, registry=None, stream: str = ""
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[DeadLetterRecord] = deque()
        self._lock = threading.Lock()
        self.poison_points = 0
        self.poison_batches = 0
        self.evicted_records = 0
        self.retried_points = 0
        self.retry_succeeded = 0
        self.retry_failed = 0
        if registry is not None:
            labels = {"stream": stream}
            self._mirrors = {
                key: registry.counter(f"repro_dead_letter_{key}_total", **labels)
                for key in (
                    "poison_points", "poison_batches", "evicted_records",
                    "retried_points", "retry_succeeded", "retry_failed",
                )
            }
            self._quarantined = registry.gauge(
                "repro_dead_letter_quarantined", **labels
            )
        else:
            self._mirrors = None
            self._quarantined = None

    def _mirror(self, key: str, amount: int = 1) -> None:
        if self._mirrors is not None and amount:
            self._mirrors[key].inc(amount)

    def _mirror_size(self) -> None:
        # Called under self._lock; the gauge has its own (leaf) lock.
        if self._quarantined is not None:
            self._quarantined.set(len(self._records))

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Quarantine side (worker thread)
    # ------------------------------------------------------------------

    def quarantine(self, value: float, error: BaseException, arrival: int) -> None:
        """Park one refused point; evicts the oldest record when full."""
        record = DeadLetterRecord(
            value=float(value),
            error=repr(error),
            arrival=int(arrival),
            quarantined_at=time.time(),
        )
        with self._lock:
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self.evicted_records += 1
                self._mirror("evicted_records")
            self._records.append(record)
            self.poison_points += 1
            self._mirror("poison_points")
            self._mirror_size()

    def record_batch(self) -> None:
        """Count one submitted batch that contained at least one poison point."""
        with self._lock:
            self.poison_batches += 1
            self._mirror("poison_batches")

    # ------------------------------------------------------------------
    # Inspection / retry side (any thread)
    # ------------------------------------------------------------------

    def records(self) -> list[DeadLetterRecord]:
        """A snapshot of the quarantined records, oldest first."""
        with self._lock:
            return list(self._records)

    def take_all(self) -> list[DeadLetterRecord]:
        """Drain every record for a retry attempt."""
        with self._lock:
            records = list(self._records)
            self._records.clear()
            self._mirror_size()
            return records

    def requarantine(self, record: DeadLetterRecord, error: BaseException) -> None:
        """Put a record whose retry failed back, with the fresh error."""
        updated = DeadLetterRecord(
            value=record.value,
            error=repr(error),
            arrival=record.arrival,
            quarantined_at=record.quarantined_at,
        )
        with self._lock:
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self.evicted_records += 1
                self._mirror("evicted_records")
            self._records.append(updated)
            self._mirror_size()

    def note_retry(self, succeeded: int, failed: int) -> None:
        with self._lock:
            self.retried_points += succeeded + failed
            self.retry_succeeded += succeeded
            self.retry_failed += failed
            self._mirror("retried_points", succeeded + failed)
            self._mirror("retry_succeeded", succeeded)
            self._mirror("retry_failed", failed)

    def clear(self) -> int:
        """Drop every quarantined record; returns how many were dropped."""
        with self._lock:
            dropped = len(self._records)
            self._records.clear()
            self._mirror_size()
            return dropped

    def counters(self) -> dict:
        """JSON-friendly counter snapshot (reported inside worker stats)."""
        with self._lock:
            return {
                "quarantined": len(self._records),
                "poison_points": self.poison_points,
                "poison_batches": self.poison_batches,
                "evicted_records": self.evicted_records,
                "retried_points": self.retried_points,
                "retry_succeeded": self.retry_succeeded,
                "retry_failed": self.retry_failed,
            }
