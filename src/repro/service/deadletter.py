"""Poison-record quarantine: the per-stream dead-letter buffer.

A record that raises during ingest no longer kills the stream worker
(see :class:`~repro.service.stream_worker.StreamWorker`): the offending
point is isolated, wrapped in a :class:`DeadLetterRecord` and parked in
the stream's :class:`DeadLetterBuffer` while clean points keep flowing.
The buffer is bounded (oldest records are evicted, counted), every
quarantine and retry outcome is counted, and
``StreamWorker.retry_dead_letters`` / ``StreamService.retry_dead_letters``
re-feed the quarantined points in place.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["DeadLetterBuffer", "DeadLetterRecord"]


@dataclass(frozen=True)
class DeadLetterRecord:
    """One quarantined stream point.

    ``arrival`` is the stream position the point *would* have taken had
    it been accepted (poison points do not advance the arrival counter,
    so cadence stays aligned with a clean-stream run); ``error`` is the
    repr of the exception that refused it.
    """

    value: float
    error: str
    arrival: int
    quarantined_at: float


class DeadLetterBuffer:
    """Bounded, counted quarantine of one stream's poison records.

    Thread-safe: the worker thread quarantines, any thread may read
    records or counters, and retries drain through ``take_all``.
    The buffer object survives worker restarts -- the supervisor hands
    it to the replacement worker so poison history is never reset by a
    crash.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[DeadLetterRecord] = deque()
        self._lock = threading.Lock()
        self.poison_points = 0
        self.poison_batches = 0
        self.evicted_records = 0
        self.retried_points = 0
        self.retry_succeeded = 0
        self.retry_failed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Quarantine side (worker thread)
    # ------------------------------------------------------------------

    def quarantine(self, value: float, error: BaseException, arrival: int) -> None:
        """Park one refused point; evicts the oldest record when full."""
        record = DeadLetterRecord(
            value=float(value),
            error=repr(error),
            arrival=int(arrival),
            quarantined_at=time.time(),
        )
        with self._lock:
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self.evicted_records += 1
            self._records.append(record)
            self.poison_points += 1

    def record_batch(self) -> None:
        """Count one submitted batch that contained at least one poison point."""
        with self._lock:
            self.poison_batches += 1

    # ------------------------------------------------------------------
    # Inspection / retry side (any thread)
    # ------------------------------------------------------------------

    def records(self) -> list[DeadLetterRecord]:
        """A snapshot of the quarantined records, oldest first."""
        with self._lock:
            return list(self._records)

    def take_all(self) -> list[DeadLetterRecord]:
        """Drain every record for a retry attempt."""
        with self._lock:
            records = list(self._records)
            self._records.clear()
            return records

    def requarantine(self, record: DeadLetterRecord, error: BaseException) -> None:
        """Put a record whose retry failed back, with the fresh error."""
        updated = DeadLetterRecord(
            value=record.value,
            error=repr(error),
            arrival=record.arrival,
            quarantined_at=record.quarantined_at,
        )
        with self._lock:
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self.evicted_records += 1
            self._records.append(updated)

    def note_retry(self, succeeded: int, failed: int) -> None:
        with self._lock:
            self.retried_points += succeeded + failed
            self.retry_succeeded += succeeded
            self.retry_failed += failed

    def clear(self) -> int:
        """Drop every quarantined record; returns how many were dropped."""
        with self._lock:
            dropped = len(self._records)
            self._records.clear()
            return dropped

    def counters(self) -> dict:
        """JSON-friendly counter snapshot (reported inside worker stats)."""
        with self._lock:
            return {
                "quarantined": len(self._records),
                "poison_points": self.poison_points,
                "poison_batches": self.poison_batches,
                "evicted_records": self.evicted_records,
                "retried_points": self.retried_points,
                "retry_succeeded": self.retry_succeeded,
                "retry_failed": self.retry_failed,
            }
