"""The multi-stream synopsis service.

:class:`StreamService` hosts many named streams, each a registry-built
maintainer behind a :class:`~repro.service.stream_worker.StreamWorker`:
thread-safe ingestion through bounded per-stream queues, snapshot-
isolated queries against the last materialized synopsis, and durable
checkpoint/restore through a :class:`~repro.service.snapshot.
SnapshotStore`.  This is the serving-layer shape the ROADMAP aims at:
Theorem 1's polylog-per-point maintenance is what makes it feasible to
keep every hosted synopsis continuously queryable while the streams are
live.

Typical lifetime::

    service = StreamService(snapshot_dir="snapshots/")
    service.create_stream(
        "cpu", backend="fixed_window",
        params=dict(window_size=1024, num_buckets=16, epsilon=0.1),
    )
    service.ingest("cpu", samples)          # any thread, backpressured
    service.range_sum("cpu", 100, 499)       # reads the materialized view
    service.checkpoint()                     # durable JSON + manifest
    ...                                      # crash / restart ...
    service = StreamService.restore("snapshots/")   # same state + tail
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..runtime.registry import make_maintainer
from .queries import (
    MaterializedView,
    view_histogram,
    view_quantile,
    view_range_sum,
)
from .snapshot import SnapshotStore
from .stream_worker import BACKPRESSURE_POLICIES, StreamWorker

__all__ = ["StreamService", "StreamSpec", "UnknownStreamError"]


class UnknownStreamError(KeyError):
    """The service hosts no stream under the requested name."""


def _valid_stream_name(name: str) -> bool:
    # Names become snapshot filenames ("<name>-<seq>.json"); excluding
    # "-" keeps the sequence separator unambiguous.
    return bool(name) and name.replace("_", "").replace(".", "").isalnum()


@dataclass(frozen=True)
class StreamSpec:
    """Declarative configuration of one hosted stream.

    ``backend``/``params`` feed the maintainer registry
    (:func:`~repro.runtime.registry.make_maintainer`); the rest shapes
    the worker: maintenance cadence, queue bound, full-queue policy, and
    an optional automatic checkpoint cadence in ingested points.
    """

    backend: str
    params: dict = field(default_factory=dict)
    maintain_every: int | None = 1
    queue_capacity: int = 1024
    backpressure: str = "block"
    checkpoint_every: int | None = None

    def __post_init__(self) -> None:
        if self.maintain_every is not None and self.maintain_every < 1:
            raise ValueError("maintain_every must be >= 1 (or None)")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"use one of {BACKPRESSURE_POLICIES}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")

    def build_maintainer(self):
        return make_maintainer(self.backend, **self.params)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "params": dict(self.params),
            "maintain_every": self.maintain_every,
            "queue_capacity": self.queue_capacity,
            "backpressure": self.backpressure,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamSpec":
        return cls(
            backend=payload["backend"],
            params=dict(payload.get("params", {})),
            maintain_every=payload.get("maintain_every", 1),
            queue_capacity=int(payload.get("queue_capacity", 1024)),
            backpressure=payload.get("backpressure", "block"),
            checkpoint_every=payload.get("checkpoint_every"),
        )


class StreamService:
    """Concurrent host for many named synopsis streams."""

    def __init__(self, snapshot_dir=None) -> None:
        self._store = SnapshotStore(snapshot_dir) if snapshot_dir else None
        self._workers: dict[str, StreamWorker] = {}
        self._specs: dict[str, StreamSpec] = {}
        self._checkpoint_marks: dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------

    def create_stream(
        self,
        name: str,
        backend: str | None = None,
        params: dict | None = None,
        *,
        spec: StreamSpec | None = None,
        **options,
    ) -> StreamWorker:
        """Register and start a stream.

        Either pass a full :class:`StreamSpec` via ``spec`` or the
        ``backend``/``params`` pair plus spec fields as keyword options
        (``maintain_every``, ``queue_capacity``, ``backpressure``,
        ``checkpoint_every``).
        """
        if spec is None:
            if backend is None:
                raise ValueError("need either a spec or a backend name")
            spec = StreamSpec(backend=backend, params=dict(params or {}), **options)
        elif backend is not None or params is not None or options:
            raise ValueError("pass either spec or backend/params/options, not both")
        return self._start_stream(name, spec, state=None, arrivals=0, tail=())

    def _start_stream(
        self,
        name: str,
        spec: StreamSpec,
        state: dict | None,
        arrivals: int,
        tail: Iterable,
    ) -> StreamWorker:
        if self._closed:
            raise RuntimeError("service is closed")
        if not _valid_stream_name(name):
            raise ValueError(
                f"invalid stream name {name!r}; use letters, digits, '_' or '.'"
            )
        if name in self._workers:
            raise ValueError(f"stream {name!r} already exists")
        maintainer = spec.build_maintainer()
        if state is not None:
            maintainer.load_state_dict(state)
        worker = StreamWorker(
            name,
            maintainer,
            maintain_every=spec.maintain_every,
            queue_capacity=spec.queue_capacity,
            backpressure=spec.backpressure,
            initial_arrivals=arrivals,
        )
        if state is not None:
            worker.seed_view()
        self._workers[name] = worker
        self._specs[name] = spec
        self._checkpoint_marks[name] = arrivals
        worker.start()
        for batch in tail:
            worker.submit(batch)
        return worker

    def drop_stream(self, name: str, drain: bool = True) -> None:
        """Stop and forget a stream (its snapshots stay on disk)."""
        worker = self._worker(name)
        worker.stop(drain=drain)
        del self._workers[name]
        del self._specs[name]
        del self._checkpoint_marks[name]

    def streams(self) -> list[str]:
        """Hosted stream names, sorted."""
        return sorted(self._workers)

    def spec(self, name: str) -> StreamSpec:
        self._worker(name)
        return self._specs[name]

    def _worker(self, name: str) -> StreamWorker:
        try:
            return self._workers[name]
        except KeyError:
            known = ", ".join(self.streams()) or "<none>"
            raise UnknownStreamError(
                f"no stream named {name!r}; hosted: {known}"
            ) from None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, name: str, values) -> int:
        """Enqueue points for a stream; returns the accepted count.

        Safe to call from any thread.  Backpressure follows the stream's
        policy; with ``checkpoint_every`` configured, a durable
        checkpoint is taken whenever enough new points have been
        *ingested* since the last one.
        """
        worker = self._worker(name)
        accepted = worker.submit(values)
        every = self._specs[name].checkpoint_every
        if every is not None and self._store is not None:
            if worker.arrivals - self._checkpoint_marks[name] >= every:
                self.checkpoint(name)
        return accepted

    def flush(self, name: str | None = None, timeout: float | None = None) -> bool:
        """Wait until queued points are ingested (one stream or all)."""
        workers = [self._worker(name)] if name else list(self._workers.values())
        return all(worker.flush(timeout=timeout) for worker in workers)

    # ------------------------------------------------------------------
    # Queries (snapshot-isolated: served from materialized views)
    # ------------------------------------------------------------------

    def view(self, name: str) -> MaterializedView:
        """The stream's last materialized synopsis view."""
        view = self._worker(name).view()
        if view is None:
            raise ValueError(
                f"stream {name!r} has no materialized synopsis yet "
                "(nothing ingested)"
            )
        return view

    def synopsis(self, name: str):
        """The frozen synopsis object of the last materialized view."""
        return self.view(name).synopsis

    def range_sum(self, name: str, start: int, end: int) -> float:
        """Estimated sum over window positions ``[start, end]``."""
        return view_range_sum(self.synopsis(name), start, end)

    def quantile(self, name: str, fraction: float) -> float:
        """Approximate ``fraction``-quantile of the summarized values."""
        return view_quantile(self.synopsis(name), fraction)

    def histogram(self, name: str) -> dict:
        """JSON-friendly rendering of the stream's synopsis."""
        return view_histogram(self.synopsis(name))

    def stats(self, name: str | None = None) -> dict:
        """Ingest/maintenance/queue telemetry (one stream or all)."""
        if name is not None:
            return self._worker(name).stats()
        return {n: self._workers[n].stats() for n in self.streams()}

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, name: str | None = None) -> list[str]:
        """Write durable snapshots (one stream or all); returns paths.

        Each snapshot captures the maintainer state at a batch boundary
        plus the buffered tail, so a restore replays exactly the points
        the crashed service had accepted but not yet applied.
        """
        if self._store is None:
            raise RuntimeError("service was created without a snapshot_dir")
        names = [name] if name is not None else self.streams()
        paths = []
        for stream_name in names:
            worker = self._worker(stream_name)
            state, arrivals, tail = worker.checkpoint_state()
            payload = {
                "spec": self._specs[stream_name].to_dict(),
                "arrivals": arrivals,
                "state": state,
                "tail": tail,
            }
            paths.append(str(self._store.write(stream_name, payload)))
            self._checkpoint_marks[stream_name] = arrivals
        return paths

    def restore_stream(self, name: str) -> StreamWorker:
        """Recreate one stream from its latest snapshot."""
        if self._store is None:
            raise RuntimeError("service was created without a snapshot_dir")
        payload = self._store.load_latest(name)
        spec = StreamSpec.from_dict(payload["spec"])
        return self._start_stream(
            name,
            spec,
            state=payload["state"],
            arrivals=int(payload["arrivals"]),
            tail=payload.get("tail", ()),
        )

    @classmethod
    def restore(cls, snapshot_dir) -> "StreamService":
        """Bring a whole service back from a snapshot directory.

        Every stream named in the manifest is rebuilt from its latest
        snapshot and its buffered tail is re-enqueued, so the recovered
        service converges to the state the crashed one would have
        reached after draining its queues.
        """
        service = cls(snapshot_dir=snapshot_dir)
        for name in service._store.streams():
            service.restore_stream(name)
        return service

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, checkpoint: bool | None = None) -> None:
        """Drain and stop every worker.

        With a snapshot store attached, a final checkpoint is taken by
        default once the queues are drained (pass ``checkpoint=False``
        to skip it).
        """
        if self._closed:
            return
        for worker in self._workers.values():
            worker.stop(drain=True)
        if checkpoint is None:
            checkpoint = self._store is not None
        if checkpoint:
            self.checkpoint()
        self._closed = True

    def __enter__(self) -> "StreamService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(checkpoint=False if exc_type else None)
