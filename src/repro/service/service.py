"""The multi-stream synopsis service.

:class:`StreamService` hosts many named streams, each a registry-built
maintainer behind a :class:`~repro.service.stream_worker.StreamWorker`:
thread-safe ingestion through bounded per-stream queues, snapshot-
isolated queries against the last materialized synopsis, and durable
checkpoint/restore through a :class:`~repro.service.snapshot.
SnapshotStore`.  This is the serving-layer shape the ROADMAP aims at:
Theorem 1's polylog-per-point maintenance is what makes it feasible to
keep every hosted synopsis continuously queryable while the streams are
live.

With ``supervise=True`` the service also self-heals: a
:class:`~repro.service.supervisor.StreamSupervisor` restarts dead
workers from the newest verifiable snapshot generation with bounded
exponential backoff and a restart budget, replaying the retained batch
log so the recovered synopsis is bit-identical to an uninterrupted run.
Poison records are quarantined per stream
(:class:`~repro.service.deadletter.DeadLetterBuffer`) instead of
killing workers, queries during recovery are answered from the last
view marked ``stale``, and :meth:`StreamService.health` reports
``healthy`` / ``degraded`` / ``failed`` per stream.

Typical lifetime::

    service = StreamService(snapshot_dir="snapshots/", supervise=True)
    service.create_stream(
        "cpu", backend="fixed_window",
        params=dict(window_size=1024, num_buckets=16, epsilon=0.1),
    )
    service.ingest("cpu", samples)          # any thread, backpressured
    service.range_sum("cpu", 100, 499)       # reads the materialized view
    service.health("cpu")                    # healthy / degraded / failed
    service.checkpoint()                     # durable JSON + manifest
    ...                                      # crash / restart ...
    service = StreamService.restore("snapshots/")   # same state + tail
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterable

from ..core.prefix import as_stream_batch
from ..counting.encoding import encode_update, encode_updates
from ..obs.accuracy import AccuracyMonitor
from ..obs.export import to_prometheus_text, write_jsonl
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import SpanRecord, Tracer
from ..runtime.registry import make_maintainer
from .deadletter import DeadLetterBuffer, DeadLetterRecord
from .faults import FaultInjector
from .qos import QoSConfig, QoSController
from .queries import (
    MaterializedView,
    view_histogram,
    view_quantile,
    view_range_sum,
)
from .snapshot import SnapshotStore
from .stream_worker import (
    BACKPRESSURE_POLICIES,
    POISON_POLICIES,
    StreamWorker,
    WorkerFailedError,
)
from .supervisor import RestartPolicy, StreamSupervisor

__all__ = ["StreamService", "StreamSpec", "UnknownStreamError"]


class UnknownStreamError(KeyError):
    """The service hosts no stream under the requested name."""


def _valid_stream_name(name: str) -> bool:
    # Names become snapshot filenames ("<name>-<seq>.json"); excluding
    # "-" keeps the sequence separator unambiguous.
    return bool(name) and name.replace("_", "").replace(".", "").isalnum()


def _tiles_contiguously(batches, start: int, end: int) -> bool:
    """Do the (start_arrival, batch) pairs cover [start, end) gaplessly?

    The delta-checkpoint safety gate: a delta is only written when the
    replay-log slice provably re-derives every arrival since the last
    checkpoint.  Quarantined poison points never advance the arrival
    counter, so a healthy replay log always tiles; anything else (a
    trimmed log, replay tracking off) fails here and the checkpoint
    falls back to a full snapshot.
    """
    position = start
    for batch_start, batch in batches:
        if batch_start != position:
            return False
        position += int(batch.size)
    return position == end


@dataclass(frozen=True)
class StreamSpec:
    """Declarative configuration of one hosted stream.

    ``backend``/``params`` feed the maintainer registry
    (:func:`~repro.runtime.registry.make_maintainer`); the rest shapes
    the worker: maintenance cadence, queue bound, full-queue policy,
    poison-record policy (``"quarantine"`` dead-letters offending
    points, ``"fail"`` kills the worker), and an optional automatic
    checkpoint cadence in ingested points.

    ``tenant`` and ``priority`` place the stream in the QoS model (see
    :mod:`repro.service.qos`): the tenant's token bucket meters its
    ingest, and the priority class (``0`` most critical) decides what
    the degradation ladder sheds first.  Both are inert until the
    service is built with a QoS config.

    ``accuracy`` opts the stream into online accuracy monitoring: a
    keyword dict for :class:`~repro.obs.accuracy.AccuracyMonitor`
    (``epsilon`` is required; ``window_size``, ``check_every``,
    ``mode``, ... as needed).  The monitor shadows ingested points with
    an exact window and reports observed epsilon vs the configured
    bound through stats, metrics and ``StreamService.accuracy()``.
    """

    backend: str
    params: dict = field(default_factory=dict)
    maintain_every: int | None = 1
    queue_capacity: int = 1024
    backpressure: str = "block"
    checkpoint_every: int | None = None
    poison: str = "quarantine"
    accuracy: dict | None = None
    tenant: str = "default"
    priority: int = 1

    def __post_init__(self) -> None:
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValueError("tenant must be a non-empty string")
        if not isinstance(self.priority, int) or self.priority < 0:
            raise ValueError("priority must be an int >= 0 (0 most critical)")
        if self.maintain_every is not None and self.maintain_every < 1:
            raise ValueError("maintain_every must be >= 1 (or None)")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.backpressure!r}; "
                f"use one of {BACKPRESSURE_POLICIES}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        if self.poison not in POISON_POLICIES:
            raise ValueError(
                f"unknown poison policy {self.poison!r}; "
                f"use one of {POISON_POLICIES}"
            )
        if self.accuracy is not None:
            if not isinstance(self.accuracy, dict):
                raise ValueError("accuracy must be a keyword dict (or None)")
            if "epsilon" not in self.accuracy:
                raise ValueError("accuracy config needs an 'epsilon' bound")

    def build_maintainer(self):
        return make_maintainer(self.backend, **self.params)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "params": dict(self.params),
            "maintain_every": self.maintain_every,
            "queue_capacity": self.queue_capacity,
            "backpressure": self.backpressure,
            "checkpoint_every": self.checkpoint_every,
            "poison": self.poison,
            "accuracy": dict(self.accuracy) if self.accuracy else None,
            "tenant": self.tenant,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamSpec":
        return cls(
            backend=payload["backend"],
            params=dict(payload.get("params", {})),
            maintain_every=payload.get("maintain_every", 1),
            queue_capacity=int(payload.get("queue_capacity", 1024)),
            backpressure=payload.get("backpressure", "block"),
            checkpoint_every=payload.get("checkpoint_every"),
            poison=payload.get("poison", "quarantine"),
            accuracy=payload.get("accuracy"),
            tenant=payload.get("tenant", "default"),
            priority=int(payload.get("priority", 1)),
        )


class StreamService:
    """Concurrent host for many named synopsis streams.

    ``supervise=True`` attaches a :class:`StreamSupervisor` (tune it
    with ``restart_policy``); ``fault_injector`` threads a
    :class:`FaultInjector` through every worker and the snapshot store;
    ``snapshot_keep`` bounds the retained snapshot generations per
    stream (>= 2 keeps a fallback behind the newest);
    ``snapshot_base_every`` sets the delta-checkpoint cadence: every
    K-th checkpoint of a stream writes a full base generation and the
    K-1 in between write cheap binary deltas (1, the default, keeps the
    old always-full behavior); ``qos`` attaches multi-tenant admission
    control and the graceful-degradation ladder (a
    :class:`~repro.service.qos.QoSConfig`, or a pre-built
    :class:`~repro.service.qos.QoSController`).
    """

    def __init__(
        self,
        snapshot_dir=None,
        *,
        supervise: bool = False,
        restart_policy: RestartPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        snapshot_keep: int = 2,
        snapshot_base_every: int = 1,
        qos: QoSConfig | QoSController | None = None,
    ) -> None:
        if restart_policy is not None and not supervise:
            raise ValueError("restart_policy requires supervise=True")
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self.registry)
        if qos is None:
            self._qos = None
        elif isinstance(qos, QoSController):
            self._qos = qos
        else:
            self._qos = QoSController(qos, registry=self.registry)
        if self._qos is not None:
            self._qos.set_signal_source(self._qos_signals)
            self._qos.set_drained(self._qos_drained)
        self._store = (
            SnapshotStore(
                snapshot_dir,
                keep=snapshot_keep,
                fault_injector=fault_injector,
                registry=self.registry,
            )
            if snapshot_dir
            else None
        )
        self._injector = fault_injector
        if snapshot_base_every < 1:
            raise ValueError("snapshot_base_every must be >= 1")
        self._snapshot_base_every = int(snapshot_base_every)
        # Per-stream delta counter: full/delta cadence is tracked per
        # stream (not service-wide) so no checkpoint interleaving can
        # starve a stream of base generations and let its replay log
        # and delta chain grow without bound.
        self._deltas_since_base: dict[str, int] = {}
        self._workers: dict[str, StreamWorker] = {}
        self._specs: dict[str, StreamSpec] = {}
        self._checkpoint_marks: dict[str, int] = {}
        # Arrival positions of the retained snapshot generations; the
        # oldest one bounds how far back the replay log must reach.
        self._generation_arrivals: dict[str, deque] = {}
        self._checkpoint_errors: dict[str, int] = {}
        self._closed = False
        self._supervisor: StreamSupervisor | None = None
        if supervise:
            self._supervisor = StreamSupervisor(self, restart_policy)
            self._supervisor.start()

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------

    def create_stream(
        self,
        name: str,
        backend: str | None = None,
        params: dict | None = None,
        *,
        spec: StreamSpec | None = None,
        **options,
    ) -> StreamWorker:
        """Register and start a stream.

        Either pass a full :class:`StreamSpec` via ``spec`` or the
        ``backend``/``params`` pair plus spec fields as keyword options
        (``maintain_every``, ``queue_capacity``, ``backpressure``,
        ``checkpoint_every``, ``poison``).
        """
        if spec is None:
            if backend is None:
                raise ValueError("need either a spec or a backend name")
            spec = StreamSpec(backend=backend, params=dict(params or {}), **options)
        elif backend is not None or params is not None or options:
            raise ValueError("pass either spec or backend/params/options, not both")
        return self._start_stream(name, spec, state=None, arrivals=0, tail=())

    def _build_worker(
        self,
        name: str,
        spec: StreamSpec,
        *,
        state: dict | None,
        arrivals: int,
        state_arrays: tuple | None = None,
        dead_letter: DeadLetterBuffer | None = None,
    ) -> StreamWorker:
        """A configured (not yet started) worker; shared with recovery."""
        maintainer = spec.build_maintainer()
        if state is not None:
            maintainer.load_state_dict(state)
        elif state_arrays is not None:
            maintainer.load_state_arrays(*state_arrays)
        accuracy = None
        if spec.accuracy is not None:
            accuracy = AccuracyMonitor(
                registry=self.registry, stream=name, **spec.accuracy
            )
        on_shed = None
        if self._qos is not None:
            qos, tenant, priority = self._qos, spec.tenant, spec.priority

            def on_shed(points: int) -> None:
                # drop_oldest evictions count as shed mass under the
                # stream's tenant/priority even before registration.
                qos.count_shed(tenant, priority, points)

        worker = StreamWorker(
            name,
            maintainer,
            maintain_every=spec.maintain_every,
            queue_capacity=spec.queue_capacity,
            backpressure=spec.backpressure,
            initial_arrivals=arrivals,
            poison=spec.poison,
            injector=self._injector,
            # Delta checkpoints persist the replay-log slice since the
            # last checkpoint, so the log is also tracked (without a
            # supervisor) whenever the store runs a delta cadence.
            track_replay=self._supervisor is not None
            or (self._store is not None and self._snapshot_base_every > 1),
            dead_letter=dead_letter,
            registry=self.registry,
            tracer=self.tracer,
            accuracy=accuracy,
            on_shed=on_shed,
        )
        if state is not None or state_arrays is not None:
            worker.seed_view()
        return worker

    def _start_stream(
        self,
        name: str,
        spec: StreamSpec,
        state: dict | None,
        arrivals: int,
        tail: Iterable,
        state_arrays: tuple | None = None,
    ) -> StreamWorker:
        if self._closed:
            raise RuntimeError("service is closed")
        if not _valid_stream_name(name):
            raise ValueError(
                f"invalid stream name {name!r}; use letters, digits, '_' or '.'"
            )
        if name in self._workers:
            raise ValueError(f"stream {name!r} already exists")
        worker = self._build_worker(
            name, spec, state=state, arrivals=arrivals,
            state_arrays=state_arrays,
        )
        self._workers[name] = worker
        self._specs[name] = spec
        self._checkpoint_marks[name] = arrivals
        self._deltas_since_base[name] = 0
        if self._qos is not None:
            self._qos.register_stream(name, spec.tenant, spec.priority)
        worker.start()
        for batch in tail:
            worker.submit(batch)
        return worker

    def drop_stream(self, name: str, drain: bool = True) -> None:
        """Stop and forget a stream (its snapshots stay on disk)."""
        worker = self._worker(name)
        worker.stop(drain=drain)
        del self._workers[name]
        del self._specs[name]
        del self._checkpoint_marks[name]
        self._deltas_since_base.pop(name, None)
        self._generation_arrivals.pop(name, None)
        self._checkpoint_errors.pop(name, None)
        if self._qos is not None:
            self._qos.forget_stream(name)

    def streams(self) -> list[str]:
        """Hosted stream names, sorted."""
        return sorted(self._workers)

    def spec(self, name: str) -> StreamSpec:
        self._worker(name)
        return self._specs[name]

    def _worker(self, name: str) -> StreamWorker:
        try:
            return self._workers[name]
        except KeyError:
            known = ", ".join(self.streams()) or "<none>"
            raise UnknownStreamError(
                f"no stream named {name!r}; hosted: {known}"
            ) from None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, name: str, values) -> int:
        """Enqueue points for a stream; returns the accepted count.

        Safe to call from any thread.  Backpressure follows the stream's
        policy; with ``checkpoint_every`` configured, a durable
        checkpoint is taken whenever enough new points have been
        *ingested* since the last one.  On a supervised service, a
        submit that hits a dead worker transparently waits for the
        restarted replacement and retries.

        With QoS configured, the batch first passes admission control:
        a tenant over its token-bucket quota gets a typed
        :class:`~repro.service.qos.QuotaExceededError` (with
        ``retry_after``), and under overload the degradation ladder may
        deterministically shed part of a sheddable stream's batch -- the
        shed mass is counted and widens the stream's reported effective
        epsilon.
        """
        if self._qos is not None:
            worker = self._worker(name)  # surface UnknownStreamError first
            kept, shed = self._qos.admit(name, as_stream_batch(values))
            if shed and worker.accuracy is not None:
                worker.accuracy.note_shed(shed)
            if kept.size == 0:
                return 0
            values = kept
        while True:
            worker = self._worker(name)
            try:
                accepted = worker.submit(values)
                break
            except WorkerFailedError:
                if self._supervisor is None:
                    raise
                self._supervisor.wait_recovered(name, worker)
        every = self._specs[name].checkpoint_every
        if every is not None and self._store is not None:
            if worker.arrivals - self._checkpoint_marks[name] >= every:
                try:
                    self.checkpoint(name)
                except (OSError, WorkerFailedError):
                    # An automatic checkpoint must never fail the
                    # producer; the miss is counted and the next cadence
                    # (or an explicit checkpoint()) tries again.
                    self._checkpoint_errors[name] = (
                        self._checkpoint_errors.get(name, 0) + 1
                    )
                    self.registry.counter(
                        "repro_checkpoint_errors_total", stream=name
                    ).inc()
        return accepted

    def update(self, name: str, key: int, delta: int = 1) -> int:
        """Turnstile update ``f[key] += delta`` on a stream.

        The update is encoded as ``|delta|`` signed unit points (see
        :mod:`repro.counting.encoding`) and rides the ordinary ingest
        path, so backpressure, checkpoints, replay, and sharding all
        apply unchanged.  Turnstile backends (``cr_precis``) decode
        deletions; insert-only backends quarantine them as poison.
        """
        batch = encode_update(key, delta)
        if batch.size == 0:
            return 0
        return self.ingest(name, batch)

    def update_many(self, name: str, updates) -> int:
        """Apply ``(key, delta)`` turnstile updates as one batch."""
        batch = encode_updates(updates)
        if batch.size == 0:
            return 0
        return self.ingest(name, batch)

    def flush(self, name: str | None = None, timeout: float | None = None) -> bool:
        """Wait until queued points are ingested (one stream or all).

        On a supervised service this rides across worker restarts: a
        flush that observes a dead worker waits for its replacement and
        re-flushes, so a ``True`` return means the recovered backlog is
        fully drained too.
        """
        names = [name] if name else self.streams()
        drained = True
        for stream_name in names:
            while True:
                worker = self._worker(stream_name)
                try:
                    drained = worker.flush(timeout=timeout) and drained
                    break
                except WorkerFailedError:
                    if self._supervisor is None:
                        raise
                    self._supervisor.wait_recovered(stream_name, worker)
        return drained

    # ------------------------------------------------------------------
    # Dead-letter quarantine
    # ------------------------------------------------------------------

    def dead_letters(self, name: str) -> list[DeadLetterRecord]:
        """Quarantined poison records of a stream, oldest first."""
        return self._worker(name).dead_letter.records()

    def retry_dead_letters(self, name: str) -> dict:
        """Re-feed a stream's quarantined records; returns outcome counts.

        With QoS configured the retried mass re-enters admission: the
        whole retry is charged against the stream tenant's quota
        (all-or-nothing -- a partial shed of a poison retry would make
        the outcome counts meaningless) and is refused outright while
        the ladder is at ``shed`` or above for a sheddable stream.
        """
        worker = self._worker(name)
        if self._qos is not None:
            pending = len(worker.dead_letter.records())
            if pending:
                self._qos.admit_retry(name, pending)
        return worker.retry_dead_letters()

    # ------------------------------------------------------------------
    # QoS signals
    # ------------------------------------------------------------------

    def _qos_signals(self) -> dict:
        """Overload signals for the degradation ladder.

        ``queue_fill`` is the MAX per-worker fill fraction, not the
        mean: one saturated stream must escalate the shared service so
        low-priority load is shed before the hot stream's producers
        block.  ``p99_latency`` is the worst per-worker p99 enqueue
        latency from the workers' reservoirs.
        """
        fill = 0.0
        latency = 0.0
        for worker in list(self._workers.values()):
            fill = max(fill, worker.queue_depth / worker.queue_capacity)
            latency = max(latency, worker.counters.latency_quantile(0.99))
        return {"queue_fill": fill, "p99_latency": latency}

    def _qos_drained(self) -> bool:
        """True when every sheddable stream has caught up (backlog
        drained, no in-flight batch, fresh served view) -- the gate for
        demoting out of ``stale_serve``."""
        if self._qos is None:
            return True
        for name, worker in list(self._workers.items()):
            if self._qos.sheddable(name) and not worker.caught_up():
                return False
        return True

    def qos(self) -> dict | None:
        """QoS snapshot: ladder level, tenant buckets, per-stream shed
        mass (None when QoS is not configured).  Forces a ladder
        evaluation, so polling this drives demotion on a quiet service.
        """
        if self._qos is None:
            return None
        return self._qos.snapshot()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def health(self, name: str | None = None) -> dict:
        """Health report (one stream or all streams keyed by name).

        ``state`` is ``healthy`` (worker alive, backlog drained),
        ``degraded`` (recovering / replaying; queries served from the
        stale view), or ``failed`` (worker dead with no supervisor, or
        restart budget exhausted).
        """
        if name is None:
            return {n: self.health(n) for n in self.streams()}
        worker = self._worker(name)
        record = (
            self._supervisor.snapshot(name)
            if self._supervisor is not None
            else {}
        )
        state = record.get("state")
        if state is None:
            state = "failed" if worker.failed else "healthy"
        elif worker.failed and state != "failed":
            state = "degraded"  # crash seen but not yet picked up
        elif state == "degraded" and worker.caught_up():
            # Queue empty alone is not enough -- the last replay batch
            # may still be mid-ingest; caught_up() also requires no
            # in-flight batch and a non-stale served view.
            state = "healthy"
        view = worker.view()
        report = {
            "stream": name,
            "state": state,
            "restarts": record.get("restarts", 0),
            "last_error": record.get("last_error")
            or (repr(worker.error) if worker.failed else None),
            "lossy_recovery": record.get("lossy_recovery", False),
            "dead_letter": worker.dead_letter.counters(),
            "checkpoint_errors": self._checkpoint_errors.get(name, 0),
            "stale_view": bool(worker.failed or (view is not None and view.stale)),
            "queue_depth": worker.queue_depth,
        }
        if self._qos is not None:
            report["degradation"] = self._qos.level_name()
            if self._qos.serving_stale(name):
                # Stale-serve is an intentional degradation, not a
                # failure: queries are answered from the last good view.
                report["qos_shed"] = True
                if report["state"] == "healthy":
                    report["state"] = "degraded"
        return report

    # ------------------------------------------------------------------
    # Queries (snapshot-isolated: served from materialized views)
    # ------------------------------------------------------------------

    def view(self, name: str) -> MaterializedView:
        """The stream's last materialized synopsis view.

        While a stream is down or recovering the last good view is
        served with ``stale=True`` -- queries degrade, they do not
        deadlock or error.
        """
        worker = self._worker(name)
        view = worker.view()
        if view is None:
            raise ValueError(
                f"stream {name!r} has no materialized synopsis yet "
                "(nothing ingested)"
            )
        if worker.failed and not view.stale:
            return replace(view, stale=True)
        if (
            self._qos is not None
            and self._qos.serving_stale(name)
            and not view.stale
        ):
            # At stale_serve the ladder stops feeding sheddable streams
            # entirely; mark the served view so callers can tell.
            return replace(view, stale=True)
        return view

    def synopsis(self, name: str):
        """The frozen synopsis object of the last materialized view."""
        return self.view(name).synopsis

    def range_sum(self, name: str, start: int, end: int) -> float:
        """Estimated sum over window positions ``[start, end]``."""
        return view_range_sum(self.synopsis(name), start, end)

    def quantile(self, name: str, fraction: float) -> float:
        """Approximate ``fraction``-quantile of the summarized values."""
        return view_quantile(self.synopsis(name), fraction)

    def histogram(self, name: str) -> dict:
        """JSON-friendly rendering of the stream's synopsis."""
        return view_histogram(self.synopsis(name))

    def stats(self, name: str | None = None) -> dict:
        """Ingest/maintenance/queue telemetry (one stream or all)."""
        if name is not None:
            return self._worker(name).stats()
        return {n: self._workers[n].stats() for n in self.streams()}

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def metrics(self, name: str | None = None) -> list[dict]:
        """Every metric sample of the service (or one stream's).

        Covers ingest counters, queue high-watermarks, enqueue-latency
        reservoirs, dead-letter quarantine, snapshot outcomes, restart
        counts, per-stage latency series and (where configured) observed
        accuracy -- one shared registry, labeled per stream.
        """
        if name is not None:
            self._worker(name)  # surface UnknownStreamError
            return self.registry.collect_labeled(stream=name)
        return self.registry.collect()

    def prometheus_metrics(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        return to_prometheus_text(self.registry)

    def export_metrics_jsonl(self, path):
        """Append every current sample to ``path`` as JSON lines."""
        return write_jsonl(self.registry, path)

    def spans(
        self, stage: str | None = None, name: str | None = None
    ) -> list[SpanRecord]:
        """Recorded stage spans, oldest first, optionally filtered."""
        return self.tracer.spans(stage=stage, stream=name)

    def accuracy(self, name: str) -> dict | None:
        """The stream's accuracy-monitor summary (None when not configured)."""
        worker = self._worker(name)
        if worker.accuracy is None:
            return None
        return worker.accuracy.to_dict()

    def note_shed(self, name: str, points: int) -> None:
        """Account externally-shed mass against a stream's accuracy.

        Used by the shard router, whose admission control sheds points
        before they ever reach this (shard-internal) service: the
        stream's accuracy monitor still widens its effective epsilon
        over the thinned feed.  No-op without a monitor.
        """
        worker = self._worker(name)
        if worker.accuracy is not None and points > 0:
            worker.accuracy.note_shed(int(points))

    def certify(
        self,
        name: str,
        *,
        profile: str = "uniform",
        seed: int = 0,
        points: int = 512,
        timeout: float | None = None,
    ) -> dict:
        """Certify a hosted stream: live accuracy, restore fidelity, config.

        Three layers, strongest available first:

        1. **Live accuracy** -- if the stream carries an
           :class:`~repro.obs.accuracy.AccuracyMonitor`, force a check of
           the served synopsis against the exact shadow window right now
           (no cadence wait).
        2. **Restore fidelity** -- push the worker's ``state_dict``
           through a real JSON round-trip into a fresh maintainer and
           require an identical synopsis (the checkpoint/restore
           metamorphic identity, on the *live* state).
        3. **Configuration certification** -- run the offline
           :class:`~repro.verify.differential.DifferentialChecker` for
           the spec's exact backend and parameters over a seeded fuzzed
           stream, auditing epsilon bounds and metamorphic equivalences
           against the exact oracle.

        The stream is flushed first; certify on a quiescent stream (a
        concurrent ingester can race the layer-2 comparison).  Returns a
        JSON-serializable report; ``report["passed"]`` aggregates all
        three layers.
        """
        import json

        from ..verify import DifferentialChecker, observe

        spec = self.spec(name)
        worker = self._worker(name)
        self.flush(name, timeout=timeout)

        with self.tracer.span("certify", name):
            state, arrivals, _tail = worker.checkpoint_state()

            live = None
            if worker.accuracy is not None:
                report = worker.accuracy.force_check(
                    arrivals, self.synopsis(name)
                )
                if report is not None:
                    live = report.to_dict()

            clone = spec.build_maintainer()
            clone.load_state_dict(json.loads(json.dumps(state)))
            restore_ok = (
                observe(clone)["synopsis"]
                == observe(worker.maintainer)["synopsis"]
            )

            differential = DifferentialChecker(
                spec.backend,
                spec.params,
                profile=profile,
                seed=seed,
                total_points=points,
            ).run()

        passed = (
            (live is None or live["within_bound"])
            and restore_ok
            and differential.passed
        )
        return {
            "stream": name,
            "backend": spec.backend,
            "params": dict(spec.params),
            "arrivals": arrivals,
            "passed": passed,
            "live_accuracy": live,
            "restore_identity": restore_ok,
            "differential": differential.to_dict(),
        }

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(
        self, name: str | None = None, *, mode: str = "auto"
    ) -> list[str]:
        """Write durable snapshots (one stream or all); returns paths.

        Each snapshot captures the maintainer state at a batch boundary
        plus the buffered tail, so a restore replays exactly the points
        the crashed service had accepted but not yet applied.

        With ``snapshot_base_every=K > 1`` only every K-th checkpoint of
        a stream writes a full base; the others persist a binary delta
        (the replay-log slice since the last checkpoint plus the current
        tail) -- but only when that slice provably tiles the arrival
        range without a gap, and there is a base on disk to chain from;
        otherwise the checkpoint silently falls back to a full.
        ``mode="full"`` forces full snapshots regardless of cadence (the
        shard router uses this to align delta chains with its own replay
        trimming).  After a successful write the worker's replay log is
        trimmed to the oldest retained *base* generation.
        """
        if self._store is None:
            raise RuntimeError("service was created without a snapshot_dir")
        if mode not in ("auto", "full"):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        names = [name] if name is not None else self.streams()
        paths = []
        for stream_name in names:
            worker = self._worker(stream_name)
            with self.tracer.span("checkpoint", stream_name):
                path, arrivals = self._checkpoint_stream(
                    stream_name, worker, mode
                )
                paths.append(str(path))
            self._checkpoint_marks[stream_name] = arrivals
            generations = self._generation_arrivals.get(stream_name)
            if generations:
                worker.trim_replay(generations[0])
        return paths

    def _checkpoint_stream(self, name: str, worker, mode: str):
        """Write one stream's checkpoint (delta when safe, else full)."""
        mark = self._checkpoint_marks.get(name, 0)
        want_delta = (
            mode == "auto"
            and self._snapshot_base_every > 1
            and self._deltas_since_base.get(name, 0)
            < self._snapshot_base_every - 1
        )
        if want_delta:
            capture = worker.checkpoint_capture(state=False, replay_since=mark)
            arrivals = capture["arrivals"]
            batches = capture.get("replay", [])
            if _tiles_contiguously(batches, mark, arrivals):
                try:
                    path = self._store.write_delta(
                        name,
                        arrivals=arrivals,
                        from_arrivals=mark,
                        batches=batches,
                        tail=capture["tail"],
                    )
                except ValueError:
                    pass  # no base generation on disk; write a full
                else:
                    self._deltas_since_base[name] = (
                        self._deltas_since_base.get(name, 0) + 1
                    )
                    return path, arrivals
        capture = worker.checkpoint_capture()
        arrivals = capture["arrivals"]
        payload = {
            "spec": self._specs[name].to_dict(),
            "arrivals": arrivals,
        }
        if "state_arrays" in capture:
            payload["state_arrays"] = capture["state_arrays"]
            payload["tail"] = capture["tail"]
        else:
            payload["state"] = capture["state"]
            payload["tail"] = [batch.tolist() for batch in capture["tail"]]
        path = self._store.write(name, payload)
        self._deltas_since_base[name] = 0
        generations = self._generation_arrivals.setdefault(
            name, deque(maxlen=self._store.keep)
        )
        generations.append(arrivals)
        return path, arrivals

    def restore_stream(self, name: str) -> StreamWorker:
        """Recreate one stream from its latest verifiable snapshot."""
        if self._store is None:
            raise RuntimeError("service was created without a snapshot_dir")
        payload = self._store.load_latest(name)
        spec = StreamSpec.from_dict(payload["spec"])
        return self._start_stream(
            name,
            spec,
            state=payload.get("state"),
            arrivals=int(payload["arrivals"]),
            tail=payload.get("tail", ()),
            state_arrays=payload.get("state_arrays"),
        )

    @classmethod
    def restore(cls, snapshot_dir, **kwargs) -> "StreamService":
        """Bring a whole service back from a snapshot directory.

        Every stream named in the manifest is rebuilt from its latest
        verifiable snapshot (corrupt newest generations fall back to the
        previous good one) and its buffered tail is re-enqueued, so the
        recovered service converges to the state the crashed one would
        have reached after draining its queues.  Keyword arguments
        (``supervise``, ``restart_policy``, ``fault_injector``,
        ``snapshot_keep``) are forwarded to the constructor.
        """
        service = cls(snapshot_dir=snapshot_dir, **kwargs)
        for name in service._store.streams():
            service.restore_stream(name)
        return service

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, checkpoint: bool | None = None) -> None:
        """Drain and stop every worker (idempotent).

        The supervisor (if any) is stopped first so no restart races the
        shutdown.  With a snapshot store attached, a final checkpoint of
        every *live* stream is taken by default once the queues are
        drained (pass ``checkpoint=False`` to skip it); failed streams
        are skipped rather than erroring the shutdown.
        """
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.stop()
        for worker in self._workers.values():
            worker.stop(drain=True)
        if checkpoint is None:
            checkpoint = self._store is not None
        if checkpoint:
            for name in self.streams():
                if not self._workers[name].failed:
                    self.checkpoint(name)

    def __enter__(self) -> "StreamService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(checkpoint=False if exc_type else None)
