"""Orthonormal Haar wavelet transform.

Substrate for the wavelet-histogram baseline the paper compares against
([MVW], section 5.1).  The transform is the standard iterative
average/difference pyramid with ``1/sqrt(2)`` normalization, so the basis
is orthonormal: L2 energy is preserved (Parseval) and keeping the largest
coefficients is the L2-optimal thresholding.

Coefficient layout for an input of (power-of-two) length ``n``:

* index 0 -- scaling coefficient (overall average times ``sqrt(n)``);
* index ``k = 2**level + offset`` (``level`` from 0 = coarsest) -- the
  detail coefficient whose support is the block of length
  ``n / 2**level`` starting at ``offset * n / 2**level``; it adds
  ``+c / sqrt(block)`` on the first half and ``-c / sqrt(block)`` on the
  second.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "haar_transform",
    "haar_inverse",
    "is_power_of_two",
    "next_power_of_two",
    "coefficient_support",
]

_SQRT2 = float(np.sqrt(2.0))


def is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    if n < 1:
        raise ValueError("n must be >= 1")
    power = 1
    while power < n:
        power *= 2
    return power


def haar_transform(values) -> np.ndarray:
    """Orthonormal Haar coefficients of a power-of-two-length sequence."""
    array = np.asarray(values, dtype=np.float64).copy()
    n = array.size
    if not is_power_of_two(n):
        raise ValueError(f"length {n} is not a power of two")
    output = np.empty(n, dtype=np.float64)
    width = n
    while width > 1:
        half = width // 2
        evens = array[0:width:2]
        odds = array[1:width:2]
        # Details of this level land at [half, width); averages cascade.
        output[half:width] = (evens - odds) / _SQRT2
        array[:half] = (evens + odds) / _SQRT2
        width = half
    output[0] = array[0]
    return output


def haar_inverse(coefficients) -> np.ndarray:
    """Invert :func:`haar_transform`."""
    coeffs = np.asarray(coefficients, dtype=np.float64)
    n = coeffs.size
    if not is_power_of_two(n):
        raise ValueError(f"length {n} is not a power of two")
    array = coeffs.copy()
    width = 1
    while width < n:
        averages = array[:width].copy()
        details = array[width : 2 * width].copy()
        array[0 : 2 * width : 2] = (averages + details) / _SQRT2
        array[1 : 2 * width : 2] = (averages - details) / _SQRT2
        width *= 2
    return array


def coefficient_support(index: int, n: int) -> tuple[int, int, int]:
    """Support of coefficient ``index`` as ``(start, mid, end)``.

    The coefficient adds ``+c/sqrt(end - start)`` on ``[start, mid)`` and
    ``-c/sqrt(end - start)`` on ``[mid, end)``.  For the scaling
    coefficient (index 0) the "positive half" is the whole domain and
    ``mid == end``.
    """
    if not is_power_of_two(n):
        raise ValueError(f"length {n} is not a power of two")
    if not (0 <= index < n):
        raise IndexError(f"coefficient index {index} out of range for n={n}")
    if index == 0:
        return 0, n, n
    level = index.bit_length() - 1
    offset = index - (1 << level)
    block = n >> level
    start = offset * block
    return start, start + block // 2, start + block
