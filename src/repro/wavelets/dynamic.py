"""Dynamic maintenance of wavelet-based histograms ([MVW00]).

The paper's related work cites Matias, Vitter & Wang's dynamic
wavelet-based histograms: a synopsis of a *frequency vector* (value ->
occurrence count) kept up to date as individual rows arrive or are
deleted.  Because one point update to the frequency vector touches
exactly the ``log2(n) + 1`` Haar coefficients on the root-to-leaf path,
the full coefficient set can be maintained incrementally in O(log n) per
update; the top-B synopsis is extracted on demand.

This is the streaming comparator for the warehouse experiments: it plays
the same role for the *distribution* as the fixed-window builder plays
for the *sequence*.
"""

from __future__ import annotations

import numpy as np

from .haar import coefficient_support
from .synopsis import WaveletSynopsis

__all__ = ["DynamicWaveletHistogram"]


class DynamicWaveletHistogram:
    """Incrementally maintained Haar decomposition of a frequency vector.

    ``domain_size`` fixes the value domain ``[0, domain_size)`` (padded
    internally to a power of two).  ``insert(value)`` / ``delete(value)``
    adjust the frequency of one value in O(log n); ``synopsis(budget)``
    returns the current top-``budget`` coefficient synopsis.
    """

    def __init__(self, domain_size: int) -> None:
        if domain_size < 1:
            raise ValueError("domain_size must be >= 1")
        self.domain_size = domain_size
        padded = 1
        while padded < domain_size:
            padded *= 2
        self._padded = padded
        self._coefficients = np.zeros(padded, dtype=np.float64)
        self._count = 0

    @property
    def padded_length(self) -> int:
        return self._padded

    def __len__(self) -> int:
        """Number of rows currently reflected in the frequencies."""
        return self._count

    def _update(self, value: int, delta: float) -> None:
        if not (0 <= value < self.domain_size):
            raise ValueError(
                f"value {value} outside domain [0, {self.domain_size})"
            )
        n = self._padded
        # Scaling coefficient: every unit of frequency adds 1/sqrt(n).
        self._coefficients[0] += delta / np.sqrt(n)
        index = 1
        while index < n:
            start, mid, end = coefficient_support(index, n)
            if not (start <= value < end):
                break
            sign = 1.0 if value < mid else -1.0
            self._coefficients[index] += sign * delta / np.sqrt(end - start)
            index = 2 * index + (0 if value < mid else 1)

    def insert(self, value: int) -> None:
        """One row with attribute ``value`` arrives."""
        self._update(int(value), 1.0)
        self._count += 1

    # Uniform ingestion naming: `append` is the one-point verb everywhere.
    append = insert

    def delete(self, value: int) -> None:
        """One row with attribute ``value`` is removed."""
        if self._count == 0:
            raise ValueError("nothing to delete")
        self._update(int(value), -1.0)
        self._count -= 1

    def extend(self, values) -> None:
        # Coerce and range-check the whole batch up front: an out-of-domain
        # (or NaN) value mid-batch must not leave the preceding values
        # inserted (all-or-nothing, the contract batch callers roll back
        # against).
        coerced = [int(value) for value in values]
        for value in coerced:
            if not (0 <= value < self.domain_size):
                raise ValueError(
                    f"value {value} outside domain [0, {self.domain_size})"
                )
        for value in coerced:
            self.insert(value)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (see :meth:`from_dict`).

        The maintained coefficient vector is the entire state; the
        restored histogram continues inserts and deletes exactly where
        the original left off.
        """
        return {
            "domain_size": self.domain_size,
            "count": self._count,
            "coefficients": self._coefficients.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DynamicWaveletHistogram":
        """Inverse of :meth:`to_dict`."""
        histogram = cls(int(payload["domain_size"]))
        coefficients = np.asarray(payload["coefficients"], dtype=np.float64)
        if coefficients.size != histogram._padded:
            raise ValueError("coefficient vector does not match the padded domain")
        count = int(payload["count"])
        if count < 0:
            raise ValueError("count must be non-negative")
        histogram._coefficients = coefficients
        histogram._count = count
        return histogram

    def frequencies(self) -> np.ndarray:
        """The exact maintained frequency vector (for verification)."""
        from .haar import haar_inverse

        return haar_inverse(self._coefficients)[: self.domain_size]

    def synopsis(self, budget: int) -> WaveletSynopsis:
        """Top-``budget`` coefficient synopsis of the current frequencies."""
        if budget < 1:
            raise ValueError("budget must be >= 1")
        keep = min(budget, self._padded)
        order = np.lexsort(
            (np.arange(self._padded), -np.abs(self._coefficients))
        )[:keep]
        retained = {
            int(i): float(self._coefficients[i])
            for i in order
            if self._coefficients[i] != 0.0 or int(i) == 0
        }
        if not retained:
            retained = {0: 0.0}
        return WaveletSynopsis(retained, self._padded, self.domain_size)

    def estimate_count(self, low: int, high: int, budget: int = 64) -> float:
        """Estimated number of rows with value in ``[low, high]``."""
        low = max(0, int(low))
        high = min(self.domain_size - 1, int(high))
        if low > high:
            return 0.0
        return max(0.0, self.synopsis(budget).range_sum(low, high))
