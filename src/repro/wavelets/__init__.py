"""Haar wavelet synopses: the comparison baseline of paper section 5.1."""

from .haar import (
    coefficient_support,
    haar_inverse,
    haar_transform,
    is_power_of_two,
    next_power_of_two,
)
from .dynamic import DynamicWaveletHistogram
from .synopsis import WaveletSynopsis

__all__ = [
    "DynamicWaveletHistogram",
    "WaveletSynopsis",
    "coefficient_support",
    "haar_inverse",
    "haar_transform",
    "is_power_of_two",
    "next_power_of_two",
]
