"""Wavelet synopses: the baseline summarization of paper section 5.1.

A :class:`WaveletSynopsis` keeps the ``budget`` largest orthonormal Haar
coefficients of a sequence (L2-optimal thresholding) and answers point and
range-sum queries from the retained coefficients alone.  One coefficient
costs the same two numbers (index, value) a histogram bucket costs, so a
budget-B synopsis and a B-bucket histogram are equal-space synopses --
this is the comparison of the paper's Figure 6.

In the fixed-window experiments the paper recomputes the wavelet synopsis
from scratch every time the window slides, which is what
:meth:`WaveletSynopsis.from_values` does; the O(n) transform per slide is
the source of its order-of-magnitude construction-time disadvantage.
"""

from __future__ import annotations

import numpy as np

from .haar import (
    coefficient_support,
    haar_inverse,
    haar_transform,
    is_power_of_two,
    next_power_of_two,
)

__all__ = ["WaveletSynopsis"]


class WaveletSynopsis:
    """Top-``budget`` Haar coefficient synopsis of a finite sequence."""

    def __init__(
        self, coefficients: dict[int, float], padded_length: int, true_length: int
    ) -> None:
        if not is_power_of_two(padded_length):
            raise ValueError("padded_length must be a power of two")
        if not (1 <= true_length <= padded_length):
            raise ValueError("true_length must be in [1, padded_length]")
        for index in coefficients:
            if not (0 <= index < padded_length):
                raise ValueError(f"coefficient index {index} out of range")
        self._coefficients = dict(coefficients)
        self._padded_length = padded_length
        self._true_length = true_length

    @classmethod
    def from_values(cls, values, budget: int) -> "WaveletSynopsis":
        """Transform, threshold to the ``budget`` largest coefficients.

        Sequences whose length is not a power of two are padded with their
        mean (the padding minimizes artificial high-frequency energy at
        the boundary); queries are clipped to the true length.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            raise ValueError("cannot summarize an empty sequence")
        if budget < 1:
            raise ValueError("budget must be >= 1")
        padded = next_power_of_two(array.size)
        if padded != array.size:
            array = np.concatenate(
                (array, np.full(padded - array.size, array.mean()))
            )
        coefficients = haar_transform(array)
        keep = min(budget, padded)
        # Largest |coefficient| first; stable ties by index for determinism.
        order = np.lexsort((np.arange(padded), -np.abs(coefficients)))[:keep]
        retained = {int(i): float(coefficients[i]) for i in order}
        return cls(retained, padded, int(np.asarray(values).size))

    @property
    def budget(self) -> int:
        return len(self._coefficients)

    @property
    def coefficients(self) -> dict[int, float]:
        return dict(self._coefficients)

    def __len__(self) -> int:
        """Length of the approximated (unpadded) sequence."""
        return self._true_length

    def to_array(self) -> np.ndarray:
        """Reconstruct the approximate sequence (unpadded)."""
        dense = np.zeros(self._padded_length, dtype=np.float64)
        for index, value in self._coefficients.items():
            dense[index] = value
        return haar_inverse(dense)[: self._true_length]

    def point_estimate(self, position: int) -> float:
        """Estimate one value by summing the root-to-leaf contributions."""
        if not (0 <= position < self._true_length):
            raise IndexError(
                f"position {position} out of range for length {self._true_length}"
            )
        total = self._coefficients.get(0, 0.0) / np.sqrt(self._padded_length)
        index = 1
        n = self._padded_length
        while index < n:
            start, mid, end = coefficient_support(index, n)
            if not (start <= position < end):
                break
            value = self._coefficients.get(index)
            if value is not None:
                sign = 1.0 if position < mid else -1.0
                total += sign * value / np.sqrt(end - start)
            # Descend to the child covering `position`.
            index = 2 * index + (0 if position < mid else 1)
        return float(total)

    def _prefix_sum(self, position: int) -> float:
        """Estimated sum of positions ``[0 .. position]`` inclusive."""
        count = position + 1
        total = self._coefficients.get(0, 0.0) * count / np.sqrt(self._padded_length)
        for index, value in self._coefficients.items():
            if index == 0:
                continue
            start, mid, end = coefficient_support(index, self._padded_length)
            plus = min(count, mid) - min(count, start)
            minus = min(count, end) - min(count, mid)
            if plus or minus:
                total += value * (plus - minus) / np.sqrt(end - start)
        return float(total)

    def range_sum(self, i: int, j: int) -> float:
        """Estimate the sum of positions ``[i, j]`` inclusive (O(budget))."""
        if not (0 <= i <= j < self._true_length):
            raise ValueError(
                f"range [{i}, {j}] out of bounds for length {self._true_length}"
            )
        high = self._prefix_sum(j)
        low = self._prefix_sum(i - 1) if i > 0 else 0.0
        return high - low

    def range_average(self, i: int, j: int) -> float:
        return self.range_sum(i, j) / (j - i + 1)

    def sse(self, values) -> float:
        """Exact SSE between the synopsis reconstruction and true values."""
        array = np.asarray(values, dtype=np.float64)
        if array.size != self._true_length:
            raise ValueError(
                f"value length {array.size} does not match synopsis length "
                f"{self._true_length}"
            )
        return float(np.sum((array - self.to_array()) ** 2))

    def to_dict(self) -> dict:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        indices = sorted(self._coefficients)
        return {
            "padded_length": self._padded_length,
            "true_length": self._true_length,
            "indices": indices,
            "values": [self._coefficients[i] for i in indices],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WaveletSynopsis":
        """Inverse of :meth:`to_dict`."""
        indices = payload["indices"]
        values = payload["values"]
        if len(indices) != len(values):
            raise ValueError("indices and values must have equal length")
        coefficients = {int(i): float(v) for i, v in zip(indices, values)}
        return cls(coefficients, int(payload["padded_length"]),
                   int(payload["true_length"]))
