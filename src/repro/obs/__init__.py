"""repro.obs -- observability for the stream service.

The metrics / tracing / accuracy-monitoring subsystem of the serving
layer: a label-aware :class:`MetricsRegistry` (counters, gauges,
bounded-reservoir histograms with race-free snapshots), a :class:`Tracer`
recording spans around the ingest -> maintain -> materialize ->
checkpoint -> recover stages, an :class:`AccuracyMonitor` comparing each
hosted synopsis against a shadowed exact window (observed epsilon vs the
configured Theorem-1 bound), and Prometheus-text / JSONL exporters.
:class:`~repro.service.service.StreamService` wires all of it through
its workers, supervisor and snapshot store; see ``docs/API.md``
("Observability") and the README metrics quickstart.
"""

from .accuracy import AccuracyMonitor, AccuracyReport
from .export import (
    parse_prometheus_text,
    samples_to_jsonl,
    samples_to_prometheus_text,
    to_jsonl,
    to_prometheus_text,
    write_jsonl,
)
from .metrics import Counter, Gauge, HistogramMetric, MetricsRegistry
from .tracing import PipelineObserver, SpanRecord, Tracer

__all__ = [
    "AccuracyMonitor",
    "AccuracyReport",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "PipelineObserver",
    "SpanRecord",
    "Tracer",
    "parse_prometheus_text",
    "samples_to_jsonl",
    "samples_to_prometheus_text",
    "to_jsonl",
    "to_prometheus_text",
    "write_jsonl",
]
