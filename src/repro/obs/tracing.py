"""Stage tracing for the stream service.

A :class:`Tracer` records :class:`SpanRecord` entries for the pipeline
stages the service executes per stream -- ``ingest`` -> ``maintain`` ->
``materialize`` -> ``checkpoint`` -> ``recover`` -- into a bounded ring
buffer, and mirrors every span duration into a per-stage latency
histogram on the attached :class:`~repro.obs.metrics.MetricsRegistry`
(``repro_stage_seconds{stage=...,stream=...}``).  Two entry points:

* ``with tracer.span("checkpoint", stream="cpu"):`` -- time a block;
  the span is recorded even when the block raises, with ``status`` set
  to the exception type so failure latency is visible too.
* ``tracer.record("maintain", stream, seconds)`` -- file an already
  measured duration (the pipeline times its stages inline; re-timing
  them would double the clock reads on the hot path).

:class:`PipelineObserver` adapts a tracer to the duck-typed ``observer``
hook of :class:`~repro.runtime.pipeline.StreamPipeline`, keeping the
runtime layer free of any dependency on this package.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

__all__ = ["PipelineObserver", "SpanRecord", "Tracer"]

#: The service stages a span may describe, in pipeline order.
STAGES = ("ingest", "maintain", "materialize", "checkpoint", "recover", "certify")

STAGE_SECONDS_METRIC = "repro_stage_seconds"
SPANS_TOTAL_METRIC = "repro_spans_total"


@dataclass(frozen=True)
class SpanRecord:
    """One finished stage execution."""

    stage: str
    stream: str
    started_at: float
    seconds: float
    status: str = "ok"
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "stream": self.stream,
            "started_at": self.started_at,
            "seconds": self.seconds,
            "status": self.status,
            "meta": dict(self.meta),
        }


class Tracer:
    """Bounded span recorder feeding per-stage latency histograms.

    ``capacity`` bounds the retained span ring (oldest spans are
    evicted); the histograms on the registry keep the aggregate view
    alive regardless of eviction.
    """

    def __init__(
        self, registry: MetricsRegistry | None = None, capacity: int = 2048
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._spans: deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(
        self,
        stage: str,
        stream: str,
        seconds: float,
        *,
        status: str = "ok",
        started_at: float | None = None,
        **meta,
    ) -> SpanRecord:
        """File a span whose duration was measured by the caller."""
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; use one of {STAGES}")
        span = SpanRecord(
            stage=stage,
            stream=stream,
            started_at=time.time() if started_at is None else started_at,
            seconds=float(seconds),
            status=status,
            meta=meta,
        )
        with self._lock:
            self._spans.append(span)
        self.registry.histogram(
            STAGE_SECONDS_METRIC, stage=stage, stream=stream
        ).observe(span.seconds)
        self.registry.counter(
            SPANS_TOTAL_METRIC, stage=stage, stream=stream, status=status
        ).inc()
        return span

    @contextmanager
    def span(self, stage: str, stream: str, **meta):
        """Time a block; the span lands even when the block raises."""
        started_wall = time.time()
        started = time.perf_counter()
        status = "ok"
        try:
            yield
        except BaseException as error:
            status = type(error).__name__
            raise
        finally:
            self.record(
                stage,
                stream,
                time.perf_counter() - started,
                status=status,
                started_at=started_wall,
                **meta,
            )

    def spans(
        self, stage: str | None = None, stream: str | None = None
    ) -> list[SpanRecord]:
        """Retained spans, oldest first, optionally filtered."""
        with self._lock:
            spans = list(self._spans)
        if stage is not None:
            spans = [s for s in spans if s.stage == stage]
        if stream is not None:
            spans = [s for s in spans if s.stream == stream]
        return spans

    def stage_seconds(self, stage: str, stream: str):
        """The latency histogram backing ``stage``/``stream`` spans."""
        return self.registry.histogram(
            STAGE_SECONDS_METRIC, stage=stage, stream=stream
        )


class PipelineObserver:
    """Adapter: pipeline stage timings -> tracer spans + histograms.

    :class:`~repro.runtime.pipeline.StreamPipeline` calls
    ``record_stage(stage, seconds, arrivals)`` with durations it already
    measured; this observer files them under the owning stream's name.
    """

    def __init__(self, tracer: Tracer, stream: str) -> None:
        self.tracer = tracer
        self.stream = stream

    def record_stage(self, stage: str, seconds: float, arrivals: int) -> None:
        self.tracer.record(stage, self.stream, seconds, arrivals=arrivals)
