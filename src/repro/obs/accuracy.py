"""Online accuracy monitoring: observed epsilon vs the configured bound.

The paper proves each maintained histogram stays within ``(1 + eps)`` of
the optimal synopsis (Theorem 1); :class:`AccuracyMonitor` checks the
*realized* figure while the stream runs.  It shadows the hosted synopsis
with a bounded exact sliding window of the same ingested points and, at
a configurable cadence, compares the synopsis's answers against ground
truth computed from that window:

* ``"sse"`` -- for histogram synopses: observed epsilon is
  ``SSE(served) / SSE(optimal) - 1`` over the shadow window, the exact
  quantity Theorem 1 bounds (the optimal error comes from the O(n^2 B)
  V-optimal DP, which is why the shadow window is bounded and the check
  runs on a cadence, not per point).
* ``"range_sum"`` -- seeded random range-sum probes; observed epsilon is
  the worst relative error against exact window sums.
* ``"quantile"`` -- decile probes; observed epsilon is the worst rank
  error of the synopsis's quantile answers within the window, the GK
  summary's native guarantee.
* ``"window_count"`` -- for the counting backends of
  :mod:`repro.counting`: against an exponential histogram, the worst
  relative error of the windowed nonzero count and sum over the shadow
  tail (size the shadow window at least as large as the synopsis's
  window); against a CR-precis table, the worst point-query
  overestimate as a fraction of the total mass decoded from the shadow
  window (a recent-window proxy once the stream outgrows the shadow,
  like the whole-prefix modes).

For whole-prefix backends (GK, reservoir, equi-depth) the shadow window
is exact ground truth only while it still covers the entire stream;
after that the comparison degrades into a recent-window proxy, which is
the operational signal a monitor wants anyway (size the window to taste).
Every check lands in a bounded report log and, when a registry is
attached, in ``repro_observed_epsilon`` / ``repro_accuracy_checks_total``
/ ``repro_accuracy_violations_total``.
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.bucket import Histogram
from ..core.optimal import optimal_error
from ..counting.cr_precis import CRPrecis
from ..counting.eh import ExponentialHistogram
from ..counting.encoding import decode_updates
from ..query.queries import synopsis_quantile
from ..streams.window import SlidingWindow
from .metrics import MetricsRegistry

__all__ = ["AccuracyMonitor", "AccuracyReport"]

MODES = ("auto", "sse", "range_sum", "quantile", "window_count")

OBSERVED_EPSILON_METRIC = "repro_observed_epsilon"
CHECKS_METRIC = "repro_accuracy_checks_total"
VIOLATIONS_METRIC = "repro_accuracy_violations_total"

#: Probe fractions of the quantile mode (the deciles).
QUANTILE_PROBES = tuple(np.linspace(0.1, 0.9, 9))


@dataclass(frozen=True)
class AccuracyReport:
    """Outcome of one accuracy check.

    ``shed_points`` / ``shed_fraction`` account QoS-shed mass (see
    :mod:`repro.service.qos`): points the admission layer dropped never
    reach the synopsis *or* the shadow window, so the comparison alone
    would under-report the error of the thinned stream.  The effective
    epsilon is widened by the shed fraction and ``within_bound`` judges
    the widened figure -- degradation stays honest in the report.
    """

    arrivals: int
    mode: str
    observed_epsilon: float
    configured_epsilon: float
    window_points: int
    shed_points: int = 0
    shed_fraction: float = 0.0

    @property
    def effective_epsilon(self) -> float:
        """Observed epsilon widened by the shed mass fraction."""
        return self.observed_epsilon + self.shed_fraction

    @property
    def within_bound(self) -> bool:
        return self.effective_epsilon <= self.configured_epsilon

    def to_dict(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "mode": self.mode,
            "observed_epsilon": self.observed_epsilon,
            "configured_epsilon": self.configured_epsilon,
            "window_points": self.window_points,
            "shed_points": self.shed_points,
            "shed_fraction": self.shed_fraction,
            "effective_epsilon": self.effective_epsilon,
            "within_bound": self.within_bound,
        }


class AccuracyMonitor:
    """Shadow an exact window; report observed epsilon on a cadence.

    Parameters
    ----------
    epsilon:
        The configured approximation bound to report against (for the
        fixed-window backend, Theorem 1's constant).
    window_size:
        Capacity of the exact shadow window.  Bounds both memory and the
        cost of a check.
    check_every:
        Minimum ingested points between checks.
    probes / seed:
        Number of seeded random ranges the ``range_sum`` mode draws per
        check (the quantile mode probes the deciles instead).
    mode:
        ``"auto"`` (resolve from the first checked synopsis), or one of
        ``"sse"`` / ``"range_sum"`` / ``"quantile"``.
    num_buckets:
        Bucket budget of the optimal reference in ``sse`` mode; defaults
        to the served histogram's own bucket count.
    max_reports:
        Bound on the retained report log.

    The monitor is driven from the owning worker thread (``extend`` then
    ``maybe_check``); readers take snapshots through ``reports()`` /
    ``latest()``, which only touch the bounded deque.
    """

    def __init__(
        self,
        epsilon: float,
        *,
        window_size: int = 1024,
        check_every: int = 512,
        probes: int = 16,
        seed: int = 0,
        mode: str = "auto",
        num_buckets: int | None = None,
        max_reports: int = 256,
        registry: MetricsRegistry | None = None,
        stream: str = "",
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if probes < 1:
            raise ValueError("probes must be >= 1")
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; use one of {MODES}")
        self.epsilon = float(epsilon)
        self.check_every = int(check_every)
        self.probes = int(probes)
        self.mode = mode
        self.num_buckets = num_buckets
        self._window = SlidingWindow(window_size)
        self._rng = np.random.default_rng(seed)
        self._reports: deque[AccuracyReport] = deque(maxlen=max_reports)
        self._last_checked = 0
        # Shed accounting: points admission control dropped before they
        # could reach the synopsis or the shadow window.  Guarded by a
        # leaf lock -- note_shed() is called from producer and worker
        # threads (QoS admission, drop_oldest evictions).
        self._shed_lock = threading.Lock()
        self._shed_points = 0
        self._observed = (
            registry.gauge(OBSERVED_EPSILON_METRIC, stream=stream)
            if registry is not None
            else None
        )
        self._checks = (
            registry.counter(CHECKS_METRIC, stream=stream)
            if registry is not None
            else None
        )
        self._violations = (
            registry.counter(VIOLATIONS_METRIC, stream=stream)
            if registry is not None
            else None
        )

    # ------------------------------------------------------------------
    # Worker-thread side
    # ------------------------------------------------------------------

    def extend(self, batch) -> None:
        """Mirror ingested points into the exact shadow window."""
        self._window.extend(batch)

    def note_shed(self, points: int) -> None:
        """Account points shed before ingestion (QoS / drop_oldest).

        Shed mass widens the effective epsilon of every subsequent
        report by ``shed / (arrivals + shed)`` -- the monitor cannot
        claim the configured bound over points it never saw.
        """
        if points > 0:
            with self._shed_lock:
                self._shed_points += int(points)

    @property
    def shed_points(self) -> int:
        with self._shed_lock:
            return self._shed_points

    def maybe_check(self, arrivals: int, synopsis) -> AccuracyReport | None:
        """Run a check when the cadence is due (returns the report, if any)."""
        if arrivals - self._last_checked < self.check_every:
            return None
        return self.force_check(arrivals, synopsis)

    def force_check(self, arrivals: int, synopsis) -> AccuracyReport | None:
        """Run a check now, ignoring the cadence (certification path).

        Still returns None when no meaningful comparison exists: an empty
        shadow window, or an SSE comparison before the window has re-
        aligned with the synopsis after a restore.
        """
        if len(self._window) == 0:
            return None
        if self._resolve_mode(synopsis) == "sse" and not self._aligned(arrivals):
            # A monitor attached after a restore has not yet re-filled its
            # shadow window; an SSE comparison against a window covering
            # different positions than the synopsis would be meaningless.
            return None
        return self.check(arrivals, synopsis)

    def _aligned(self, arrivals: int) -> bool:
        """Has the shadow window seen every point the synopsis covers?"""
        return self._window.total_seen >= arrivals or self._window.is_full

    def check(self, arrivals: int, synopsis) -> AccuracyReport:
        """Compare ``synopsis`` against the shadow window right now."""
        self._last_checked = arrivals
        values = self._window.values()
        mode = self._resolve_mode(synopsis)
        if mode == "sse":
            observed = self._observed_sse_epsilon(synopsis, values)
        elif mode == "range_sum":
            observed = self._observed_range_sum_epsilon(synopsis, values)
        elif mode == "window_count":
            observed = self._observed_window_count_epsilon(synopsis, values)
        else:
            observed = self._observed_quantile_epsilon(synopsis, values)
        shed = self.shed_points
        offered = arrivals + shed
        report = AccuracyReport(
            arrivals=arrivals,
            mode=mode,
            observed_epsilon=observed,
            configured_epsilon=self.epsilon,
            window_points=values.size,
            shed_points=shed,
            shed_fraction=shed / offered if offered else 0.0,
        )
        self._reports.append(report)
        if self._observed is not None:
            self._observed.set(report.effective_epsilon)
        if self._checks is not None:
            self._checks.inc()
        if self._violations is not None and not report.within_bound:
            self._violations.inc()
        return report

    # ------------------------------------------------------------------
    # Ground-truth comparisons
    # ------------------------------------------------------------------

    def _resolve_mode(self, synopsis) -> str:
        if self.mode != "auto":
            return self.mode
        if isinstance(synopsis, Histogram):
            return "sse"
        if isinstance(synopsis, (ExponentialHistogram, CRPrecis)):
            return "window_count"
        if getattr(synopsis, "range_sum", None) is not None:
            return "range_sum"
        return "quantile"

    def _observed_sse_epsilon(self, histogram: Histogram, values) -> float:
        """Theorem 1's ratio: SSE(served) / SSE(optimal) - 1."""
        if values.size == 0:
            return 0.0
        served = histogram.sse(values)
        budget = self.num_buckets or histogram.num_buckets
        optimal = optimal_error(values, budget)
        if optimal <= 1e-12:
            # The optimal histogram is exact here; the served one must be
            # (numerically) exact too or the ratio is unbounded.
            return 0.0 if served <= 1e-9 else float("inf")
        return max(0.0, served / optimal - 1.0)

    def _observed_range_sum_epsilon(self, synopsis, values) -> float:
        if values.size == 0:
            return 0.0
        cumulative = np.concatenate(([0.0], np.cumsum(values)))
        scale = max(float(np.abs(values).mean()), 1e-12)
        worst = 0.0
        for _ in range(self.probes):
            i = int(self._rng.integers(values.size))
            j = int(self._rng.integers(i, values.size))
            exact = float(cumulative[j + 1] - cumulative[i])
            approx = float(synopsis.range_sum(i, j))
            # Relative to the exact answer, floored at one average point
            # so near-zero sums do not explode the ratio.
            worst = max(worst, abs(approx - exact) / max(abs(exact), scale))
        return worst

    def _observed_window_count_epsilon(self, synopsis, values) -> float:
        if values.size == 0:
            return 0.0
        if isinstance(synopsis, ExponentialHistogram):
            tail = np.rint(values[-synopsis.window :]).astype(np.int64)
            exact_nonzero = float(np.count_nonzero(tail))
            exact_sum = float(tail.sum())
            count_error = abs(synopsis.nonzero_count() - exact_nonzero) / max(
                exact_nonzero, 1.0
            )
            sum_error = abs(synopsis.window_sum() - exact_sum) / max(
                exact_sum, 1.0
            )
            return max(count_error, sum_error)
        # CR-precis: worst point-query overestimate over the keys decoded
        # from the shadow window, as a fraction of the total mass.
        keys, deltas = decode_updates(values)
        frequencies: dict[int, int] = {}
        for key, delta in zip(keys.tolist(), deltas.tolist()):
            frequencies[key] = frequencies.get(key, 0) + delta
        mass = float(max(synopsis.l1(), 1))
        worst = 0.0
        for key, count in frequencies.items():
            served = synopsis.point_query(key)
            worst = max(worst, (served - count) / mass)
        return worst

    def _observed_quantile_epsilon(self, synopsis, values) -> float:
        if values.size == 0:
            return 0.0
        ordered = np.sort(values)
        n = ordered.size
        worst = 0.0
        for fraction in QUANTILE_PROBES:
            approx = synopsis_quantile(synopsis, float(fraction))
            # Rank band the answer occupies in the exact window; the
            # observed error is its distance from the target rank.
            lo = bisect.bisect_left(ordered.tolist(), approx)
            hi = bisect.bisect_right(ordered.tolist(), approx)
            target = fraction * (n - 1)
            if lo <= target <= hi:
                continue
            distance = min(abs(lo - target), abs(hi - 1 - target))
            worst = max(worst, distance / n)
        return worst

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def reports(self) -> list[AccuracyReport]:
        """Retained reports, oldest first."""
        return list(self._reports)

    def latest(self) -> AccuracyReport | None:
        reports = self.reports()
        return reports[-1] if reports else None

    def to_dict(self) -> dict:
        """JSON-friendly summary (reported inside worker stats)."""
        latest = self.latest()
        reports = self.reports()
        return {
            "configured_epsilon": self.epsilon,
            "check_every": self.check_every,
            "window_points": len(self._window),
            "checks": len(reports),
            "violations": sum(1 for r in reports if not r.within_bound),
            "observed_epsilon": (
                latest.observed_epsilon if latest is not None else None
            ),
            "shed_points": self.shed_points,
            "shed_fraction": (
                latest.shed_fraction if latest is not None else 0.0
            ),
            "effective_epsilon": (
                latest.effective_epsilon if latest is not None else None
            ),
            "mode": latest.mode if latest is not None else self.mode,
        }
