"""The metrics substrate: counters, gauges, bounded-reservoir histograms.

A :class:`MetricsRegistry` is a thread-safe, label-aware home for every
operational number the service layer produces.  Handles are cheap and
cached -- ``registry.counter("repro_ingested_points_total", stream="cpu")``
returns the *same* :class:`Counter` on every call, so hot paths hold a
direct reference and pay one small lock per update.  Three instrument
kinds cover the service's needs:

* :class:`Counter` -- monotone ``inc``; resets only with the registry.
* :class:`Gauge` -- ``set``/``inc``; the last written value wins.
* :class:`HistogramMetric` -- running count/sum/min/max plus a bounded
  reservoir of recent observations for percentile reporting.  The
  reservoir is snapshotted under the metric's lock, so quantiles are
  computed from one consistent view (never a torn or mutating deque).

``collect()`` renders every instrument into plain dict samples, which is
what the Prometheus / JSONL exporters (:mod:`repro.obs.export`) and
``StreamService.metrics()`` consume.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = ["Counter", "Gauge", "HistogramMetric", "MetricsRegistry"]

#: Default bound on the per-histogram observation reservoir.
DEFAULT_RESERVOIR = 4096

#: Quantiles rendered into collected histogram samples.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def _valid_metric_name(name: str) -> bool:
    return bool(name) and name.replace("_", "").replace(":", "").isalnum() \
        and not name[0].isdigit()


class _Instrument:
    """Shared shape of one named, labeled instrument."""

    kind = "untyped"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()

    def sample(self) -> dict:
        """One JSON-friendly sample (shared envelope + kind-specific body)."""
        return {"name": self.name, "kind": self.kind, "labels": dict(self.labels),
                **self._body()}

    def _body(self) -> dict:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        super().__init__(name, labels)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def _body(self) -> dict:
        return {"value": self.value}


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, observed epsilon)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is below (high-watermarks)."""
        value = float(value)
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _body(self) -> dict:
        return {"value": self.value}


class HistogramMetric(_Instrument):
    """Running distribution summary with a bounded observation reservoir.

    ``observe`` is the hot-path verb: one lock, one deque append (the
    deque's ``maxlen`` evicts the oldest observation, so memory is
    bounded no matter how long the stream runs).  Readers always work
    from a snapshot taken under the same lock -- the fix for the
    deque-mutated-during-iteration race the ad-hoc latency ring had.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        reservoir: int = DEFAULT_RESERVOIR,
    ) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        super().__init__(name, labels)
        self._recent: deque[float] = deque(maxlen=reservoir)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._recent.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> list[float]:
        """A consistent copy of the recent-observation reservoir."""
        with self._lock:
            return list(self._recent)

    def quantile(self, fraction: float) -> float:
        """Quantile of the recent observations (0.0 if none)."""
        recent = self.snapshot()
        if not recent:
            return 0.0
        return float(np.quantile(recent, fraction))

    def quantiles(self, fractions=SUMMARY_QUANTILES) -> dict[float, float]:
        """Several quantiles computed from *one* reservoir snapshot.

        Using a single snapshot keeps the reported percentiles mutually
        consistent (p50 and p99 describe the same set of observations).
        """
        recent = self.snapshot()
        if not recent:
            return {float(f): 0.0 for f in fractions}
        values = np.quantile(recent, list(fractions))
        return {float(f): float(v) for f, v in zip(fractions, values)}

    def _body(self) -> dict:
        with self._lock:
            recent = list(self._recent)
            count, total = self._count, self._sum
            low = self._min if self._count else 0.0
            high = self._max if self._count else 0.0
        if recent:
            marks = np.quantile(recent, list(SUMMARY_QUANTILES))
            quantiles = {
                str(f): float(v) for f, v in zip(SUMMARY_QUANTILES, marks)
            }
        else:
            quantiles = {str(f): 0.0 for f in SUMMARY_QUANTILES}
        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "quantiles": quantiles,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": HistogramMetric}


class MetricsRegistry:
    """Thread-safe, label-aware instrument store.

    One registry serves one :class:`~repro.service.service.StreamService`
    (or one test).  Instruments are identified by ``(name, labels)``;
    asking twice returns the same handle, asking for a taken name with a
    different kind is an error (a typo'd re-registration must fail
    loudly, exactly like the maintainer registry).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, _Instrument] = {}

    def _get(self, kind: str, name: str, labels: dict, **extra) -> _Instrument:
        if not _valid_metric_name(name):
            raise ValueError(f"invalid metric name {name!r}")
        for key, value in labels.items():
            labels[key] = str(value)
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = _KINDS[kind](name, key[1], **extra)
                self._instruments[key] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}, "
                    f"not {kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self, name: str, *, reservoir: int = DEFAULT_RESERVOIR, **labels
    ) -> HistogramMetric:
        return self._get("histogram", name, labels, reservoir=reservoir)

    def collect(self) -> list[dict]:
        """Every instrument rendered to a dict sample, sorted by identity."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return [instrument.sample() for _, instrument in instruments]

    def collect_labeled(self, **labels) -> list[dict]:
        """Samples whose labels include every given ``key=value`` pair."""
        wanted = {key: str(value) for key, value in labels.items()}
        return [
            sample for sample in self.collect()
            if all(sample["labels"].get(k) == v for k, v in wanted.items())
        ]
