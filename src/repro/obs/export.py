"""Exporters: registry samples -> Prometheus text / JSONL.

The Prometheus rendering follows the text exposition format (0.0.4):
``# TYPE`` headers, escaped label values, counters suffixed ``_total``
by convention of the metric names themselves, and reservoir histograms
rendered as summaries (``{quantile="0.5"}`` series plus ``_count`` /
``_sum``).  :func:`parse_prometheus_text` is the matching minimal
parser -- the CI smoke step and the test suite use it to assert that
whatever the service exposes actually parses back into samples.

JSONL is one sample per line, each line the dict produced by
:meth:`~repro.obs.metrics.MetricsRegistry.collect`, stamped with an
export timestamp -- the shape log shippers and offline analysis want.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

from .metrics import MetricsRegistry

__all__ = [
    "parse_prometheus_text",
    "samples_to_jsonl",
    "samples_to_prometheus_text",
    "to_jsonl",
    "to_prometheus_text",
    "write_jsonl",
]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def samples_to_prometheus_text(samples) -> str:
    """Render collected dict samples in Prometheus text format.

    Operating on samples rather than a registry is what lets the shard
    router merge registries that live in *other processes*: each shard
    serializes ``registry.collect()`` over its control channel and the
    router renders the concatenation (with a ``shard`` label added) as
    one exposition document.
    """
    lines: list[str] = []
    typed: set[str] = set()
    for sample in samples:
        name, kind, labels = sample["name"], sample["kind"], sample["labels"]
        prom_type = "summary" if kind == "histogram" else kind
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {prom_type}")
        if kind == "histogram":
            for fraction, value in sample["quantiles"].items():
                lines.append(
                    f"{name}{_render_labels(labels, {'quantile': fraction})} "
                    f"{_format_value(value)}"
                )
            lines.append(
                f"{name}_count{_render_labels(labels)} {sample['count']}"
            )
            lines.append(
                f"{name}_sum{_render_labels(labels)} "
                f"{_format_value(sample['sum'])}"
            )
        else:
            lines.append(
                f"{name}{_render_labels(labels)} "
                f"{_format_value(sample['value'])}"
            )
    return "\n".join(lines) + "\n"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every registry instrument in Prometheus text format."""
    return samples_to_prometheus_text(registry.collect())


_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> list[dict]:
    """Parse Prometheus text back into ``{name, labels, value}`` samples.

    Raises ``ValueError`` on any malformed line, which is exactly what a
    smoke test wants: a silent partial parse would defeat the check.
    """
    samples: list[dict] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed metric line {lineno}: {raw!r}")
        label_text = match.group("labels") or ""
        labels = {key: value for key, value in _LABEL_PAIR.findall(label_text)}
        value_text = match.group("value")
        if value_text in ("+Inf", "-Inf", "NaN"):
            value = float(value_text.replace("Inf", "inf").replace("NaN", "nan"))
        else:
            try:
                value = float(value_text)
            except ValueError as error:
                raise ValueError(
                    f"malformed metric value on line {lineno}: {raw!r}"
                ) from error
        samples.append(
            {"name": match.group("name"), "labels": labels, "value": value}
        )
    return samples


def samples_to_jsonl(samples) -> str:
    """Collected dict samples as JSON lines, stamped with the export time."""
    stamp = time.time()
    lines = [
        json.dumps({"exported_at": stamp, **sample}, sort_keys=True)
        for sample in samples
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per sample per line, stamped with the export time."""
    return samples_to_jsonl(registry.collect())


def write_jsonl(registry: MetricsRegistry, path) -> Path:
    """Append the current samples to ``path`` (created if missing)."""
    path = Path(path)
    with open(path, "a") as handle:
        handle.write(to_jsonl(registry))
    return path
