"""Streaming sketch substrates from the paper's related work."""

from .gk import GKQuantileSummary
from .reservoir import ReservoirSample

__all__ = ["GKQuantileSummary", "ReservoirSample"]
