"""Reservoir sampling ([SRL99], paper related work).

A uniform random sample of a stream in bounded memory, the simplest
space-efficient synopsis.  Used as a baseline in the warehouse ablations:
an equi-depth histogram over the reservoir is the classical
sampling-based answer to approximate aggregation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReservoirSample"]


class ReservoirSample:
    """Algorithm-R uniform reservoir over an unbounded stream."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._sample: list[float] = []
        self._count = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        """Number of stream values observed (not the sample size)."""
        return self._count

    @property
    def sample_size(self) -> int:
        return len(self._sample)

    def insert(self, value: float) -> None:
        self._count += 1
        if len(self._sample) < self._capacity:
            self._sample.append(float(value))
            return
        slot = int(self._rng.integers(self._count))
        if slot < self._capacity:
            self._sample[slot] = float(value)

    # Uniform ingestion naming: `append` is the one-point verb everywhere.
    append = insert

    def extend(self, values) -> None:
        for value in values:
            self.insert(value)

    def values(self) -> np.ndarray:
        """The current sample (order not meaningful)."""
        return np.asarray(self._sample, dtype=np.float64)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (see :meth:`from_dict`).

        Includes the generator state, so a restored reservoir makes the
        same replacement decisions on the remaining stream as the
        original would have -- resumption is bit-exact, not merely
        distributionally equivalent.
        """
        return {
            "capacity": self._capacity,
            "count": self._count,
            "sample": list(self._sample),
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReservoirSample":
        """Inverse of :meth:`to_dict`."""
        reservoir = cls(int(payload["capacity"]))
        count = int(payload["count"])
        sample = [float(value) for value in payload["sample"]]
        if count < 0:
            raise ValueError("count must be non-negative")
        if len(sample) > reservoir._capacity:
            raise ValueError("sample larger than capacity")
        if len(sample) != min(count, reservoir._capacity):
            raise ValueError("sample size inconsistent with stream count")
        reservoir._count = count
        reservoir._sample = sample
        reservoir._rng.bit_generator.state = payload["rng_state"]
        return reservoir

    def estimate_sum(self) -> float:
        """Horvitz-Thompson estimate of the stream's running sum."""
        if not self._sample:
            raise ValueError("no values observed yet")
        return float(np.mean(self._sample) * self._count)

    def estimate_mean(self) -> float:
        if not self._sample:
            raise ValueError("no values observed yet")
        return float(np.mean(self._sample))

    def estimate_quantile(self, fraction: float) -> float:
        if not self._sample:
            raise ValueError("no values observed yet")
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        return float(np.quantile(self._sample, fraction))
