"""Greenwald-Khanna quantile summary ([GK01], paper related work).

A one-pass, bounded-memory summary supporting rank queries with additive
error at most ``epsilon * N``.  The paper cites it as the state of the art
for streaming order statistics; here it powers the streaming equi-depth
baseline used in the warehouse ablations and is a substrate in its own
right.

The summary stores tuples ``(value, g, delta)`` where ``g`` is the gap in
minimum rank to the previous tuple and ``delta`` bounds the rank
uncertainty.  The invariant ``g + delta <= floor(2 * epsilon * N)`` is
restored by periodic compression.

The tuples live in three parallel plain lists (values / gaps / deltas)
rather than a list of tuple objects: insertion position comes from a C
``bisect`` over the value list instead of a Python linear scan, and the
ingest loop touches only list cells.  This summary sits on the hottest
path of the serving layer (it is the default benchmark backend), and the
flat layout roughly halves the per-point cost while evolving the summary
bit-identically to the original structure -- ``bisect_right`` lands on
exactly the position the ``<=`` scan found, so every ``to_dict``
rendering, rank bracket and quantile answer is unchanged.
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = ["GKQuantileSummary"]


class GKQuantileSummary:
    """Epsilon-approximate one-pass quantile summary."""

    def __init__(self, epsilon: float) -> None:
        if not (0 < epsilon < 1):
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self._values: list[float] = []
        self._gaps: list[int] = []
        self._deltas: list[int] = []
        self._count = 0
        self._compress_period = max(1, int(1.0 / (2.0 * epsilon)))

    def __len__(self) -> int:
        """Number of stream values inserted."""
        return self._count

    @property
    def summary_size(self) -> int:
        """Number of stored tuples (the space actually used)."""
        return len(self._values)

    def insert(self, value: float) -> None:
        value = float(value)
        self._count += 1
        values = self._values
        position = bisect_right(values, value)
        values.insert(position, value)
        self._gaps.insert(position, 1)
        if position == 0 or position == len(values) - 1:
            # New minimum or maximum: exact rank, delta = 0.
            self._deltas.insert(position, 0)
        else:
            self._deltas.insert(
                position, max(0, int(2.0 * self.epsilon * self._count) - 1)
            )
        if self._count % self._compress_period == 0:
            self._compress()

    # Uniform ingestion naming across synopsis structures: `append` is the
    # one-point verb, `extend` the batch verb; `insert` stays the primary
    # name here to match the GK literature.
    append = insert

    def extend(self, values) -> None:
        # One flat loop with every hot name bound locally; ndarray input
        # is converted up front so the loop iterates plain floats.
        if hasattr(values, "tolist"):
            values = values.tolist()
        stored = self._values
        gaps = self._gaps
        deltas = self._deltas
        count = self._count
        two_eps = 2.0 * self.epsilon
        period = self._compress_period
        for value in values:
            value = float(value)
            count += 1
            position = bisect_right(stored, value)
            stored.insert(position, value)
            gaps.insert(position, 1)
            if position == 0 or position == len(stored) - 1:
                deltas.insert(position, 0)
            else:
                deltas.insert(position, max(0, int(two_eps * count) - 1))
            if count % period == 0:
                self._count = count
                self._compress()
        self._count = count

    def _compress(self) -> None:
        """Merge adjacent tuples while the rank invariant allows it."""
        threshold = int(2.0 * self.epsilon * self._count)
        values = self._values
        gaps = self._gaps
        deltas = self._deltas
        i = len(values) - 2
        while i >= 1:
            if gaps[i] + gaps[i + 1] + deltas[i + 1] <= threshold:
                gaps[i + 1] += gaps[i]
                del values[i]
                del gaps[i]
                del deltas[i]
            i -= 1

    def rank_bounds(self, value: float) -> tuple[int, int]:
        """Lower and upper bounds on the rank of ``value`` (1-based).

        The lower bound is the minimum rank of the last tuple with value
        ``<= value``; the upper bound comes from the *following* tuple:
        every stream element ranked above ``rmax(next) - 1`` exceeds
        ``value``.  The bracket width is at most the compression invariant
        ``2 * epsilon * N``.
        """
        if self._count == 0:
            raise ValueError("no values inserted yet")
        min_rank = 0
        max_rank = self._count
        running = 0
        for stored, g, delta in zip(self._values, self._gaps, self._deltas):
            running += g
            if stored <= value:
                min_rank = running
            else:
                max_rank = max(min_rank, running + delta - 1)
                break
        return min_rank, max_rank

    def query(self, fraction: float) -> float:
        """Value whose rank is within ``epsilon * N`` of ``fraction * N``."""
        if self._count == 0:
            raise ValueError("no values inserted yet")
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        target = max(1, int(round(fraction * self._count)))
        allowance = self.epsilon * self._count

        running_min = 0
        for i, (value, g, delta) in enumerate(
            zip(self._values, self._gaps, self._deltas)
        ):
            running_min += g
            max_rank = running_min + delta
            if target - running_min <= allowance and max_rank - target <= allowance:
                return value
            if running_min > target + allowance and i > 0:
                return self._values[i - 1]
        return self._values[-1]

    def quantiles(self, count: int) -> list[float]:
        """``count`` evenly spaced quantiles (excluding 0, including interior)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.query(q / (count + 1)) for q in range(1, count + 1)]

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (see :meth:`from_dict`).

        The tuples *are* the summary, so the snapshot is exact: the
        restored summary answers every rank and quantile query
        identically and continues the stream with the same guarantees.
        """
        return {
            "epsilon": self.epsilon,
            "count": self._count,
            "tuples": [
                [value, g, delta]
                for value, g, delta in zip(self._values, self._gaps, self._deltas)
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GKQuantileSummary":
        """Inverse of :meth:`to_dict`."""
        summary = cls(float(payload["epsilon"]))
        count = int(payload["count"])
        if count < 0:
            raise ValueError("count must be non-negative")
        tuples = [
            (float(value), int(g), int(delta))
            for value, g, delta in payload["tuples"]
        ]
        if count == 0 and tuples:
            raise ValueError("tuples present with zero count")
        if count > 0 and not tuples:
            raise ValueError("no tuples for a non-empty summary")
        if any(g < 1 or delta < 0 for _, g, delta in tuples):
            raise ValueError("tuple gaps must be >= 1 and deltas >= 0")
        if any(
            later[0] < earlier[0] for earlier, later in zip(tuples, tuples[1:])
        ):
            raise ValueError("tuples must be sorted by value")
        if sum(g for _, g, _ in tuples) > count:
            raise ValueError("rank gaps exceed the stream count")
        summary._count = count
        summary._values = [value for value, _, _ in tuples]
        summary._gaps = [g for _, g, _ in tuples]
        summary._deltas = [delta for _, _, delta in tuples]
        return summary

    def merge(self, other: "GKQuantileSummary") -> "GKQuantileSummary":
        """Combine two summaries built over disjoint streams.

        Tuples are interleaved in value order; each keeps its ``g`` and
        widens its ``delta`` by the rank uncertainty contributed by the
        other summary's surrounding tuples (the standard GK merge rule).
        The merged summary's rank error is bounded by the *sum* of the two
        input epsilons; it reports the larger input epsilon and restores
        that invariant by compression, so post-merge guarantees are
        ``epsilon_self + epsilon_other`` in the worst case.
        """
        merged = GKQuantileSummary(max(self.epsilon, other.epsilon))
        merged._count = self._count + other._count
        if merged._count == 0:
            return merged

        def widened(own: "GKQuantileSummary", foreign: "GKQuantileSummary"):
            entries = []
            for value, g, delta in zip(own._values, own._gaps, own._deltas):
                # Rank slack from the other summary: the first foreign
                # tuple strictly after this value can precede or follow
                # the true position by its own uncertainty.
                slack = 0
                for candidate, cg, cdelta in zip(
                    foreign._values, foreign._gaps, foreign._deltas
                ):
                    if candidate > value:
                        slack = cg + cdelta - 1
                        break
                entries.append((value, g, delta + max(0, slack)))
            return entries

        combined = widened(self, other) + widened(other, self)
        combined.sort(key=lambda item: item[0])
        merged._values = [value for value, _, _ in combined]
        merged._gaps = [g for _, g, _ in combined]
        merged._deltas = [delta for _, _, delta in combined]
        merged._compress()
        return merged
