"""Greenwald-Khanna quantile summary ([GK01], paper related work).

A one-pass, bounded-memory summary supporting rank queries with additive
error at most ``epsilon * N``.  The paper cites it as the state of the art
for streaming order statistics; here it powers the streaming equi-depth
baseline used in the warehouse ablations and is a substrate in its own
right.

The summary stores tuples ``(value, g, delta)`` where ``g`` is the gap in
minimum rank to the previous tuple and ``delta`` bounds the rank
uncertainty.  The invariant ``g + delta <= floor(2 * epsilon * N)`` is
restored by periodic compression.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GKQuantileSummary"]


@dataclass
class _Tuple:
    value: float
    g: int
    delta: int


class GKQuantileSummary:
    """Epsilon-approximate one-pass quantile summary."""

    def __init__(self, epsilon: float) -> None:
        if not (0 < epsilon < 1):
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self._tuples: list[_Tuple] = []
        self._count = 0
        self._compress_period = max(1, int(1.0 / (2.0 * epsilon)))

    def __len__(self) -> int:
        """Number of stream values inserted."""
        return self._count

    @property
    def summary_size(self) -> int:
        """Number of stored tuples (the space actually used)."""
        return len(self._tuples)

    def insert(self, value: float) -> None:
        value = float(value)
        self._count += 1
        threshold = int(2.0 * self.epsilon * self._count)

        position = 0
        while position < len(self._tuples) and self._tuples[position].value <= value:
            position += 1

        if position == 0 or position == len(self._tuples):
            # New minimum or maximum: exact rank, delta = 0.
            self._tuples.insert(position, _Tuple(value, 1, 0))
        else:
            delta = max(0, threshold - 1)
            self._tuples.insert(position, _Tuple(value, 1, delta))

        if self._count % self._compress_period == 0:
            self._compress()

    # Uniform ingestion naming across synopsis structures: `append` is the
    # one-point verb, `extend` the batch verb; `insert` stays the primary
    # name here to match the GK literature.
    append = insert

    def extend(self, values) -> None:
        for value in values:
            self.insert(value)

    def _compress(self) -> None:
        """Merge adjacent tuples while the rank invariant allows it."""
        threshold = int(2.0 * self.epsilon * self._count)
        tuples = self._tuples
        i = len(tuples) - 2
        while i >= 1:
            current, nxt = tuples[i], tuples[i + 1]
            if current.g + nxt.g + nxt.delta <= threshold:
                nxt.g += current.g
                del tuples[i]
            i -= 1

    def rank_bounds(self, value: float) -> tuple[int, int]:
        """Lower and upper bounds on the rank of ``value`` (1-based).

        The lower bound is the minimum rank of the last tuple with value
        ``<= value``; the upper bound comes from the *following* tuple:
        every stream element ranked above ``rmax(next) - 1`` exceeds
        ``value``.  The bracket width is at most the compression invariant
        ``2 * epsilon * N``.
        """
        if self._count == 0:
            raise ValueError("no values inserted yet")
        min_rank = 0
        max_rank = self._count
        running = 0
        for entry in self._tuples:
            running += entry.g
            if entry.value <= value:
                min_rank = running
            else:
                max_rank = max(min_rank, running + entry.delta - 1)
                break
        return min_rank, max_rank

    def query(self, fraction: float) -> float:
        """Value whose rank is within ``epsilon * N`` of ``fraction * N``."""
        if self._count == 0:
            raise ValueError("no values inserted yet")
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must be in [0, 1]")
        target = max(1, int(round(fraction * self._count)))
        allowance = self.epsilon * self._count

        running_min = 0
        for i, entry in enumerate(self._tuples):
            running_min += entry.g
            max_rank = running_min + entry.delta
            if target - running_min <= allowance and max_rank - target <= allowance:
                return entry.value
            if running_min > target + allowance and i > 0:
                return self._tuples[i - 1].value
        return self._tuples[-1].value

    def quantiles(self, count: int) -> list[float]:
        """``count`` evenly spaced quantiles (excluding 0, including interior)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.query(q / (count + 1)) for q in range(1, count + 1)]

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (see :meth:`from_dict`).

        The tuples *are* the summary, so the snapshot is exact: the
        restored summary answers every rank and quantile query
        identically and continues the stream with the same guarantees.
        """
        return {
            "epsilon": self.epsilon,
            "count": self._count,
            "tuples": [[t.value, t.g, t.delta] for t in self._tuples],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GKQuantileSummary":
        """Inverse of :meth:`to_dict`."""
        summary = cls(float(payload["epsilon"]))
        count = int(payload["count"])
        if count < 0:
            raise ValueError("count must be non-negative")
        tuples = [
            _Tuple(float(value), int(g), int(delta))
            for value, g, delta in payload["tuples"]
        ]
        if count == 0 and tuples:
            raise ValueError("tuples present with zero count")
        if count > 0 and not tuples:
            raise ValueError("no tuples for a non-empty summary")
        if any(t.g < 1 or t.delta < 0 for t in tuples):
            raise ValueError("tuple gaps must be >= 1 and deltas >= 0")
        if any(
            later.value < earlier.value
            for earlier, later in zip(tuples, tuples[1:])
        ):
            raise ValueError("tuples must be sorted by value")
        if sum(t.g for t in tuples) > count:
            raise ValueError("rank gaps exceed the stream count")
        summary._count = count
        summary._tuples = tuples
        return summary

    def merge(self, other: "GKQuantileSummary") -> "GKQuantileSummary":
        """Combine two summaries built over disjoint streams.

        Tuples are interleaved in value order; each keeps its ``g`` and
        widens its ``delta`` by the rank uncertainty contributed by the
        other summary's surrounding tuples (the standard GK merge rule).
        The merged summary's rank error is bounded by the *sum* of the two
        input epsilons; it reports the larger input epsilon and restores
        that invariant by compression, so post-merge guarantees are
        ``epsilon_self + epsilon_other`` in the worst case.
        """
        merged = GKQuantileSummary(max(self.epsilon, other.epsilon))
        merged._count = self._count + other._count
        if merged._count == 0:
            return merged

        def widened(own: list[_Tuple], foreign: list[_Tuple]) -> list[tuple[float, int, int]]:
            entries = []
            for position, entry in enumerate(own):
                # Rank slack from the other summary: the first foreign
                # tuple strictly after this value can precede or follow
                # the true position by its own uncertainty.
                slack = 0
                for candidate in foreign:
                    if candidate.value > entry.value:
                        slack = candidate.g + candidate.delta - 1
                        break
                entries.append((entry.value, entry.g, entry.delta + max(0, slack)))
            return entries

        combined = widened(self._tuples, other._tuples) + widened(
            other._tuples, self._tuples
        )
        combined.sort(key=lambda item: item[0])
        merged._tuples = [_Tuple(value, g, delta) for value, g, delta in combined]
        merged._compress()
        return merged
