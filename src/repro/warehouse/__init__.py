"""Approximate query answering in a warehouse (paper section 5.2)."""

from .aqp import AttributeSummary
from .streaming import StreamingEquiDepthSummary, StreamingWaveletSummary
from .table import Relation

__all__ = [
    "AttributeSummary",
    "Relation",
    "StreamingEquiDepthSummary",
    "StreamingWaveletSummary",
]
