"""Approximate query answering from attribute histograms (section 5.2).

An :class:`AttributeSummary` is a B-bucket histogram over the *frequency
vector* of an integer attribute: position ``v`` of the approximated
sequence holds the number of rows whose attribute equals ``v``.  Range
COUNT and SUM queries over the attribute then reduce to range sums over
the vector, answered from the synopsis alone -- the classic selectivity-
estimation setting ([IP95], [JKM+98]) that the paper's warehouse
experiment runs with the agglomerative one-pass construction in place of
the quadratic optimal DP.
"""

from __future__ import annotations

import numpy as np

from ..core.approx import approximate_histogram
from ..core.bucket import Histogram
from ..core.optimal import optimal_histogram
from ..heuristics.serial import equal_width_histogram, maxdiff_histogram
from .table import Relation

__all__ = ["AttributeSummary"]

_BUILDERS = {
    "optimal": lambda values, buckets, epsilon: optimal_histogram(values, buckets),
    "approximate": approximate_histogram,
    "equal_width": lambda values, buckets, epsilon: equal_width_histogram(
        values, buckets
    ),
    "maxdiff": lambda values, buckets, epsilon: maxdiff_histogram(values, buckets),
}


class AttributeSummary:
    """Histogram summary of one integer attribute of a relation."""

    def __init__(self, histogram: Histogram, attribute: str, rows: int) -> None:
        self._histogram = histogram
        self.attribute = attribute
        self.rows = rows

    @classmethod
    def build(
        cls,
        relation: Relation,
        attribute: str,
        num_buckets: int,
        method: str = "approximate",
        epsilon: float = 0.1,
    ) -> "AttributeSummary":
        """Summarize ``relation.attribute`` with ``num_buckets`` buckets.

        ``method`` selects the construction algorithm: ``"optimal"`` (the
        quadratic DP), ``"approximate"`` (the one-pass agglomerative
        (1 + epsilon)-approximation -- the paper's recommendation),
        ``"equal_width"`` or ``"maxdiff"`` (classic heuristics).
        """
        if method not in _BUILDERS:
            raise ValueError(f"unknown method {method!r}; have {sorted(_BUILDERS)}")
        frequencies = relation.frequency_vector(attribute)
        histogram = _BUILDERS[method](frequencies, num_buckets, epsilon)
        return cls(histogram, attribute, len(relation))

    @property
    def histogram(self) -> Histogram:
        return self._histogram

    @property
    def domain_size(self) -> int:
        """Number of distinct integer values covered (max value + 1)."""
        return len(self._histogram)

    def _clip(self, low: float, high: float) -> tuple[int, int] | None:
        lo = max(0, int(np.ceil(low)))
        hi = min(self.domain_size - 1, int(np.floor(high)))
        if lo > hi:
            return None
        return lo, hi

    def estimate_count(self, low: float, high: float) -> float:
        """Estimated COUNT(*) WHERE low <= attribute <= high."""
        clipped = self._clip(low, high)
        if clipped is None:
            return 0.0
        return max(0.0, self._histogram.range_sum(*clipped))

    def estimate_selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of rows matching the range predicate."""
        if self.rows == 0:
            return 0.0
        return self.estimate_count(low, high) / self.rows

    def estimate_sum(self, low: float, high: float) -> float:
        """Estimated SUM(attribute) WHERE low <= attribute <= high.

        Each bucket contributes ``frequency * sum(values in overlap)``;
        the inner sum is the arithmetic series over the integer values the
        bucket covers.
        """
        clipped = self._clip(low, high)
        if clipped is None:
            return 0.0
        lo, hi = clipped
        total = 0.0
        for bucket in self._histogram.buckets:
            left = max(lo, bucket.start)
            right = min(hi, bucket.end)
            if left > right:
                continue
            value_sum = (left + right) * (right - left + 1) / 2.0
            total += bucket.value * value_sum
        return max(0.0, total)

    def estimate_average(self, low: float, high: float) -> float:
        """Estimated AVG(attribute) WHERE low <= attribute <= high."""
        count = self.estimate_count(low, high)
        if count <= 0.0:
            return 0.0
        return self.estimate_sum(low, high) / count
