"""One-pass distribution summaries over raw rows.

:class:`AttributeSummary` (``aqp.py``) builds histograms from the
materialized frequency vector.  This module provides truly *streaming*
alternatives that read each row once and never materialize the vector:

* :class:`StreamingEquiDepthSummary` -- Greenwald-Khanna quantile cuts
  ([GK01]) turned into an equi-depth histogram over the value domain;
* :class:`StreamingWaveletSummary` -- the dynamic wavelet histogram of
  [MVW00] (:mod:`repro.wavelets.dynamic`) behind the same interface.

Both answer the same range-COUNT estimates as :class:`AttributeSummary`,
so the warehouse ablations can compare all construction routes on equal
terms.
"""

from __future__ import annotations

import numpy as np

from ..core.bucket import Bucket, Histogram
from ..core.prefix import as_stream_batch
from ..sketches.gk import GKQuantileSummary
from ..wavelets.dynamic import DynamicWaveletHistogram

__all__ = ["StreamingEquiDepthSummary", "StreamingWaveletSummary"]


class StreamingEquiDepthSummary:
    """Equi-depth histogram of an integer attribute, built in one pass.

    Feeds every row into a GK quantile summary; on demand, ``B - 1``
    quantile cuts split the value domain into buckets holding ~N/B rows
    each, with the per-value frequency inside a bucket spread uniformly.
    Memory is the GK summary's O((1/eps) log(eps N)).
    """

    def __init__(self, num_buckets: int, epsilon: float = 0.01) -> None:
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.num_buckets = num_buckets
        self._summary = GKQuantileSummary(epsilon)
        self._max_value = 0

    def __len__(self) -> int:
        return len(self._summary)

    def insert(self, value: float) -> None:
        if value < 0:
            raise ValueError("attribute values must be non-negative")
        self._summary.insert(float(value))
        self._max_value = max(self._max_value, int(round(value)))

    # Uniform ingestion naming: `append` is the one-point verb everywhere.
    append = insert

    def extend(self, values) -> None:
        """Insert a whole batch of rows.

        Non-negativity is validated once per batch on the numpy array (the
        GK insertions themselves are inherently sequential); the running
        domain maximum is also updated once.
        """
        array = as_stream_batch(values)
        if array.size == 0:
            return
        if float(array.min()) < 0:
            raise ValueError("attribute values must be non-negative")
        summary_insert = self._summary.insert
        for value in array.tolist():
            summary_insert(value)
        self._max_value = max(self._max_value, int(round(float(array.max()))))

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (see :meth:`from_dict`).

        Delegates to the inner GK summary's exact snapshot and adds the
        running domain maximum, so the restored summary renders the same
        histogram and answers the same count estimates.
        """
        return {
            "num_buckets": self.num_buckets,
            "max_value": self._max_value,
            "summary": self._summary.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamingEquiDepthSummary":
        """Inverse of :meth:`to_dict`."""
        summary_payload = payload["summary"]
        restored = cls(
            int(payload["num_buckets"]), float(summary_payload["epsilon"])
        )
        max_value = int(payload["max_value"])
        if max_value < 0:
            raise ValueError("max_value must be non-negative")
        restored._summary = GKQuantileSummary.from_dict(summary_payload)
        restored._max_value = max_value
        return restored

    def histogram(self) -> Histogram:
        """Equi-depth histogram over the value domain ``[0, max]``.

        Bucket boundaries are the GK quantile cuts; each bucket's height
        is its (approximate) row count divided by its value-width, i.e. a
        frequency density, matching :class:`AttributeSummary`'s frequency-
        vector representation.
        """
        rows = len(self._summary)
        if rows == 0:
            raise ValueError("no rows inserted yet")
        domain = self._max_value + 1
        cut_values = self._summary.quantiles(self.num_buckets - 1)
        edges = sorted({int(round(cut)) for cut in cut_values if 0 <= cut < domain - 1})
        share = rows / (len(edges) + 1)
        buckets = []
        start = 0
        for edge in edges + [domain - 1]:
            width = edge - start + 1
            buckets.append(Bucket(start, edge, share / width))
            start = edge + 1
        return Histogram(buckets)

    def estimate_quantile(self, fraction: float) -> float:
        """The (approximate) ``fraction``-quantile of the inserted rows.

        Answered by the inner GK summary directly, so the error bound is
        the summary's eps * N on rank -- sharper than reading the
        rendered equi-depth histogram.
        """
        if len(self._summary) == 0:
            raise ValueError("no rows inserted yet")
        return self._summary.query(fraction)

    def estimate_count(self, low: float, high: float) -> float:
        """Estimated number of rows with attribute in ``[low, high]``.

        Uses rank arithmetic directly (sharper than the histogram
        rendering): count = rank(high) - rank(low - 1).
        """
        if len(self._summary) == 0:
            raise ValueError("no rows inserted yet")
        if low > high:
            return 0.0

        def rank_at_most(value: float) -> float:
            lower, upper = self._summary.rank_bounds(value)
            return (lower + upper) / 2.0

        return max(0.0, rank_at_most(high) - rank_at_most(low - 1.0))


class StreamingWaveletSummary:
    """The [MVW00] dynamic wavelet histogram behind the summary interface."""

    def __init__(self, domain_size: int, budget: int) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self._dynamic = DynamicWaveletHistogram(domain_size)

    def __len__(self) -> int:
        return len(self._dynamic)

    def insert(self, value: float) -> None:
        self._dynamic.insert(int(round(value)))

    append = insert

    def delete(self, value: float) -> None:
        self._dynamic.delete(int(round(value)))

    def extend(self, values) -> None:
        for value in as_stream_batch(values).round().astype(int).tolist():
            self._dynamic.insert(value)

    def estimate_count(self, low: float, high: float) -> float:
        if len(self._dynamic) == 0:
            raise ValueError("no rows inserted yet")
        return self._dynamic.estimate_count(int(np.ceil(low)), int(np.floor(high)),
                                            budget=self.budget)
