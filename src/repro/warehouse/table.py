"""Minimal column-oriented relation for the warehouse experiments.

Paper section 5.2 evaluates approximate query answering "in a data
warehouse": build a histogram over a measure attribute in one pass, then
answer range aggregates from the histogram alone.  This module supplies
just enough relational substrate for that experiment -- named numeric
columns with exact range aggregation as ground truth.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Relation"]


class Relation:
    """An immutable bag of equal-length numeric columns."""

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a relation needs at least one column")
        sizes = {name: np.asarray(values).size for name, values in columns.items()}
        if len(set(sizes.values())) != 1:
            raise ValueError(f"column lengths differ: {sizes}")
        self._columns = {
            name: np.asarray(values, dtype=np.float64).copy()
            for name, values in columns.items()
        }
        self._rows = next(iter(sizes.values()))

    def __len__(self) -> int:
        return self._rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise KeyError(f"no column {name!r}; have {self.column_names}")
        return self._columns[name].copy()

    def count_range(self, name: str, low: float, high: float) -> int:
        """Exact COUNT(*) WHERE low <= name <= high."""
        column = self._columns[name] if name in self._columns else self.column(name)
        return int(np.count_nonzero((column >= low) & (column <= high)))

    def sum_range(self, name: str, low: float, high: float) -> float:
        """Exact SUM(name) WHERE low <= name <= high."""
        column = self._columns[name] if name in self._columns else self.column(name)
        mask = (column >= low) & (column <= high)
        return float(column[mask].sum())

    def frequency_vector(self, name: str) -> np.ndarray:
        """Occurrence counts of each integer value in ``[0, max]``.

        The classic histogram-construction input: approximating this
        vector with B buckets is exactly the [JKM+98] problem, and range
        aggregates over the attribute become range sums over the vector.
        """
        column = self._columns[name] if name in self._columns else self.column(name)
        if np.any(column < 0):
            raise ValueError("frequency vectors require non-negative values")
        rounded = np.round(column).astype(np.int64)
        if not np.allclose(column, rounded):
            raise ValueError("frequency vectors require integer-valued columns")
        return np.bincount(rounded).astype(np.float64)
