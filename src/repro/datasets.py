"""Benchmark datasets (substitutes for the paper's proprietary AT&T data).

The paper's evaluation uses 1M-point time series "extracted from
operational data warehouses maintained at AT&T Labs, representing
utilization information of one of the services provided by the company"
(section 5), plus warehouse extracts and collections of time series for
the similarity experiments.  Those traces are not public, so this module
generates seeded synthetic stand-ins that reproduce the structural
properties the algorithms are sensitive to:

* ``att_utilization_stream`` -- diurnal periodicity + AR(1) noise + level
  shifts + heavy-tailed bursts, integer-quantized.  Piecewise-smooth with
  abrupt transitions, the regime where bucket placement matters.
* ``warehouse_measure_column`` -- a skewed (Zipf-mixture) measure column
  for the approximate-query-answering experiment.
* ``timeseries_collection`` -- families of related series (shared shape,
  per-series warp/scale/noise) for the similarity-search experiment.

Every function is deterministic given its seed; see DESIGN.md section 4
for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "att_utilization_stream",
    "warehouse_measure_column",
    "timeseries_collection",
]


def att_utilization_stream(length: int, seed: int = 7) -> np.ndarray:
    """Synthetic service-utilization stream standing in for the AT&T trace.

    Components: a daily cycle (period 288 ~ five-minute samples), AR(1)
    measurement noise, occasional sustained level shifts (capacity
    reconfigurations), and Pareto-sized bursts (traffic spikes).  Values
    are non-negative integers as the paper's model assumes.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    cycle = 400.0 * np.sin(2.0 * np.pi * t / 288.0)

    noise = np.empty(length)
    ar = 0.0
    shocks = rng.normal(0.0, 20.0, size=length)
    for i in range(length):
        ar = 0.9 * ar + shocks[i]
        noise[i] = ar

    # Sustained level shifts at random change points.
    level = np.zeros(length)
    position = 0
    current = 1000.0
    while position < length:
        span = int(rng.integers(500, 5000))
        level[position : position + span] = current
        current = float(rng.uniform(600.0, 1600.0))
        position += span

    # Heavy-tailed bursts with short dwell.
    bursts = np.zeros(length)
    n_bursts = max(1, length // 400)
    starts = rng.integers(0, length, size=n_bursts)
    for start in starts:
        dwell = int(rng.integers(2, 30))
        height = 500.0 * (rng.pareto(1.8) + 1.0)
        bursts[start : start + dwell] += height

    values = np.clip(level + cycle + noise + bursts, 0.0, None)
    return np.round(values)


def warehouse_measure_column(rows: int, seed: int = 11, domain: int = 1000) -> np.ndarray:
    """Skewed warehouse measure column (Zipf mixture), values in [0, domain].

    Models the measure distribution whose histogram a warehouse keeps for
    approximate aggregation (paper section 5.2): mostly small values with
    a long heavy tail, plus a few modal clusters.  ``domain`` controls the
    number of distinct values, i.e. the length of the frequency vector the
    construction algorithms must approximate.
    """
    if rows < 1:
        raise ValueError("rows must be >= 1")
    if domain < 10:
        raise ValueError("domain must be >= 10")
    rng = np.random.default_rng(seed)
    scale = domain / 1000.0
    tail = rng.zipf(1.4, size=rows).astype(np.float64) * scale
    modes = rng.choice(
        [50.0 * scale, 400.0 * scale, 900.0 * scale], size=rows, p=[0.7, 0.2, 0.1]
    )
    jitter = rng.normal(0.0, 10.0 * scale, size=rows)
    values = np.where(rng.random(rows) < 0.3, tail, modes + jitter)
    return np.round(np.clip(values, 0.0, float(domain)))


def timeseries_collection(
    count: int,
    length: int,
    families: int = 4,
    seed: int = 13,
    return_families: bool = False,
):
    """A collection of related time series for similarity search.

    Series come in ``families`` shape families (random smooth prototypes);
    members are scaled, shifted and noised copies, so nearest neighbours
    are meaningful and false-positive counting (paper section 5.2) is
    informative.  Returns an array of shape ``(count, length)``; with
    ``return_families=True`` also returns the per-series family labels
    (used by the clustering experiments as ground truth).
    """
    if count < 1 or length < 4:
        raise ValueError("need count >= 1 and length >= 4")
    if families < 1:
        raise ValueError("families must be >= 1")
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 1.0, length)
    prototypes = []
    for _ in range(families):
        waves = sum(
            rng.uniform(0.5, 2.0) * np.sin(2.0 * np.pi * rng.integers(1, 6) * t + rng.uniform(0, 2 * np.pi))
            for _ in range(3)
        )
        steps = np.cumsum(rng.normal(0.0, 0.15, size=length))
        prototypes.append(waves + steps)

    collection = np.empty((count, length))
    labels = np.empty(count, dtype=np.intp)
    for i in range(count):
        family = int(rng.integers(families))
        labels[i] = family
        scale = rng.uniform(0.6, 1.6)
        offset = rng.uniform(-1.0, 1.0)
        noise = rng.normal(0.0, 0.1, size=length)
        collection[i] = scale * prototypes[family] + offset + noise
    if return_families:
        return collection, labels
    return collection
