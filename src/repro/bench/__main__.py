"""Run every experiment and print its result table.

Usage::

    python -m repro.bench            # full report scale (~2-4 minutes)
    python -m repro.bench --quick    # smoke scale (~15 seconds)

The same experiment functions back the pytest-benchmark suites in
``benchmarks/``; this entry point is the convenient way to regenerate the
EXPERIMENTS.md series in one go.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import experiments


def _report_configs(quick: bool) -> list[tuple[str, callable]]:
    if quick:
        return [
            ("Fig 6(a) accuracy, eps=0.5", lambda: experiments.fig6_accuracy(
                0.5, window_sizes=(128, 256), bucket_counts=(8,),
                stream_extra=256, evaluations=4, queries_per_evaluation=16)),
            ("Fig 6(b) accuracy, eps=0.1", lambda: experiments.fig6_accuracy(
                0.1, window_sizes=(128, 256), bucket_counts=(8,),
                stream_extra=256, evaluations=4, queries_per_evaluation=16)),
            ("Fig 6(c) time, eps=0.5", lambda: experiments.fig6_time(
                0.5, window_sizes=(128, 256), bucket_counts=(8,), arrivals=10)),
            ("Fig 6(d) time, eps=0.1", lambda: experiments.fig6_time(
                0.1, window_sizes=(128, 256), bucket_counts=(8,), arrivals=10)),
            ("E2 agglomerative vs wavelet", lambda:
                experiments.agglomerative_vs_wavelet(2000, (8, 16), 0.25, 50)),
            ("E3 agglomerative vs optimal", lambda:
                experiments.agglomerative_vs_optimal((256, 512), 5000, 16, 0.25, 30)),
            ("E4 similarity (whole)", lambda:
                experiments.similarity_whole(60, 128, 16, num_queries=5, k=5)),
            ("E4 similarity (subsequence)", lambda:
                experiments.similarity_subsequence(2048, 128, 16, stride=32,
                                                   num_queries=4)),
            ("A1 epsilon ablation", lambda:
                experiments.epsilon_ablation(128, 8, (1.0, 0.25), arrivals=5)),
            ("A2 scaling ablation", lambda:
                experiments.scaling_ablation((128, 256), 8, 0.5, arrivals=3)),
            ("A3 interval growth", lambda:
                experiments.interval_growth_ablation((128, 256, 512), 8,
                                                     (0.5, 0.1))),
            ("A4 aggregate variants", lambda:
                experiments.aggregate_variants(window=128, queries=40)),
            ("A5 heuristic quality", lambda:
                experiments.heuristic_quality((256,), 8)),
        ]
    return [
        ("Fig 6(a) accuracy, eps=0.5", lambda: experiments.fig6_accuracy(0.5)),
        ("Fig 6(b) accuracy, eps=0.1", lambda: experiments.fig6_accuracy(0.1)),
        ("Fig 6(c) time, eps=0.5", lambda: experiments.fig6_time(0.5, arrivals=40)),
        ("Fig 6(d) time, eps=0.1", lambda: experiments.fig6_time(0.1, arrivals=40)),
        ("E2 agglomerative vs wavelet", lambda:
            experiments.agglomerative_vs_wavelet(10_000, (8, 16, 32), 0.25, 200)),
        ("E3 agglomerative vs optimal", lambda:
            experiments.agglomerative_vs_optimal((512, 1024, 2048, 4096),
                                                 50_000, 32, 0.25, 100)),
        ("E4 similarity (whole)", lambda:
            experiments.similarity_whole(200, 256, 16, num_queries=20, k=10)),
        ("E4 similarity (subsequence)", lambda:
            experiments.similarity_subsequence(8192, 256, 16, stride=16,
                                               num_queries=10)),
        ("A1 epsilon ablation", lambda:
            experiments.epsilon_ablation(512, 8, (1.0, 0.5, 0.2, 0.1, 0.05),
                                         arrivals=30)),
        ("A2 scaling ablation", lambda:
            experiments.scaling_ablation((128, 256, 512, 1024, 2048), 8, 0.25,
                                         arrivals=10)),
        ("A3 interval growth", lambda:
            experiments.interval_growth_ablation()),
        ("A4 aggregate variants", lambda:
            experiments.aggregate_variants(window=512, queries=200)),
        ("A5 heuristic quality", lambda:
            experiments.heuristic_quality((256, 1024, 4096), 16)),
        ("A6 change detection", lambda:
            experiments.change_detection(window_sizes=(64, 128, 256))),
        ("A7 span breakdown", lambda:
            experiments.span_breakdown(window=512)),
        ("A8 space/accuracy sweep", lambda:
            experiments.space_accuracy_sweep(length=2048)),
        ("A9 maintenance cadence", lambda:
            experiments.maintenance_cadence(window=512)),
        ("A10 workload-aware", lambda:
            experiments.workload_aware(window=512)),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate every experiment table of the reproduction.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="tiny scale, ~15 seconds total"
    )
    parser.add_argument(
        "--only", metavar="SUBSTR", default=None,
        help="run only experiments whose name contains SUBSTR",
    )
    args = parser.parse_args(argv)

    configs = _report_configs(args.quick)
    if args.only:
        configs = [(name, fn) for name, fn in configs if args.only in name]
        if not configs:
            parser.error(f"no experiment matches {args.only!r}")

    overall_start = time.perf_counter()
    for name, fn in configs:
        started = time.perf_counter()
        table = fn()
        elapsed = time.perf_counter() - started
        print(f"\n### {name}  [{elapsed:.1f}s]\n")
        print(table.render())
    print(f"\nTotal: {time.perf_counter() - overall_start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
